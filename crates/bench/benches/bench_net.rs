//! Benchmarks of the simulated network and its delivery layers: raw
//! exactly-once churn through the discrete-event simulator (the fault-free
//! fast path every pre-existing experiment rides on), the at-least-once
//! ack/retransmit layer on a quiet fault plan (sequencing + ack overhead,
//! no faults injected), and the same layer under seeded loss, duplication
//! and reorder (retransmit and dedup machinery actually firing). The
//! `net/` groups feed the bench-regression gate next to the solver and
//! Datalog benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne::datalog::{NodeId, RemoteTuple, Value};
use cologne::net::{FaultPlan, LinkFaults, SimTime, Topology};
use cologne::{Deployment, DeploymentBuilder, DistributedCologne};

const TUPLE_SWEEP: [i64; 2] = [64, 256];

/// One relay rule so the program compiles; the benches drive traffic by
/// shipping tuples directly.
const PING: &str = r#"
    r1 pong(@Y,X) <- ping(@X,Y).
"#;

fn deployment(plan: Option<FaultPlan>) -> Deployment {
    let mut builder = DeploymentBuilder::new(PING)
        .topology(Topology::full_mesh(4, DistributedCologne::default_link()));
    if let Some(plan) = plan {
        builder = builder.faults(plan);
    }
    builder.build().expect("ping program compiles")
}

/// Ship `n` distinct tuples from node 0 to every other node and drain the
/// network; returns the receiver-side row count as the black-boxed result.
fn churn(driver: &mut Deployment, n: i64) -> usize {
    for i in 0..n {
        for dest in 1..4u32 {
            driver.ship(
                NodeId(0),
                vec![RemoteTuple {
                    dest: NodeId(dest),
                    relation: "ping".into(),
                    tuple: vec![Value::Addr(NodeId(0)), Value::Int(i)],
                    insert: true,
                }],
            );
        }
    }
    driver.settle(SimTime::from_secs(600));
    (1..4u32)
        .map(|n| driver.instance(NodeId(n)).unwrap().scan("ping").count())
        .sum()
}

fn lossy_plan() -> FaultPlan {
    FaultPlan::seeded(7).link_faults(LinkFaults {
        loss: 0.2,
        duplicate: 0.1,
        jitter_us: 20_000,
    })
}

fn bench_raw_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/raw_exactly_once");
    for &n in &TUPLE_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut driver = deployment(None);
                black_box(churn(&mut driver, n))
            });
        });
    }
    group.finish();
}

fn bench_reliable_quiet(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/reliable_quiet");
    for &n in &TUPLE_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut driver = deployment(Some(FaultPlan::default()));
                black_box(churn(&mut driver, n))
            });
        });
    }
    group.finish();
}

fn bench_reliable_hostile(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/reliable_loss_dup_reorder");
    for &n in &TUPLE_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut driver = deployment(Some(lossy_plan()));
                black_box(churn(&mut driver, n))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_raw_sim, bench_reliable_quiet, bench_reliable_hostile
}
criterion_main!(benches);
