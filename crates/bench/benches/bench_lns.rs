//! Benchmarks of the LNS solver mode against exact branch-and-bound on the
//! large ACloud instance, at the same node budget. Both modes spend the same
//! budget, so the wall-clock numbers are directly comparable; the objective
//! gap at that budget is pinned by `tests/integration_lns.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne::SolverMode;
use cologne_usecases::{solve_large_acloud, LargeAcloudConfig};

fn scenario(vms: usize, hosts: usize) -> LargeAcloudConfig {
    LargeAcloudConfig {
        vms,
        hosts,
        node_limit: 6_000,
        seed: 23,
        workers: None,
    }
}

fn bench_exact_vs_lns(c: &mut Criterion) {
    let mut group = c.benchmark_group("lns");
    for (vms, hosts) in [(60usize, 6usize), (120, 10)] {
        let config = scenario(vms, hosts);
        group.bench_with_input(
            BenchmarkId::new("exact_budgeted", format!("{vms}vms_{hosts}hosts")),
            &config,
            |b, config| {
                b.iter(|| black_box(solve_large_acloud(config, SolverMode::Exact).objective));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("destroy_repair", format!("{vms}vms_{hosts}hosts")),
            &config,
            |b, config| {
                b.iter(|| {
                    black_box(
                        solve_large_acloud(config, SolverMode::Lns(config.lns_params())).objective,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exact_vs_lns
}
criterion_main!(benches);
