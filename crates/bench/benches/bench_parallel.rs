//! Benchmarks of the parallel search subsystem: the subtree-splitting exact
//! engine on the ACloud balance COP and the multi-seed LNS portfolio on the
//! large ACloud instance, each swept over worker counts {1, 2, 4}. After the
//! sweep the harness prints the wall-clock speedup of each worker count over
//! the single-worker baseline (the PR 7 acceptance criterion is >= 2x at 4
//! workers on at least one of the two scenarios).

use std::num::NonZeroUsize;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne::SolverMode;
use cologne_solver::{Model, SearchConfig, SearchSpace};
use cologne_usecases::{solve_large_acloud, LargeAcloudConfig};

const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Balance `vms` binary assignment rows over `hosts` hosts (the ACloud COP
/// core shape, same generator as `bench_solver.rs`).
fn balance_model(vms: usize, hosts: usize) -> (Model, cologne_solver::VarId) {
    let mut m = Model::new();
    let loads: Vec<i64> = (0..vms).map(|i| 20 + (i as i64 * 7) % 60).collect();
    let mut host_terms: Vec<Vec<(i64, cologne_solver::VarId)>> = vec![Vec::new(); hosts];
    for &load in &loads {
        let mut row = Vec::with_capacity(hosts);
        for terms in host_terms.iter_mut() {
            let v = m.new_bool();
            terms.push((load, v));
            row.push((1, v));
        }
        m.linear_eq(&row, 1);
    }
    let host_loads: Vec<_> = host_terms.iter().map(|t| m.linear_var(t, 0)).collect();
    let obj = m.scaled_variance_var(&host_loads);
    (m, obj)
}

fn exact_config(workers: usize) -> SearchConfig {
    SearchConfig {
        node_limit: Some(20_000),
        workers: NonZeroUsize::new(workers),
        ..Default::default()
    }
}

fn lns_scenario(workers: usize) -> LargeAcloudConfig {
    LargeAcloudConfig {
        vms: 120,
        hosts: 10,
        node_limit: 6_000,
        seed: 23,
        workers: NonZeroUsize::new(workers),
    }
}

/// One timed pass of a scenario, used for the speedup report printed after
/// the criterion sweep (criterion's own estimates live in the JSON lines).
fn time_once(mut run: impl FnMut()) -> f64 {
    let start = Instant::now();
    run();
    start.elapsed().as_secs_f64()
}

fn print_speedups(label: &str, baseline: f64, timed: &[(usize, f64)]) {
    for (workers, secs) in timed {
        println!(
            "parallel speedup [{label}] workers={workers}: {:.2}x ({:.3}s vs {:.3}s at 1 worker)",
            baseline / secs,
            secs,
            baseline
        );
    }
}

fn bench_parallel_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/branch_and_bound");
    for &workers in &WORKER_SWEEP {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("10vms_4hosts_w{workers}")),
            &workers,
            |b, &workers| {
                let mut space = SearchSpace::new();
                b.iter(|| {
                    let (m, obj) = balance_model(10, 4);
                    let cfg = exact_config(workers);
                    black_box(m.minimize_in(obj, &cfg, &mut space).best_objective)
                });
            },
        );
    }
    group.finish();

    let timed: Vec<(usize, f64)> = WORKER_SWEEP
        .iter()
        .map(|&workers| {
            let mut space = SearchSpace::new();
            let secs = time_once(|| {
                let (m, obj) = balance_model(10, 4);
                black_box(
                    m.minimize_in(obj, &exact_config(workers), &mut space)
                        .best_objective,
                );
            });
            (workers, secs)
        })
        .collect();
    print_speedups("branch_and_bound/10vms_4hosts", timed[0].1, &timed[1..]);
}

fn bench_parallel_lns(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/lns");
    for &workers in &WORKER_SWEEP {
        let config = lns_scenario(workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("120vms_10hosts_w{workers}")),
            &config,
            |b, config| {
                b.iter(|| {
                    black_box(
                        solve_large_acloud(config, SolverMode::Lns(config.lns_params())).objective,
                    )
                });
            },
        );
    }
    group.finish();

    let timed: Vec<(usize, f64)> = WORKER_SWEEP
        .iter()
        .map(|&workers| {
            let config = lns_scenario(workers);
            let secs = time_once(|| {
                black_box(solve_large_acloud(
                    &config,
                    SolverMode::Lns(config.lns_params()),
                ));
            });
            (workers, secs)
        })
        .collect();
    print_speedups("lns/120vms_10hosts", timed[0].1, &timed[1..]);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_exact, bench_parallel_lns
}
criterion_main!(benches);
