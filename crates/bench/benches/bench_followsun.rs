//! End-to-end benchmark for the Follow-the-Sun use case (Fig. 4 / Fig. 5
//! machinery): full distributed executions at several network sizes. The
//! paper reports per-link negotiations completing within ~0.5 s on its
//! hardware; here the relevant shape is how the work grows with the number
//! of data centers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_usecases::{run_followsun, FollowSunConfig};

fn bench_distributed_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("followsun/distributed_execution");
    for n in [2u32, 4, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_dcs")),
            &n,
            |b, &n| {
                let config = FollowSunConfig {
                    data_centers: n,
                    solver_node_limit: 10_000,
                    ..FollowSunConfig::default()
                };
                b.iter(|| black_box(run_followsun(&config).final_cost));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_distributed_convergence
}
criterion_main!(benches);
