//! Benchmarks of the incremental Datalog engine (the RapidNet stand-in):
//! bulk derivation, incremental maintenance on single-tuple updates, and
//! aggregate maintenance — the machinery behind Cologne's continuous,
//! long-running rule execution (Sec. 5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_datalog::{AggFunc, Atom, BodyItem, Engine, Head, HeadArg, NodeId, Rule, Term, Value};

fn transitive_closure_engine() -> Engine {
    let mut e = Engine::new(NodeId(0));
    e.add_rule(Rule::new(
        "r1",
        Head::simple("path", vec![Term::var("X"), Term::var("Y")]),
        vec![BodyItem::Atom(Atom::new(
            "link",
            vec![Term::var("X"), Term::var("Y")],
        ))],
    ));
    e.add_rule(Rule::new(
        "r2",
        Head::simple("path", vec![Term::var("X"), Term::var("Z")]),
        vec![
            BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
            BodyItem::Atom(Atom::new("path", vec![Term::var("Y"), Term::var("Z")])),
        ],
    ));
    e
}

fn bench_bulk_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog/transitive_closure_chain");
    for n in [20usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut e = transitive_closure_engine();
                for i in 0..n as i64 {
                    e.insert("link", vec![Value::Int(i), Value::Int(i + 1)]);
                }
                e.run();
                black_box(e.relation_len("path"))
            });
        });
    }
    group.finish();
}

fn bench_incremental_update(c: &mut Criterion) {
    c.bench_function("datalog/incremental_single_link_update", |b| {
        let mut e = transitive_closure_engine();
        for i in 0..60i64 {
            e.insert("link", vec![Value::Int(i), Value::Int(i + 1)]);
        }
        e.run();
        let mut toggle = true;
        b.iter(|| {
            // PSN-style pipelined update: one tuple changes, the view is
            // maintained incrementally rather than recomputed.
            if toggle {
                e.delete("link", vec![Value::Int(30), Value::Int(31)]);
            } else {
                e.insert("link", vec![Value::Int(30), Value::Int(31)]);
            }
            toggle = !toggle;
            black_box(e.run())
        });
    });
}

fn bench_aggregate_maintenance(c: &mut Criterion) {
    c.bench_function("datalog/aggregate_refresh_hostCpu", |b| {
        let mut e = Engine::new(NodeId(0));
        e.add_rule(Rule::new(
            "d1",
            Head {
                relation: "hostCpu".into(),
                args: vec![
                    HeadArg::Term(Term::var("H")),
                    HeadArg::Agg(AggFunc::Sum, "C".into()),
                ],
                located: false,
            },
            vec![BodyItem::Atom(Atom::new(
                "assign",
                vec![Term::var("V"), Term::var("H"), Term::var("C")],
            ))],
        ));
        for v in 0..200i64 {
            e.insert(
                "assign",
                vec![Value::Int(v), Value::Int(v % 10), Value::Int(v % 50)],
            );
        }
        e.run();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            e.delete(
                "assign",
                vec![
                    Value::Int(i % 200),
                    Value::Int((i % 200) % 10),
                    Value::Int((i % 200) % 50),
                ],
            );
            e.insert(
                "assign",
                vec![
                    Value::Int(i % 200),
                    Value::Int((i % 200) % 10),
                    Value::Int((i % 200) % 50),
                ],
            );
            black_box(e.run())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bulk_derivation, bench_incremental_update, bench_aggregate_maintenance
}
criterion_main!(benches);
