//! Scale benchmarks of the rewritten Datalog engine: grounding 10^5–10^6
//! tuples through the bulk-ingest path and evaluating chain- and
//! cloud-shaped joins with the compiled rule plans. Complements
//! `bench_datalog` (small-input latency) with the throughput regime the
//! PR 6 rewrite targets: interned rows, lazy hash join indexes and
//! batched delta application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_datalog::{
    AggFunc, Atom, BodyItem, Engine, Expr, Head, HeadArg, NodeId, Op, Rule, Term, Tuple, Value,
};

/// Two-hop reachability over a long chain: `hop2(X,Z) <- edge(X,Y),
/// edge(Y,Z)` then `hop4(X,Z) <- hop2(X,Y), hop2(Y,Z)`. Output stays
/// linear in the edge count, so the bench measures join/index throughput
/// rather than quadratic closure blowup.
fn chain_engine() -> Engine {
    let mut e = Engine::new(NodeId(0));
    e.add_rule(Rule::new(
        "h2",
        Head::simple("hop2", vec![Term::var("X"), Term::var("Z")]),
        vec![
            BodyItem::Atom(Atom::new("edge", vec![Term::var("X"), Term::var("Y")])),
            BodyItem::Atom(Atom::new("edge", vec![Term::var("Y"), Term::var("Z")])),
        ],
    ));
    e.add_rule(Rule::new(
        "h4",
        Head::simple("hop4", vec![Term::var("X"), Term::var("Z")]),
        vec![
            BodyItem::Atom(Atom::new("hop2", vec![Term::var("X"), Term::var("Y")])),
            BodyItem::Atom(Atom::new("hop2", vec![Term::var("Y"), Term::var("Z")])),
        ],
    ));
    e
}

fn chain_edges(n: usize) -> Vec<Tuple> {
    (0..n as i64)
        .map(|i| vec![Value::Int(i), Value::Int(i + 1)])
        .collect()
}

fn bench_chain_ground(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_scale/chain_hops");
    for n in [100_000usize, 1_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut e = chain_engine();
                e.try_insert_all("edge", chain_edges(n)).unwrap();
                e.run();
                black_box((e.relation_len("hop2"), e.relation_len("hop4")))
            });
        });
    }
    group.finish();
}

/// Cloud-shaped workload from the ACloud use case: `assign(V,H,C)` facts
/// fan in onto hosts, `hostSpec(H,S)` joins per host, a SUM aggregate
/// maintains per-host load and a filter flags overloaded hosts.
fn cloud_engine(threshold: i64) -> Engine {
    let mut e = Engine::new(NodeId(0));
    e.add_rule(Rule::new(
        "p1",
        Head::simple(
            "placement",
            vec![Term::var("V"), Term::var("H"), Term::var("S")],
        ),
        vec![
            BodyItem::Atom(Atom::new(
                "assign",
                vec![Term::var("V"), Term::var("H"), Term::var("C")],
            )),
            BodyItem::Atom(Atom::new("hostSpec", vec![Term::var("H"), Term::var("S")])),
        ],
    ));
    e.add_rule(Rule::new(
        "a1",
        Head {
            relation: "hostCpu".into(),
            args: vec![
                HeadArg::Term(Term::var("H")),
                HeadArg::Agg(AggFunc::Sum, "C".into()),
            ],
            located: false,
        },
        vec![BodyItem::Atom(Atom::new(
            "assign",
            vec![Term::var("V"), Term::var("H"), Term::var("C")],
        ))],
    ));
    e.add_rule(Rule::new(
        "o1",
        Head::simple("overloaded", vec![Term::var("H")]),
        vec![
            BodyItem::Atom(Atom::new("hostCpu", vec![Term::var("H"), Term::var("L")])),
            BodyItem::Filter(Expr::bin(Op::Gt, Expr::var("L"), Expr::int(threshold))),
        ],
    ));
    e
}

fn bench_cloud_ground(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_scale/cloud_join_agg");
    for n in [100_000usize, 1_000_000] {
        let hosts = (n / 100) as i64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let assigns: Vec<Tuple> = (0..n as i64)
                .map(|v| vec![Value::Int(v), Value::Int(v % hosts), Value::Int(v % 40)])
                .collect();
            let specs: Vec<Tuple> = (0..hosts)
                .map(|h| vec![Value::Int(h), Value::Int(h % 4)])
                .collect();
            b.iter(|| {
                let mut e = cloud_engine(30 * 100);
                e.try_insert_all("hostSpec", specs.clone()).unwrap();
                e.try_insert_all("assign", assigns.clone()).unwrap();
                e.run();
                black_box((e.relation_len("placement"), e.relation_len("overloaded")))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chain_ground, bench_cloud_ground
}
criterion_main!(benches);
