//! Benchmarks for the Colog compilation pipeline (Table 2 / Sec. 6 overhead
//! paragraphs): parsing, analysis, localization and imperative code
//! generation for each of the five shipped programs. The paper reports
//! compilation times between 0.5 s and 1.6 s for its (C++-emitting) compiler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_colog::{analyze, generate_cpp, localize_rules, parse_program};
use cologne_usecases::programs::table2_programs;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/parse");
    for (name, source) in table2_programs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &source, |b, src| {
            b.iter(|| parse_program(black_box(src)).unwrap());
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/full_pipeline");
    for (name, source) in table2_programs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &source, |b, src| {
            b.iter(|| {
                let program = parse_program(black_box(src)).unwrap();
                let analysis = analyze(&program).unwrap();
                let localized = localize_rules(&program.rules).unwrap();
                let code = generate_cpp(&program, &analysis, "bench");
                black_box((localized.len(), code.loc()))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_full_pipeline
}
criterion_main!(benches);
