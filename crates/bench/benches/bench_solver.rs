//! Benchmarks of the constraint-solver substrate (the Gecode stand-in):
//! propagation throughput and branch-and-bound search on COP shapes that the
//! Colog use cases generate (assignment with balancing objective, bounded
//! migration planning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_solver::{Model, SearchConfig, SearchSpace};

/// Balance `vms` binary assignment rows over `hosts` hosts (the ACloud COP
/// core shape).
fn balance_model(vms: usize, hosts: usize) -> (Model, cologne_solver::VarId) {
    let mut m = Model::new();
    let loads: Vec<i64> = (0..vms).map(|i| 20 + (i as i64 * 7) % 60).collect();
    let mut host_terms: Vec<Vec<(i64, cologne_solver::VarId)>> = vec![Vec::new(); hosts];
    for &load in &loads {
        let mut row = Vec::with_capacity(hosts);
        for terms in host_terms.iter_mut() {
            let v = m.new_bool();
            terms.push((load, v));
            row.push((1, v));
        }
        m.linear_eq(&row, 1);
    }
    let host_loads: Vec<_> = host_terms.iter().map(|t| m.linear_var(t, 0)).collect();
    let obj = m.scaled_variance_var(&host_loads);
    (m, obj)
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/branch_and_bound");
    for (vms, hosts) in [(6usize, 3usize), (8, 4), (10, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vms}vms_{hosts}hosts")),
            &(vms, hosts),
            |b, &(vms, hosts)| {
                // One search space across iterations, as the runtime's
                // grounding scratch holds one across `invokeSolver` calls.
                let mut space = SearchSpace::new();
                b.iter(|| {
                    let (m, obj) = balance_model(vms, hosts);
                    let cfg = SearchConfig {
                        node_limit: Some(20_000),
                        ..Default::default()
                    };
                    black_box(m.minimize_in(obj, &cfg, &mut space).best_objective)
                });
            },
        );
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    c.bench_function("solver/root_propagation_200_constraints", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let vars: Vec<_> = (0..100).map(|_| m.new_var(0, 100)).collect();
            for w in vars.windows(2) {
                m.linear_le(&[(1, w[0]), (-1, w[1])], 0);
            }
            for (i, &v) in vars.iter().enumerate() {
                m.linear_le(&[(1, v)], 100 - (i as i64 % 7));
            }
            m.propagate_root().unwrap();
            black_box(m.domain(vars[0]).max())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_branch_and_bound, bench_propagation
}
criterion_main!(benches);
