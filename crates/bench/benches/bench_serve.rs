//! Benchmarks of the `cologne-serve` serving layer.
//!
//! Three tiers:
//!
//! * `serve/wire/*` — pure codec cost: encode+decode round-trips of the
//!   hot frame types (ingest batches, solve responses);
//! * `serve/session/*` — one session's end-to-end solve round-trip over
//!   loopback TCP (frame IO + scheduling + solve, warm pipeline);
//! * `serve/load/*` — the load generator: `COLOGNE_SERVE_SESSIONS`
//!   concurrent tenant sessions (default 1024) connect, ingest and solve
//!   through the bounded worker pool at once. Reported through the
//!   standard bench-JSON statistics over per-solve latencies (min / mean
//!   / max), with two extra fields the regression gate ignores:
//!   `p99_ns` (99th-percentile solve latency) and `solves_per_sec`
//!   (aggregate throughput over the measurement wall-clock).
//!
//! ```text
//! COLOGNE_SERVE_SESSIONS=1024 COLOGNE_BENCH_JSON=BENCH_pr9.json \
//!     cargo bench -p cologne-bench --bench bench_serve
//! ```

use std::io::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use criterion::Criterion;
use std::hint::black_box;

use cologne::datalog::{NodeId, Value};
use cologne::{ProgramParams, SolveRequest, VarDomain};
use cologne_serve::{
    decode_client, decode_server, encode_client, encode_server, Client, ClientError, ClientMsg,
    ErrorCode, IngestOp, Server, ServerConfig, ServerMsg, ACLOUD_DEMO,
};

/// Deterministic, node-limit-bounded demo parameters (the load numbers
/// must measure the serving layer, not wall-clock solver jitter).
fn bench_config() -> ServerConfig {
    let mut cfg = ServerConfig::new(ACLOUD_DEMO);
    cfg.params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(100_000));
    cfg
}

/// One tenant's tiny workload: 3 VMs over 2 hosts.
fn tenant_facts() -> Vec<(&'static str, Vec<Value>)> {
    let mut facts = Vec::new();
    for (vid, cpu) in [(1, 40), (2, 20), (3, 10)] {
        facts.push(("vm", vec![Value::Int(vid), Value::Int(cpu), Value::Int(2)]));
    }
    for hid in [10, 11] {
        facts.push(("host", vec![Value::Int(hid), Value::Int(0), Value::Int(0)]));
        facts.push(("hostMemThres", vec![Value::Int(hid), Value::Int(8)]));
    }
    facts
}

fn ingest_ops() -> ClientMsg {
    ClientMsg::Ingest {
        node: NodeId(0),
        relation: "vm".into(),
        ops: (0..32)
            .map(|i| IngestOp::insert(vec![Value::Int(i), Value::Int(i * 3), Value::Int(2)]))
            .collect(),
        sync: false,
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/wire");
    let ingest = ingest_ops();
    group.bench_function("ingest_batch_roundtrip", |b| {
        b.iter(|| {
            let bytes = encode_client(black_box(&ingest));
            black_box(decode_client(&bytes).expect("round-trip"))
        });
    });
    // a realistic event frame, the hottest streamed message
    let event = ServerMsg::Event {
        node: NodeId(0),
        event: cologne::SolveEvent::Incumbent {
            objective: Some(1234),
        },
    };
    group.bench_function("event_frame_roundtrip", |b| {
        b.iter(|| {
            let bytes = encode_server(black_box(&event));
            black_box(decode_server(&bytes).expect("round-trip"))
        });
    });
    group.finish();
}

fn bench_session_solve(c: &mut Criterion) {
    let server = Server::bind("127.0.0.1:0", bench_config()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello("bench").expect("hello");
    for (rel, tuple) in tenant_facts() {
        client.insert(NodeId(0), rel, tuple).expect("insert");
    }
    let request = SolveRequest::all();
    let mut group = c.benchmark_group("serve/session");
    group.bench_function("solve_roundtrip", |b| {
        b.iter(|| black_box(client.solve(&request).expect("solve")));
    });
    group.finish();
    client.bye().expect("bye");
    server.shutdown();
}

/// The load generator: `sessions` concurrent tenants, one solve each,
/// through one server. Per-solve latencies feed the bench statistics;
/// aggregate throughput and p99 ride along as extra JSON fields.
fn bench_load() {
    let sessions: usize = std::env::var("COLOGNE_SERVE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1024);
    let mut cfg = bench_config();
    cfg.max_sessions = sessions + 8;
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(sessions + 1));
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // the connect stampede can outrun the accept loop; retry
                let mut client = None;
                for _ in 0..100 {
                    match Client::connect(addr) {
                        Ok(c) => {
                            client = Some(c);
                            break;
                        }
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
                    }
                }
                let mut client = client.expect("connect with retries");
                client.hello(&format!("tenant-{i}")).expect("hello");
                for (rel, tuple) in tenant_facts() {
                    client.insert(NodeId(0), rel, tuple).expect("insert");
                }
                let request = SolveRequest::all();
                barrier.wait();
                // the queue is bounded; an Overloaded refusal means "retry
                // later", and the backoff counts toward the solve latency
                let t0 = Instant::now();
                let response = loop {
                    match client.solve(&request) {
                        Ok(response) => break response,
                        Err(ClientError::Server {
                            code: ErrorCode::Overloaded,
                            ..
                        }) => std::thread::sleep(std::time::Duration::from_micros(500)),
                        Err(e) => panic!("solve: {e}"),
                    }
                };
                let latency = t0.elapsed();
                assert!(response.single().expect("one node").feasible);
                client.bye().expect("bye");
                latency.as_nanos() as u64
            })
        })
        .collect();

    barrier.wait();
    let wall_start = Instant::now();
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("session thread"))
        .collect();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    latencies.sort_unstable();

    let iters = latencies.len() as u64;
    let min = latencies[0];
    let max = *latencies.last().expect("nonempty");
    let mean = latencies.iter().sum::<u64>() / iters;
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    let solves_per_sec = iters as f64 * 1e9 / wall_ns.max(1) as f64;
    let name = format!("serve/load/{sessions}_sessions_solve_latency");
    println!(
        "{name:<60} min {min}ns mean {mean}ns p99 {p99}ns max {max}ns  \
         {solves_per_sec:.1} solves/sec ({iters} sessions)"
    );
    if let Ok(path) = std::env::var("COLOGNE_BENCH_JSON") {
        let line = format!(
            "{{\"name\":\"{name}\",\"iters\":{iters},\"min_ns\":{min},\"mean_ns\":{mean},\
             \"max_ns\":{max},\"p99_ns\":{p99},\"solves_per_sec\":{solves_per_sec:.1}}}\n"
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
    server.shutdown();
}

fn main() {
    let mut c = Criterion::default().sample_size(20);
    bench_wire(&mut c);
    bench_session_solve(&mut c);
    bench_load();
}
