//! End-to-end benchmark for the wireless channel-selection use case
//! (Fig. 6 / Fig. 7 machinery): centralized vs distributed channel
//! assignment on small meshes, and the throughput model itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_usecases::wireless::{
    aggregate_throughput, centralized_assignment, distributed_assignment, MeshNetwork,
};
use cologne_usecases::WirelessConfig;

fn bench_channel_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("wireless/channel_selection");
    for (rows, cols) in [(3u32, 3u32), (4, 4)] {
        let config = WirelessConfig {
            rows,
            cols,
            solver_node_limit: 5_000,
            ..WirelessConfig::tiny()
        };
        let mesh = MeshNetwork::generate(&config);
        group.bench_with_input(
            BenchmarkId::new("centralized", format!("{rows}x{cols}")),
            &mesh,
            |b, mesh| {
                b.iter(|| {
                    black_box(centralized_assignment(mesh, &mesh.available_channels(0)).len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("distributed", format!("{rows}x{cols}")),
            &mesh,
            |b, mesh| {
                b.iter(|| black_box(distributed_assignment(mesh, &[1, 2, 3, 4]).len()));
            },
        );
    }
    group.finish();
}

fn bench_throughput_model(c: &mut Criterion) {
    c.bench_function("wireless/throughput_model_30_nodes", |b| {
        let config = WirelessConfig::default();
        let mesh = MeshNetwork::generate(&config);
        let assignment: std::collections::BTreeMap<_, _> = mesh
            .links()
            .into_iter()
            .enumerate()
            .map(|(i, l)| (l, 1 + (i as i64 % 6)))
            .collect();
        b.iter(|| black_box(aggregate_throughput(&mesh, &assignment, 6.0, true)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_channel_selection, bench_throughput_model
}
criterion_main!(benches);
