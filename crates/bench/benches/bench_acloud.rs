//! End-to-end benchmark for the ACloud use case (Fig. 2 / Fig. 3 machinery):
//! one full COP invocation per data center at realistic hot-VM counts, and
//! one experiment interval across all policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne_usecases::acloud::{dc_hosts, host_id, AcloudConfig, AcloudController, Placement, Vm};
use cologne_usecases::{run_acloud_experiment, AcloudConfig as Config};

fn hot_vms(n: usize) -> Vec<Vm> {
    (0..n)
        .map(|i| Vm {
            id: i as i64,
            dc: 0,
            customer: i,
            mem_gb: 1,
            cpu: 25.0 + (i as f64 * 9.0) % 70.0,
            powered_on: true,
        })
        .collect()
}

fn bench_single_cop(c: &mut Criterion) {
    let mut group = c.benchmark_group("acloud/single_cop_invocation");
    for n in [4usize, 8, 12] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_hot_vms")),
            &n,
            |b, &n| {
                let config = AcloudConfig {
                    solver_node_limit: 20_000,
                    ..AcloudConfig::tiny()
                };
                let vms = hot_vms(n);
                let mut placement = Placement::initial(&config, &vms, 1);
                for vm in &vms {
                    placement.migrate(vm.id, host_id(&config, 0, 0));
                }
                let background: std::collections::BTreeMap<i64, f64> = dc_hosts(&config, 0)
                    .into_iter()
                    .map(|h| (h, 10.0))
                    .collect();
                b.iter(|| {
                    let mut controller = AcloudController::new(&config, 0, false);
                    let hot: Vec<&Vm> = vms.iter().collect();
                    black_box(
                        controller
                            .optimize(&config, 0, &hot, &background, &placement)
                            .len(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_experiment_interval(c: &mut Criterion) {
    c.bench_function("acloud/experiment_half_hour_tiny", |b| {
        let config = Config {
            duration_hours: 0.5,
            ..Config::tiny()
        };
        b.iter(|| black_box(run_acloud_experiment(&config).intervals.len()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_cop, bench_experiment_interval
}
criterion_main!(benches);
