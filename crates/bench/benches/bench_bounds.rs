//! Benchmarks for the dual-bound subsystem: the cost of computing a root
//! certificate with each engine on the grounded ACloud COP, and the payoff —
//! a `gap_limit = 0.05` exact search terminating with a certificate in
//! measurably fewer nodes (and less time) than the full optimality proof.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne::datalog::{NodeId, Value};
use cologne::solver::{
    compute_root_bound, BoundMode, LnsConfig, Objective, SearchConfig, SolverMode,
};
use cologne::{
    CologneInstance, GroundedCop, ProgramParams, SolverBranching, SolverMode as ParamsSolverMode,
    VarDomain,
};
use cologne_usecases::programs::ACLOUD_CENTRALIZED;
use cologne_usecases::{large_acloud_instance, LargeAcloudConfig};

/// Twelve VMs over three hosts — the largest exact ACloud scenario of the
/// acceptance criteria (mirrors `tests/dual_bounds.rs`).
const VMS: [(i64, i64, i64); 12] = [
    (1, 40, 2),
    (2, 20, 2),
    (3, 30, 2),
    (4, 25, 2),
    (5, 35, 2),
    (6, 15, 2),
    (7, 45, 2),
    (8, 10, 2),
    (9, 50, 2),
    (10, 5, 2),
    (11, 55, 2),
    (12, 60, 2),
];

fn grounded_acloud(n_vms: usize) -> (GroundedCop, SearchConfig) {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(200_000));
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).unwrap();
    for &(vid, cpu, mem) in &VMS[..n_vms] {
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .unwrap();
    }
    for hid in [10i64, 11, 12] {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(32)])
            .unwrap();
    }
    let mut config = inst.search_config().clone();
    config.time_limit = None;
    config.node_limit = inst.params().solver_node_limit;
    let cop = inst.ground_only().unwrap();
    (cop, config)
}

/// Root-certificate computation must stay cheap next to the search it
/// informs: one call per engine on the grounded 12-VM COP.
fn bench_root_certificate(c: &mut Criterion) {
    let (cop, config) = grounded_acloud(12);
    let (_, obj) = cop.objective.expect("ACloud minimizes");
    let mut group = c.benchmark_group("bounds/root_certificate_12vm");
    for (name, mode) in [
        ("linear", BoundMode::Linear),
        ("relaxed", BoundMode::Relaxed),
        ("auto", BoundMode::Auto),
    ] {
        let cfg = SearchConfig {
            bound_mode: mode,
            ..config.clone()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(compute_root_bound(
                    &cop.model,
                    Objective::Minimize(obj),
                    cfg,
                    cop.model.domains(),
                ))
            });
        });
    }
    group.finish();
}

/// The acceptance pin, as wall-clock: the same exact search run to its full
/// 200k-node budget vs. terminating once the certified gap drops under 5%.
fn bench_gap_termination(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds/acloud_exact_12vm");
    for (name, mode, gap) in [
        ("budget_200k", BoundMode::Off, None),
        ("gap_0.05", BoundMode::Auto, Some(0.05)),
    ] {
        let (cop, config) = grounded_acloud(12);
        let (_, obj) = cop.objective.expect("ACloud minimizes");
        let cfg = SearchConfig {
            bound_mode: mode,
            gap_limit: gap,
            ..config
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let out = cop.model.minimize(obj, cfg);
                black_box((out.best_objective, out.stats.nodes))
            });
        });
    }
    group.finish();
}

/// Certificate cost at the other end of the scale: the 120-VM / 10-host
/// large ACloud scenario the LNS mode exists for.
fn bench_root_certificate_large(c: &mut Criterion) {
    let config = LargeAcloudConfig::default();
    let mut inst = large_acloud_instance(&config, ParamsSolverMode::Lns(config.lns_params()));
    let search = inst.search_config().clone();
    let cop = inst.ground_only().unwrap();
    let (_, obj) = cop.objective.expect("ACloud minimizes");
    let cfg = SearchConfig {
        bound_mode: BoundMode::Auto,
        ..search
    };
    c.bench_function("bounds/root_certificate_120vm/auto", |b| {
        b.iter(|| {
            black_box(compute_root_bound(
                &cop.model,
                Objective::Minimize(obj),
                &cfg,
                cop.model.domains(),
            ))
        });
    });
}

/// LNS under the same gap criterion: the 12-VM instance is perfectly
/// balanceable, so a gap-limited LNS run stops as soon as a dive lands the
/// certified-optimal incumbent, while the budget run keeps iterating.
fn bench_lns_gap_termination(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds/acloud_lns_12vm");
    for (name, mode, gap) in [
        ("budget_50k", BoundMode::Off, None),
        ("gap_0.05", BoundMode::Auto, Some(0.05)),
    ] {
        let (cop, config) = grounded_acloud(12);
        let (_, obj) = cop.objective.expect("ACloud minimizes");
        let cfg = SearchConfig {
            mode: SolverMode::Lns(LnsConfig::default()),
            node_limit: Some(50_000),
            bound_mode: mode,
            gap_limit: gap,
            ..config
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let out = cop.model.minimize(obj, cfg);
                black_box((out.best_objective, out.stats.nodes))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_root_certificate, bench_root_certificate_large,
        bench_gap_termination, bench_lns_gap_termination
}
criterion_main!(benches);
