//! Benchmarks of the staged solve pipeline: repeated `invokeSolver`
//! executions on one instance (cached `GroundingPlan`, recycled model arena)
//! against the cold path that recompiles and replans per invocation. This is
//! the loop Sec. 6 of the paper measures — solver invocations recur on every
//! monitoring epoch — and the reuse delta is the point of the staging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cologne::datalog::{NodeId, Value};
use cologne::{CologneInstance, ProgramParams, VarDomain};
use cologne_usecases::programs::ACLOUD_CENTRALIZED;

fn acloud_instance(vms: usize, hosts: usize) -> CologneInstance {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_node_limit(Some(20_000));
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).unwrap();
    for vid in 0..vms as i64 {
        inst.relation("vm")
            .unwrap()
            .insert(vec![
                Value::Int(vid),
                Value::Int(20 + (vid * 7) % 60),
                Value::Int(1),
            ])
            .unwrap();
    }
    for hid in 0..hosts as i64 {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(100)])
            .unwrap();
    }
    inst
}

fn bench_hot_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/invoke_solver_hot");
    for (vms, hosts) in [(4usize, 2usize), (6, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vms}vms_{hosts}hosts")),
            &(vms, hosts),
            |b, &(vms, hosts)| {
                let mut inst = acloud_instance(vms, hosts);
                inst.invoke_solver().unwrap(); // warm the plan + arena
                b.iter(|| black_box(inst.invoke_solver().unwrap().objective));
            },
        );
    }
    group.finish();
}

fn bench_cold_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/invoke_solver_cold");
    for (vms, hosts) in [(4usize, 2usize), (6, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vms}vms_{hosts}hosts")),
            &(vms, hosts),
            |b, &(vms, hosts)| {
                b.iter(|| {
                    let mut inst = acloud_instance(vms, hosts);
                    black_box(inst.invoke_solver().unwrap().objective)
                });
            },
        );
    }
    group.finish();
}

fn bench_ground_only(c: &mut Criterion) {
    c.bench_function("pipeline/ground_only_6vms_3hosts", |b| {
        let mut inst = acloud_instance(6, 3);
        inst.invoke_solver().unwrap();
        b.iter(|| {
            // Ground and hand the COP back, so every iteration exercises the
            // recycled-arena hot path (as invoke_solver does internally).
            let cop = inst.ground_only().unwrap();
            let vars = cop.model.num_vars();
            inst.recycle(cop);
            black_box(vars)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hot_invocation, bench_cold_invocation, bench_ground_only
}
criterion_main!(benches);
