//! Benchmarks of the incremental re-optimization path: delta-aware grounding
//! reuse and warm-started re-solving against the cold full-rebuild path.
//!
//! The headline pair runs the ACloud churn scenario (per-tick VM
//! arrivals/departures + host-capacity drift through the net simulator, LNS
//! under a node budget): the warm run re-solves each tick from the previous
//! incumbent at a third of the cold run's budget and still reaches
//! equal-or-better placements on every tick (pinned by
//! `cologne_usecases::churn`'s tests) — so its lower latency is a genuine
//! "re-solve faster at equal quality" win, not a quality trade. The
//! remaining benchmarks isolate the two component mechanisms: the memoized
//! no-delta re-solve (whole-COP reuse) and the single-tuple exact re-solve.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cologne::datalog::{NodeId, Value};
use cologne::{CologneInstance, LnsParams, ProgramParams, SolverMode, VarDomain};
use cologne_usecases::programs::ACLOUD_CENTRALIZED;
use cologne_usecases::{run_churn, ChurnConfig};

/// The churn configuration of `examples/incremental_churn.rs`: 40 hot VMs on
/// 6 hosts, 8 ticks of single-VM churn plus capacity drift, solved with LNS.
fn churn_config(incremental: bool, budget: u64) -> ChurnConfig {
    ChurnConfig {
        data_centers: 1,
        hosts_per_dc: 6,
        initial_vms_per_dc: 40,
        ticks: 8,
        arrivals_per_tick: 1,
        departures_per_tick: 1,
        capacity_drift_gb: 2,
        solver_node_limit: Some(budget),
        solver_mode: SolverMode::Lns(LnsParams {
            dive_node_limit: (budget / 8).max(500),
            ..Default::default()
        }),
        incremental,
        ..ChurnConfig::default()
    }
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/churn_lns_40vms");
    group.bench_function("warm_budget_8k", |b| {
        b.iter(|| black_box(run_churn(&churn_config(true, 8_000)).total_search_nodes))
    });
    group.bench_function("cold_budget_24k", |b| {
        b.iter(|| black_box(run_churn(&churn_config(false, 24_000)).total_search_nodes))
    });
    group.finish();
}

fn acloud_instance(vms: usize, hosts: usize, incremental: bool) -> CologneInstance {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_max_time(None)
        .with_warm_start(incremental)
        .with_delta_grounding(incremental);
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).unwrap();
    for vid in 0..vms as i64 {
        inst.relation("vm")
            .unwrap()
            .insert(vec![
                Value::Int(vid),
                Value::Int(20 + (vid * 7) % 60),
                Value::Int(1),
            ])
            .unwrap();
    }
    for hid in 0..hosts as i64 {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(100)])
            .unwrap();
    }
    inst
}

/// Re-solve with no delta at all: the delta summary proves the COP
/// unchanged, the retained COP and the memoized report are replayed —
/// grounding and search are both skipped.
fn bench_noop_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/noop_resolve");
    group.bench_function("reuse", |b| {
        let mut inst = acloud_instance(6, 3, true);
        inst.invoke_solver().unwrap();
        b.iter(|| black_box(inst.invoke_solver().unwrap().objective));
    });
    group.bench_function("cold", |b| {
        let mut inst = acloud_instance(6, 3, false);
        inst.invoke_solver().unwrap();
        b.iter(|| black_box(inst.invoke_solver().unwrap().objective));
    });
    group.finish();
}

/// Exact re-solve after a single-tuple delta (one VM arrives, then departs
/// again on the next iteration). Both paths prove optimality, so the
/// reports are identical (pinned by `tests/regression_incremental.rs`); the
/// delta path saves the re-grounding of clean declarations plus the
/// incumbent-discovery phase of the search.
fn bench_single_tuple_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/single_tuple_exact_8vms");
    let delta = || vec![Value::Int(999), Value::Int(33), Value::Int(1)];
    group.bench_function("warm", |b| {
        let mut inst = acloud_instance(8, 3, true);
        inst.invoke_solver().unwrap();
        let mut present = false;
        b.iter(|| {
            if present {
                inst.relation("vm").unwrap().delete(delta()).unwrap();
            } else {
                inst.relation("vm").unwrap().insert(delta()).unwrap();
            }
            present = !present;
            black_box(inst.invoke_solver().unwrap().objective)
        });
    });
    group.bench_function("cold", |b| {
        let mut inst = acloud_instance(8, 3, false);
        inst.invoke_solver().unwrap();
        let mut present = false;
        b.iter(|| {
            if present {
                inst.relation("vm").unwrap().delete(delta()).unwrap();
            } else {
                inst.relation("vm").unwrap().insert(delta()).unwrap();
            }
            present = !present;
            black_box(inst.invoke_solver().unwrap().objective)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_churn, bench_noop_resolve, bench_single_tuple_exact
}
criterion_main!(benches);
