//! Regenerates **Fig. 6** (aggregate throughput vs offered data rate for the
//! five channel-selection protocols on the 30-node mesh) and **Fig. 7**
//! (throughput under policy variations of the cross-layer protocol).
//!
//! ```text
//! cargo run --release -p cologne-bench --bin fig6_7_wireless [--quick]
//! ```

use cologne_bench::format_multi_series;
use cologne_usecases::{run_fig6, run_fig7, WirelessConfig, WirelessPolicy, WirelessProtocol};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        WirelessConfig {
            rows: 4,
            cols: 4,
            flows: 8,
            solver_node_limit: 10_000,
            ..WirelessConfig::default()
        }
    } else {
        WirelessConfig::default()
    };
    let data_rates: Vec<f64> = if quick {
        vec![1.0, 4.0, 8.0, 12.0]
    } else {
        vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
    };
    eprintln!(
        "running wireless experiments on a {}x{} grid ({} nodes), {} flows",
        config.rows,
        config.cols,
        config.nodes(),
        config.flows
    );

    println!(
        "Figure 6: aggregate throughput (Mbps) vs per-flow data rate (Mbps), {} nodes",
        config.nodes()
    );
    let fig6 = run_fig6(&config, &data_rates);
    let protocols = WirelessProtocol::all();
    let names: Vec<&str> = protocols.iter().map(|p| p.name()).collect();
    let series: Vec<Vec<f64>> = protocols
        .iter()
        .map(|p| fig6[p].throughput.clone())
        .collect();
    print!(
        "{}",
        format_multi_series("rate (Mbps)", &names, &data_rates, &series)
    );
    println!();
    for p in protocols {
        println!(
            "  {:<14} peak throughput {:>6.2} Mbps",
            p.name(),
            fig6[&p].peak()
        );
    }
    println!("(paper: Cologne protocols clearly outperform Identical-Ch and 1-Interface;");
    println!(" cross-layer performs best overall)");

    println!();
    println!("Figure 7: aggregate throughput (Mbps) under policy variations (cross-layer)");
    let fig7 = run_fig7(&config, &data_rates);
    let policies = WirelessPolicy::all();
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    let series: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| fig7[p].throughput.clone())
        .collect();
    print!(
        "{}",
        format_multi_series("rate (Mbps)", &names, &data_rates, &series)
    );
    let two = fig7[&WirelessPolicy::TwoHopInterference].peak();
    let restricted = fig7[&WirelessPolicy::RestrictedChannels].peak();
    let onehop = fig7[&WirelessPolicy::OneHopInterference].peak();
    println!();
    println!(
        "  restricted channels reduce peak throughput by {:.1}% (paper: 35.9%)",
        100.0 * (two - restricted).max(0.0) / two.max(f64::EPSILON)
    );
    println!(
        "  one-hop interference model reduces peak throughput by a further {:.1}% (paper: 6.9%)",
        100.0 * (restricted - onehop).max(0.0) / restricted.max(f64::EPSILON)
    );
}
