//! Regenerates **Fig. 2** (average CPU standard deviation of three data
//! centers over time) and **Fig. 3** (number of VM migrations per interval)
//! for the four ACloud policies, plus the Sec. 6.2 summary numbers.
//!
//! ```text
//! cargo run --release -p cologne-bench --bin fig2_3_acloud [--quick]
//! ```

use cologne_bench::format_multi_series;
use cologne_usecases::{run_acloud_experiment, AcloudConfig, AcloudPolicy};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        AcloudConfig {
            duration_hours: 1.0,
            vms_per_host: 20,
            customers: 60,
            solver_node_limit: 30_000,
            ..AcloudConfig::default()
        }
    } else {
        AcloudConfig::default()
    };
    eprintln!(
        "running ACloud experiment: {} DCs x {} hosts x {} VMs, {} intervals ({} mode)",
        config.data_centers,
        config.hosts_per_dc,
        config.vms_per_host,
        config.intervals(),
        if quick { "quick" } else { "full" }
    );
    let results = run_acloud_experiment(&config);

    let policies = AcloudPolicy::all();
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    let xs: Vec<f64> = results.intervals.iter().map(|i| i.time_hours).collect();

    println!(
        "Figure 2: average CPU standard deviation (%) of {} data centers",
        config.data_centers
    );
    let stdev_series: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| results.intervals.iter().map(|i| i.cpu_stdev[p]).collect())
        .collect();
    print!(
        "{}",
        format_multi_series("time (h)", &names, &xs, &stdev_series)
    );

    println!();
    println!("Figure 3: number of VM migrations per interval");
    let mig_series: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| {
            results
                .intervals
                .iter()
                .map(|i| i.migrations[p] as f64)
                .collect()
        })
        .collect();
    print!(
        "{}",
        format_multi_series("time (h)", &names, &xs, &mig_series)
    );

    println!();
    println!("Summary (Sec. 6.2):");
    for p in policies {
        println!(
            "  {:<12} mean stdev {:>8.2}%   mean migrations/interval {:>6.1}",
            p.name(),
            results.mean_stdev(p),
            results.mean_migrations(p)
        );
    }
    println!(
        "  ACloud reduces load imbalance by {:.1}% vs Default and {:.1}% vs Heuristic",
        100.0 * results.imbalance_reduction(AcloudPolicy::ACloud, AcloudPolicy::Default),
        100.0 * results.imbalance_reduction(AcloudPolicy::ACloud, AcloudPolicy::Heuristic),
    );
    println!("  (paper: 98.1% vs Default, 87.8% vs Heuristic; 20.3 vs 9 migrations/interval)");
}
