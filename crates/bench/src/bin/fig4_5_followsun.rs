//! Regenerates **Fig. 4** (normalized total cost as the distributed
//! Follow-the-Sun execution converges, for 2–10 data centers) and **Fig. 5**
//! (per-node communication overhead vs number of data centers).
//!
//! ```text
//! cargo run --release -p cologne-bench --bin fig4_5_followsun [--quick]
//! ```

use cologne_bench::format_series;
use cologne_usecases::{run_followsun_sweep, FollowSunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<u32> = if quick {
        vec![2, 4, 6]
    } else {
        vec![2, 4, 6, 8, 10]
    };
    let base = FollowSunConfig {
        solver_node_limit: if quick { 20_000 } else { 50_000 },
        ..FollowSunConfig::default()
    };
    eprintln!("running Follow-the-Sun sweep over {sizes:?} data centers");
    let results = run_followsun_sweep(&sizes, &base);

    println!("Figure 4: normalized total cost (%) vs time (s) during distributed solving");
    for (n, outcome) in &results {
        println!("--- {n} data centers ---");
        let points: Vec<(f64, f64)> = outcome
            .cost_series
            .iter()
            .map(|p| (p.time_secs, p.normalized_cost))
            .collect();
        print!("{}", format_series("time (s)", "total cost (%)", &points));
        println!(
            "cost reduction: {:.1}%   convergence: {:.0} s   migrated VM units: {}",
            100.0 * outcome.cost_reduction(),
            outcome.convergence_secs,
            outcome.migrated_vms
        );
        // Per-invocation solver effort, mirroring the paper's Table 2
        // per-COP-execution reporting.
        let invocations = outcome.solver_invocations.max(1);
        println!(
            "solver effort: {} invocations, per invocation avg {} nodes / {} fails / {} propagations (max depth {})",
            outcome.solver_invocations,
            outcome.solver_stats.nodes / invocations,
            outcome.solver_stats.fails / invocations,
            outcome.solver_stats.propagations / invocations,
            outcome.solver_stats.max_depth,
        );
        println!();
    }
    println!("(paper: cost reduction 40.4% at 2 DCs shrinking to 11.2% at 10 DCs)");

    println!();
    println!("Figure 5: per-node communication overhead (KB/s) vs number of data centers");
    let points: Vec<(f64, f64)> = results
        .iter()
        .map(|(n, o)| (*n as f64, o.per_node_overhead_kbps))
        .collect();
    print!("{}", format_series("# DCs", "overhead (KB/s)", &points));
    println!("(paper: linear growth, ~3.5 KB/s per node at 10 data centers)");
}
