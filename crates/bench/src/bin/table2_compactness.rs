//! Regenerates **Table 2** of the paper: number of Colog rules vs lines of
//! generated imperative (RapidNet + Gecode style) C++ for the five programs.
//!
//! ```text
//! cargo run -p cologne-bench --bin table2_compactness
//! ```

use cologne_usecases::{compactness_table, render_table};

fn main() {
    println!("Table 2: Colog and compiled C++ comparison");
    println!("(paper reference: ACloud 10 rules / 935 LOC, FTS 16/1487, FTS-dist 32/3112,");
    println!(" Wireless 35/3229, Wireless-dist 48/4445 — ~100x ratio)");
    println!();
    let rows = compactness_table();
    print!("{}", render_table(&rows));
    let avg_ratio: f64 = rows.iter().map(|r| r.ratio()).sum::<f64>() / rows.len() as f64;
    println!();
    println!("average generated-to-declarative ratio: {avg_ratio:.0}x");
}
