//! CI bench-regression gate: compare a fresh `COLOGNE_BENCH_JSON` run
//! against a committed `BENCH_pr*.json` baseline and exit nonzero when any
//! shared benchmark regresses beyond the threshold.
//!
//! ```text
//! bench_compare <current.json> <baseline.json> [--threshold FACTOR]
//! ```
//!
//! The threshold defaults to 3.0 — generous on purpose: the gate catches
//! order-of-magnitude bitrot on noisy shared runners, not small drifts (see
//! `cologne_bench::regress`). Benchmarks present on only one side are
//! printed but never fail the gate.

use std::process::ExitCode;

use cologne_bench::regress::{compare, parse_records};

fn usage() -> ExitCode {
    eprintln!("usage: bench_compare <current.json> <baseline.json> [--threshold FACTOR]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 3.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            let Some(value) = iter.next().and_then(|v| v.parse::<f64>().ok()) else {
                return usage();
            };
            threshold = value;
        } else {
            paths.push(arg);
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        return usage();
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(err) => {
            eprintln!("bench_compare: cannot read {path}: {err}");
            None
        }
    };
    let (Some(current_text), Some(baseline_text)) = (read(current_path), read(baseline_path))
    else {
        return ExitCode::from(2);
    };

    let current = parse_records(&current_text);
    let baseline = parse_records(&baseline_text);
    if current.is_empty() {
        eprintln!("bench_compare: no bench records in {current_path}");
        return ExitCode::from(2);
    }

    let report = compare(&current, &baseline);
    println!(
        "comparing {} benchmarks against {} (threshold {threshold}x on min iteration time)",
        report.comparisons.len(),
        baseline_path
    );
    print!("{}", report.render(threshold));

    let regressions = report.regressions(threshold);
    if regressions.is_empty() {
        println!("bench_compare: OK — no benchmark beyond {threshold}x of baseline");
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_compare: FAIL — {} benchmark(s) regressed beyond {threshold}x",
            regressions.len()
        );
        ExitCode::FAILURE
    }
}
