//! # cologne-bench
//!
//! Experiment harnesses and Criterion benchmarks that regenerate every table
//! and figure of the Cologne paper's evaluation (Sec. 6). Each experiment has
//! a binary that prints the same rows/series the paper reports:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 2 (code compactness) | `cargo run -p cologne-bench --bin table2_compactness` |
//! | Fig. 2 / Fig. 3 (ACloud)   | `cargo run --release -p cologne-bench --bin fig2_3_acloud` |
//! | Fig. 4 / Fig. 5 (Follow-the-Sun) | `cargo run --release -p cologne-bench --bin fig4_5_followsun` |
//! | Fig. 6 / Fig. 7 (wireless) | `cargo run --release -p cologne-bench --bin fig6_7_wireless` |
//!
//! The Criterion benchmarks (`cargo bench -p cologne-bench`) measure the
//! building blocks the paper discusses in its overhead paragraphs:
//! compilation time, per-COP solving time, incremental Datalog maintenance,
//! and per-use-case end-to-end optimization rounds.

use std::fmt::Write as _;

pub mod regress;

/// Format a data series as an aligned two-column table for harness output.
pub fn format_series(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{x_label:>12} {y_label:>16}");
    for (x, y) in points {
        let _ = writeln!(out, "{x:>12.2} {y:>16.2}");
    }
    out
}

/// Format several named series sharing the same x-axis (one column per name).
pub fn format_multi_series(
    x_label: &str,
    names: &[&str],
    xs: &[f64],
    series: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{x_label:>12}");
    for n in names {
        let _ = write!(out, " {n:>16}");
    }
    let _ = writeln!(out);
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:>12.2}");
        for s in series {
            let _ = write!(out, " {:>16.2}", s.get(i).copied().unwrap_or(f64::NAN));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_formatting_is_aligned() {
        let s = format_series("time", "cost", &[(0.0, 100.0), (5.0, 87.5)]);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("100.00"));
    }

    #[test]
    fn multi_series_handles_missing_points() {
        let s = format_multi_series(
            "rate",
            &["a", "b"],
            &[1.0, 2.0],
            &[vec![3.0, 4.0], vec![5.0]],
        );
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("NaN"));
    }
}
