//! Bench-regression comparison: parse the JSON-lines emitted by the
//! vendored criterion stand-in (`COLOGNE_BENCH_JSON`) and compare a fresh
//! run against a committed baseline (`BENCH_pr*.json`).
//!
//! This is the library behind the `bench_compare` binary that gates CI: a
//! benchmark regresses when its **minimum** per-iteration time exceeds the
//! baseline's minimum by more than the threshold factor. The minimum is
//! compared (not the mean) because CI runs use a short wall-clock budget and
//! few iterations — the minimum is the most noise-resistant statistic such a
//! sample offers. The threshold is deliberately generous (3x by default):
//! the gate exists to catch order-of-magnitude bitrot on shared runners,
//! not 10% drifts.
//!
//! Benchmarks present on only one side are reported but never fail the
//! gate: adding or retiring benchmark groups must not require a baseline
//! refresh in the same commit.

use std::fmt::Write as _;

/// One benchmark record of a `COLOGNE_BENCH_JSON` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Full benchmark name (`group/function/parameter`).
    pub name: String,
    /// Timed iterations the statistics are drawn from.
    pub iters: u64,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: u64,
    /// Mean iteration, in nanoseconds.
    pub mean_ns: u64,
    /// Slowest iteration, in nanoseconds.
    pub max_ns: u64,
}

/// Extract a string field from a single-line JSON object (the emitter never
/// escapes quotes inside benchmark names).
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract an unsigned integer field from a single-line JSON object.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Parse a JSON-lines bench file. Lines that are not bench records (blank,
/// malformed) are skipped silently, so concatenated or hand-edited files
/// stay usable.
pub fn parse_records(text: &str) -> Vec<BenchRecord> {
    text.lines()
        .filter_map(|line| {
            Some(BenchRecord {
                name: string_field(line, "name")?,
                iters: u64_field(line, "iters")?,
                min_ns: u64_field(line, "min_ns")?,
                mean_ns: u64_field(line, "mean_ns")?,
                max_ns: u64_field(line, "max_ns")?,
            })
        })
        .collect()
}

/// Comparison of one benchmark present in both runs.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline minimum, nanoseconds.
    pub baseline_ns: u64,
    /// Current minimum, nanoseconds.
    pub current_ns: u64,
    /// `current / baseline` (lower is faster).
    pub ratio: f64,
}

impl Comparison {
    /// True when the current run exceeds the baseline by more than
    /// `threshold`.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio > threshold
    }
}

/// Result of comparing a bench run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Benchmarks present in both runs, in baseline order.
    pub comparisons: Vec<Comparison>,
    /// Benchmarks only in the current run (new groups — informational).
    pub only_current: Vec<String>,
    /// Benchmarks only in the baseline (retired groups — informational).
    pub only_baseline: Vec<String>,
}

impl CompareReport {
    /// Names of the benchmarks regressing beyond `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&Comparison> {
        self.comparisons
            .iter()
            .filter(|c| c.regressed(threshold))
            .collect()
    }

    /// Render the report as an aligned table (plus the one-sided lists).
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<62} {:>12} {:>12} {:>7}",
            "benchmark", "baseline", "current", "ratio"
        );
        for c in &self.comparisons {
            let flag = if c.regressed(threshold) {
                "  << REGRESSION"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<62} {:>10}µs {:>10}µs {:>6.2}x{}",
                c.name,
                c.baseline_ns / 1_000,
                c.current_ns / 1_000,
                c.ratio,
                flag
            );
        }
        for name in &self.only_current {
            let _ = writeln!(out, "{name:<62} (new: no baseline)");
        }
        for name in &self.only_baseline {
            let _ = writeln!(out, "{name:<62} (baseline only: not run)");
        }
        out
    }
}

/// Compare a current run against a baseline on minimum iteration times.
pub fn compare(current: &[BenchRecord], baseline: &[BenchRecord]) -> CompareReport {
    let mut report = CompareReport::default();
    for base in baseline {
        match current.iter().find(|c| c.name == base.name) {
            Some(cur) => report.comparisons.push(Comparison {
                name: base.name.clone(),
                baseline_ns: base.min_ns,
                current_ns: cur.min_ns,
                ratio: cur.min_ns as f64 / base.min_ns.max(1) as f64,
            }),
            None => report.only_baseline.push(base.name.clone()),
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            report.only_current.push(cur.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"name\":\"solver/branch_and_bound/6vms\",\"iters\":15,",
        "\"min_ns\":1000000,\"mean_ns\":1100000,\"max_ns\":1300000}\n",
        "not a record\n",
        "{\"name\":\"datalog/tc/20\",\"iters\":20,",
        "\"min_ns\":2000,\"mean_ns\":2500,\"max_ns\":9000}\n",
    );

    #[test]
    fn parses_json_lines_and_skips_garbage() {
        let records = parse_records(SAMPLE);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "solver/branch_and_bound/6vms");
        assert_eq!(records[0].iters, 15);
        assert_eq!(records[0].min_ns, 1_000_000);
        assert_eq!(records[1].mean_ns, 2_500);
    }

    #[test]
    fn compare_flags_only_regressions_beyond_threshold() {
        let baseline = parse_records(SAMPLE);
        let mut current = baseline.clone();
        current[0].min_ns = 2_500_000; // 2.5x: within a 3x threshold
        current[1].min_ns = 7_000; // 3.5x: regression
        let report = compare(&current, &baseline);
        assert_eq!(report.comparisons.len(), 2);
        let regressions = report.regressions(3.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "datalog/tc/20");
        assert!(report.render(3.0).contains("REGRESSION"));
    }

    #[test]
    fn one_sided_benchmarks_are_informational() {
        let baseline = parse_records(SAMPLE);
        let current = vec![
            baseline[0].clone(),
            BenchRecord {
                name: "incremental/new_group".into(),
                iters: 3,
                min_ns: 5,
                mean_ns: 6,
                max_ns: 7,
            },
        ];
        let report = compare(&current, &baseline);
        assert_eq!(report.only_current, vec!["incremental/new_group"]);
        assert_eq!(report.only_baseline, vec!["datalog/tc/20"]);
        assert!(report.regressions(3.0).is_empty());
        let rendered = report.render(3.0);
        assert!(rendered.contains("no baseline"));
        assert!(rendered.contains("not run"));
    }

    #[test]
    fn faster_current_never_regresses() {
        let baseline = parse_records(SAMPLE);
        let mut current = baseline.clone();
        current[0].min_ns = 10;
        let report = compare(&current, &baseline);
        assert!(report.regressions(1.0).is_empty());
    }
}
