//! The Colog programs evaluated in the paper.
//!
//! These are the five program listings behind Table 2 (plus the policy
//! extensions of Sec. 4.2/4.3). The executable experiments compile the same
//! sources through the `cologne` runtime; the full listings (including the
//! iterative-update rules that the experiment drivers implement natively,
//! such as Follow-the-Sun's `r2`/`r3`) are used for the code-compactness
//! comparison.

/// ACloud centralized load-balancing program (Sec. 4.2).
pub const ACLOUD_CENTRALIZED: &str = r#"
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
"#;

/// The migration-limiting extension of ACloud (rules d5, d6, c3 of Sec. 4.2),
/// appended to [`ACLOUD_CENTRALIZED`] to obtain the "ACloud (M)" policy.
pub const ACLOUD_MIGRATION_EXTENSION: &str = r#"
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
"#;

/// ACloud with the migration limit (the "ACloud (M)" policy of Sec. 6.2).
pub fn acloud_with_migration_limit() -> String {
    format!("{ACLOUD_CENTRALIZED}\n{ACLOUD_MIGRATION_EXTENSION}")
}

/// Follow-the-Sun, centralized formulation (the global COP of Sec. 3.1.2
/// solved by a single instance; used for Table 2 and as a reference point).
pub const FOLLOWSUN_CENTRALIZED: &str = r#"
goal minimize C in aggTotalCost(C).
var migVm(X,Y,D,R) forall toMigVm(X,Y,D).

r1 toMigVm(X,Y,D) <- link(X,Y), demand(D,Amt).
d1 nextVm(X,D,R) <- curVm(X,D,R1), migVm(X,Y,D,R2), R==R1-R2.
d2 aggCommCost(X,SUM<Cost>) <- nextVm(X,D,R), commCost(X,D,C), Cost==R*C.
d3 aggOpCost(X,SUM<Cost>) <- nextVm(X,D,R), opCost(X,C), Cost==R*C.
d4 aggMigCost(X,SUMABS<Cost>) <- migVm(X,Y,D,R), migCost(X,Y,C), Cost==R*C.
d5 nodeCost(X,C) <- aggCommCost(X,C1), aggOpCost(X,C2), aggMigCost(X,C3), C==C1+C2+C3.
d6 aggTotalCost(SUM<C>) <- nodeCost(X,C).
d7 aggNextVm(X,SUM<R>) <- nextVm(X,D,R).
c1 aggNextVm(X,R1) -> resource(X,R2), R1<=R2.
c2 nextVm(X,D,R) -> R>=0.
"#;

/// Follow-the-Sun, distributed per-link formulation (Sec. 4.3). Rules `r2`
/// and `r3` (result propagation and allocation update) are part of the
/// listing; the experiment driver performs the equivalent updates natively
/// between link negotiations.
pub const FOLLOWSUN_DISTRIBUTED: &str = r#"
goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D).

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).
d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R), commCost(@X,D,C), Cost==R*C.
d4 aggOpCost(@X,SUM<Cost>) <- nextVm(@X,D,R), opCost(@X,C), Cost==R*C.
d5 nborAggCommCost(@X,SUM<Cost>) <- link(@Y,X), commCost(@Y,D,C), nborNextVm(@X,Y,D,R), Cost==R*C.
d6 nborAggOpCost(@X,SUM<Cost>) <- link(@Y,X), opCost(@Y,C), nborNextVm(@X,Y,D,R), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.
d8 aggCost(@X,C) <- aggCommCost(@X,C1), aggOpCost(@X,C2), aggMigCost(@X,C3), nborAggCommCost(@X,C4), nborAggOpCost(@X,C5), C==C1+C2+C3+C4+C5.
d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
c3 nextVm(@X,D,R) -> R>=0.
c4 nborNextVm(@X,Y,D,R) -> R>=0.
"#;

/// The policy extension limiting per-link migrations (rules d11/c3 of
/// Sec. 4.3), appended to [`FOLLOWSUN_DISTRIBUTED`] for the
/// "Follow-the-Sun (M)" variant evaluated in Sec. 6.3.
pub const FOLLOWSUN_MIGRATION_EXTENSION: &str = r#"
d11 aggMigVm(@X,Y,SUMABS<R>) <- migVm(@X,Y,D,R).
c5 aggMigVm(@X,Y,R) -> R<=max_migrates.
"#;

/// Follow-the-Sun distributed program with the migration limit.
pub fn followsun_with_migration_limit() -> String {
    format!("{FOLLOWSUN_DISTRIBUTED}\n{FOLLOWSUN_MIGRATION_EXTENSION}")
}

/// Centralized wireless channel selection (Appendix A.2, one-hop model).
pub const WIRELESS_CENTRALIZED: &str = r#"
goal minimize C in totalCost(C).
var assign(X,Y,C) forall link(X,Y).

d1 cost(X,Y,Z,C) <- assign(X,Y,C1), assign(X,Z,C2), Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
d2 totalCost(SUM<C>) <- cost(X,Y,Z,C).
c1 assign(X,Y,C) -> primaryUser(X,C2), C!=C2.
c2 assign(X,Y,C) -> assign(Y,X,C).
d3 uniqueChannel(X,UNIQUE<C>) <- assign(X,Y,C).
c3 uniqueChannel(X,Count) -> numInterface(X,K), Count<=K.
"#;

/// Centralized wireless channel selection with the two-hop interference
/// model (the `d3` variant of Appendix A.2) added on top of the one-hop cost.
pub const WIRELESS_CENTRALIZED_TWOHOP_EXTENSION: &str = r#"
d4 cost2(X,Y,Z,W,C) <- assign(X,Y,C1), link(Z,X), assign(Z,W,C2), X!=W, Y!=W, Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
d5 totalCost2(SUM<C>) <- cost2(X,Y,Z,W,C).
"#;

/// Distributed wireless channel selection (Appendix A.3): per-link
/// negotiation with the two-hop interference model. Neighbouring nodes
/// publish their already-chosen channels (`chosen`) and primary-user
/// restrictions to the negotiating node through the regular rules `r2`/`r3`;
/// rule `r4` (channel symmetry propagation) is in the listing and the
/// experiment driver applies the symmetric assignment after each
/// negotiation, exactly as the paper's `r1` describes.
pub const WIRELESS_DISTRIBUTED: &str = r#"
goal minimize C in totalCost(@X,C).
var assign(@X,Y,C) forall setLink(@X,Y).

r2 nborChosen(@X,Z,W,C2) <- link(@Z,X), chosen(@Z,W,C2).
r3 nborPrimaryUser(@X,Y,C2) <- link(@Y,X), primaryUser(@Y,C2).
d1 cost(@X,Y,Z,W,C) <- assign(@X,Y,C1), nborChosen(@X,Z,W,C2), X!=W, Y!=W, Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
d2 cost(@X,Y,X,W,C) <- assign(@X,Y,C1), chosen(@X,W,C2), Y!=W, (C==1)==(|C1-C2|<F_mindiff).
d3 totalCost(@X,SUM<C>) <- cost(@X,Y,Z,W,C).
c1 assign(@X,Y,C) -> primaryUser(@X,C2), C!=C2.
c2 assign(@X,Y,C) -> nborPrimaryUser(@X,Y,C2), C!=C2.
r4 assign(@Y,X,C) <- assign(@X,Y,C).
"#;

/// Names and sources of the five programs compared in Table 2.
pub fn table2_programs() -> Vec<(&'static str, String)> {
    vec![
        ("ACloud (centralized)", ACLOUD_CENTRALIZED.to_string()),
        (
            "Follow-the-Sun (centralized)",
            FOLLOWSUN_CENTRALIZED.to_string(),
        ),
        (
            "Follow-the-Sun (distributed)",
            followsun_with_migration_limit(),
        ),
        (
            "Wireless (centralized)",
            format!("{WIRELESS_CENTRALIZED}\n{WIRELESS_CENTRALIZED_TWOHOP_EXTENSION}"),
        ),
        ("Wireless (distributed)", WIRELESS_DISTRIBUTED.to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::{analyze, parse_program};

    #[test]
    fn all_programs_parse_and_analyze() {
        for (name, src) in table2_programs() {
            let program = parse_program(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let analysis = analyze(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(program.num_rules() > 0, "{name}");
            assert!(!analysis.solver_tables.table_names().is_empty(), "{name}");
        }
    }

    #[test]
    fn acloud_extension_parses() {
        let program = parse_program(&acloud_with_migration_limit()).unwrap();
        assert!(program.rule("d5").is_some());
        assert!(program.rule("c3").is_some());
        assert_eq!(program.rules.len(), 10);
    }

    #[test]
    fn followsun_distributed_has_distributed_rules() {
        let program = parse_program(FOLLOWSUN_DISTRIBUTED).unwrap();
        assert!(program.rules.iter().any(|r| r.is_distributed()));
        let analysis = analyze(&program).unwrap();
        assert!(analysis.solver_tables.is_solver_table("migVm"));
        assert!(analysis.solver_tables.is_solver_table("aggCost"));
    }

    #[test]
    fn wireless_programs_reference_interference_parameters() {
        assert!(WIRELESS_CENTRALIZED.contains("F_mindiff"));
        assert!(WIRELESS_DISTRIBUTED.contains("F_mindiff"));
        let program = parse_program(WIRELESS_CENTRALIZED).unwrap();
        let analysis = analyze(&program).unwrap();
        assert!(analysis.solver_tables.is_solver_table("assign"));
        assert!(analysis.solver_tables.is_solver_table("uniqueChannel"));
    }

    #[test]
    fn rule_counts_are_in_paper_ballpark() {
        // Table 2 lists 10/16/32/35/48 rules; our executable listings are the
        // core subsets, so just check relative ordering and a sane floor.
        let counts: Vec<usize> = table2_programs()
            .iter()
            .map(|(_, src)| parse_program(src).unwrap().num_rules())
            .collect();
        assert!(counts[0] >= 9, "ACloud has {} rules", counts[0]);
        assert!(counts[2] >= counts[1], "distributed FTS >= centralized FTS");
        assert!(counts.iter().all(|&c| c >= 7));
    }
}
