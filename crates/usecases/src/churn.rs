//! Churn scenario: ACloud under continuous workload change — the
//! incremental re-optimization workload.
//!
//! The paper's framing of Cologne is *continuous* optimization: monitored
//! state flows through the incremental Datalog engine and every change
//! triggers a re-solve. The Fig. 2/3 experiment approximates this with
//! wholesale table refreshes every 10 minutes; this scenario instead drives
//! genuine per-tick deltas — VM arrivals, VM departures and host-capacity
//! drift — through a [`cologne::Deployment`] (one ACloud
//! controller per data center, ticked by the net simulator's timers), so
//! that consecutive `invokeSolver` executions differ by a handful of tuples.
//!
//! That is exactly the regime the delta-aware grounding and warm-started
//! solving of the `cologne` runtime target: with
//! [`ChurnConfig::incremental`] on (the default), every re-solve after the
//! first takes the incremental path; with it off, every tick re-grounds the
//! whole COP and cold-starts the search. The `bench_incremental` group of
//! `cologne-bench` measures the two against each other; the tests in this
//! module pin that both produce the same optimization outcomes.

use std::collections::BTreeMap;

use cologne::datalog::{NodeId, Tuple, Value};
use cologne::net::{LinkProps, SimTime, Topology};
use cologne::{
    DeploymentBuilder, ProgramParams, SolverBranching, SolverMode, TimerOutcome, VarDomain,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::programs::ACLOUD_CENTRALIZED;

/// Configuration of the churn scenario.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of data centers — one Cologne node (and one ACloud COP) each.
    pub data_centers: usize,
    /// Hosts per data center.
    pub hosts_per_dc: usize,
    /// Hot (solver-managed) VMs per data center at the start.
    pub initial_vms_per_dc: usize,
    /// Number of re-optimization ticks to simulate.
    pub ticks: u64,
    /// VMs arriving per data center per tick.
    pub arrivals_per_tick: usize,
    /// VMs departing per data center per tick.
    pub departures_per_tick: usize,
    /// Per-tick host memory-capacity drift amplitude in GB (capacities move
    /// by a value in `[-drift, +drift]`, floored so the deployment stays
    /// feasible).
    pub capacity_drift_gb: i64,
    /// Simulated time between ticks.
    pub tick_interval: SimTime,
    /// Branch-and-bound node budget per COP execution (`None` = unlimited;
    /// the wall clock is always disabled for determinism).
    pub solver_node_limit: Option<u64>,
    /// Search mode per COP execution: exact branch-and-bound (the default)
    /// or LNS — the mode of choice for churn instances too large for an
    /// optimality proof per tick.
    pub solver_mode: SolverMode,
    /// Run with delta-aware grounding + warm-started solving (the default)
    /// or force every tick onto the cold full-rebuild path (the baseline
    /// the `bench_incremental` group compares against).
    pub incremental: bool,
    /// Worker threads per COP search (`None` = sequential). The per-tick
    /// results are identical either way; see the solver's `parallel` module.
    pub solver_workers: Option<std::num::NonZeroUsize>,
    /// RNG seed for the churn trace.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            data_centers: 2,
            hosts_per_dc: 4,
            initial_vms_per_dc: 10,
            ticks: 8,
            arrivals_per_tick: 1,
            departures_per_tick: 1,
            capacity_drift_gb: 2,
            tick_interval: SimTime::from_secs(1),
            solver_node_limit: None,
            solver_mode: SolverMode::Exact,
            incremental: true,
            solver_workers: None,
            seed: 42,
        }
    }
}

impl ChurnConfig {
    /// A deliberately tiny configuration for unit tests.
    pub fn tiny() -> Self {
        ChurnConfig {
            data_centers: 1,
            hosts_per_dc: 3,
            initial_vms_per_dc: 5,
            ticks: 4,
            ..Default::default()
        }
    }

    /// The same scenario with the incremental machinery toggled.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }
}

/// One VM of the churn trace.
#[derive(Debug, Clone)]
struct ChurnVm {
    id: i64,
    cpu: i64,
    mem: i64,
}

impl ChurnVm {
    fn row(&self) -> Tuple {
        vec![
            Value::Int(self.id),
            Value::Int(self.cpu),
            Value::Int(self.mem),
        ]
    }
}

/// The deltas one node applies at one tick.
#[derive(Debug, Clone, Default)]
struct TickDelta {
    insert_vms: Vec<Tuple>,
    delete_vms: Vec<Tuple>,
    /// `(host index, old capacity, new capacity)` — applied via single-tuple
    /// delete+insert so unchanged hosts produce no deltas at all.
    capacity_updates: Vec<(i64, i64, i64)>,
}

/// What one solver invocation of the scenario observed.
#[derive(Debug, Clone)]
pub struct ChurnTick {
    /// Tick index (0-based).
    pub tick: u64,
    /// The data-center node that solved.
    pub node: NodeId,
    /// Whether the COP was feasible.
    pub feasible: bool,
    /// Objective value of the best placement (scaled CPU variance).
    pub objective: Option<i64>,
    /// Search nodes this invocation explored.
    pub search_nodes: u64,
    /// Whether the solve was warm-started.
    pub warm_started: bool,
}

/// Aggregate result of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// One entry per (tick, data center), in simulation order.
    pub ticks: Vec<ChurnTick>,
    /// Sum of [`cologne::PipelineStats::full_rebuilds`] over all nodes.
    pub full_rebuilds: u64,
    /// Sum of [`cologne::PipelineStats::incremental_builds`] over all nodes.
    pub incremental_builds: u64,
    /// Total search nodes explored across every invocation.
    pub total_search_nodes: u64,
}

impl ChurnOutcome {
    /// True when every invocation found a feasible placement.
    pub fn all_feasible(&self) -> bool {
        self.ticks.iter().all(|t| t.feasible)
    }

    /// Objective values in simulation order (for cross-run comparison).
    pub fn objectives(&self) -> Vec<Option<i64>> {
        self.ticks.iter().map(|t| t.objective).collect()
    }
}

/// Build the per-node churn trace: initial VMs/capacities plus per-tick
/// deltas, all derived deterministically from the seed.
struct NodeTrace {
    initial_vms: Vec<ChurnVm>,
    initial_capacity: i64,
    ticks: Vec<TickDelta>,
}

fn build_traces(config: &ChurnConfig) -> Vec<NodeTrace> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut traces = Vec::with_capacity(config.data_centers);
    for dc in 0..config.data_centers {
        let mut next_id = (dc as i64) * 1_000_000;
        let mut new_vm = |rng: &mut StdRng| {
            let vm = ChurnVm {
                id: next_id,
                cpu: rng.gen_range(10i64..60),
                mem: rng.gen_range(1i64..4),
            };
            next_id += 1;
            vm
        };
        let mut live: Vec<ChurnVm> = (0..config.initial_vms_per_dc)
            .map(|_| new_vm(&mut rng))
            .collect();
        let initial_vms = live.clone();
        // Generous baseline capacity: worst-case memory plus headroom, so
        // drift never makes the COP infeasible.
        let worst_mem = 4
            * (config.initial_vms_per_dc + config.ticks as usize * config.arrivals_per_tick) as i64;
        let initial_capacity = worst_mem / config.hosts_per_dc.max(1) as i64 + 8;
        let mut capacities: Vec<i64> = vec![initial_capacity; config.hosts_per_dc];
        let floor = initial_capacity / 2;

        let mut ticks = Vec::with_capacity(config.ticks as usize);
        for _ in 0..config.ticks {
            let mut delta = TickDelta::default();
            for _ in 0..config.departures_per_tick.min(live.len().saturating_sub(1)) {
                let idx = rng.gen_range(0..live.len());
                let vm = live.swap_remove(idx);
                delta.delete_vms.push(vm.row());
            }
            for _ in 0..config.arrivals_per_tick {
                let vm = new_vm(&mut rng);
                delta.insert_vms.push(vm.row());
                live.push(vm);
            }
            if config.capacity_drift_gb > 0 {
                // Drift one host per tick: a genuinely small delta.
                let host = rng.gen_range(0..config.hosts_per_dc);
                let step = rng.gen_range(-config.capacity_drift_gb..=config.capacity_drift_gb);
                let updated = (capacities[host] + step).max(floor);
                if updated != capacities[host] {
                    delta
                        .capacity_updates
                        .push((host as i64, capacities[host], updated));
                    capacities[host] = updated;
                }
            }
            ticks.push(delta);
        }
        traces.push(NodeTrace {
            initial_vms,
            initial_capacity,
            ticks,
        });
    }
    traces
}

/// Global host id for `(dc, host_in_dc)`.
fn churn_host_id(config: &ChurnConfig, dc: usize, host: usize) -> i64 {
    (dc * config.hosts_per_dc + host) as i64
}

/// Run the churn scenario: build the deployment, replay the trace tick by
/// tick through the net simulator's timers (each tick applies its deltas and
/// invokes the solver on every data-center node), and collect per-invocation
/// metrics plus the grounding counters.
pub fn run_churn(config: &ChurnConfig) -> ChurnOutcome {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(config.solver_node_limit)
        .with_solver_mode(config.solver_mode.clone())
        .with_solver_workers(config.solver_workers)
        .with_warm_start(config.incremental)
        .with_delta_grounding(config.incremental);
    let topology = Topology::line(config.data_centers as u32, LinkProps::default());
    let mut driver = DeploymentBuilder::new(ACLOUD_CENTRALIZED)
        .params(params)
        .topology(topology)
        .build()
        .expect("ACloud program compiles");

    let traces = build_traces(config);
    for (dc, trace) in traces.iter().enumerate() {
        let node = NodeId(dc as u32);
        let inst = driver.instance_mut(node).expect("node exists");
        let mut vm = inst.relation("vm").expect("vm is in the schema");
        for row in &trace.initial_vms {
            vm.insert(row.row()).expect("vm rows match the schema");
        }
        for host in 0..config.hosts_per_dc {
            let hid = churn_host_id(config, dc, host);
            inst.relation("host")
                .expect("host is in the schema")
                .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
                .expect("host rows match the schema");
            inst.relation("hostMemThres")
                .expect("hostMemThres is in the schema")
                .insert(vec![Value::Int(hid), Value::Int(trace.initial_capacity)])
                .expect("hostMemThres rows match the schema");
        }
        driver.schedule_timer(node, config.tick_interval, 0);
    }

    let trace_by_node: BTreeMap<u32, &NodeTrace> = traces
        .iter()
        .enumerate()
        .map(|(dc, t)| (dc as u32, t))
        .collect();
    let mut ticks: Vec<ChurnTick> = Vec::new();
    let horizon = SimTime(config.tick_interval.0 * (config.ticks + 1));
    driver.run_until(horizon, |inst, tag| {
        let trace = trace_by_node[&inst.node().0];
        let Some(delta) = trace.ticks.get(tag as usize) else {
            return TimerOutcome::default();
        };
        let dc = inst.node().0 as usize;
        let mut vm = inst.relation("vm").expect("vm is in the schema");
        for row in &delta.delete_vms {
            vm.delete(row.clone()).expect("vm rows match the schema");
        }
        for row in &delta.insert_vms {
            vm.insert(row.clone()).expect("vm rows match the schema");
        }
        for &(host, old, new) in &delta.capacity_updates {
            let hid = churn_host_id(config, dc, host as usize);
            let mut thres = inst
                .relation("hostMemThres")
                .expect("hostMemThres is in the schema");
            thres
                .delete(vec![Value::Int(hid), Value::Int(old)])
                .expect("hostMemThres rows match the schema");
            thres
                .insert(vec![Value::Int(hid), Value::Int(new)])
                .expect("hostMemThres rows match the schema");
        }
        let report = inst.invoke_solver().expect("churn COP grounds");
        ticks.push(ChurnTick {
            tick: tag,
            node: inst.node(),
            feasible: report.feasible,
            objective: report.objective,
            search_nodes: report.stats.nodes,
            warm_started: report.stats.warm_start,
        });
        let reschedule = (tag + 1 < config.ticks).then(|| (config.tick_interval, tag + 1));
        TimerOutcome {
            outgoing: report.outgoing,
            reschedule,
        }
    });

    let mut full_rebuilds = 0;
    let mut incremental_builds = 0;
    for node in driver.nodes() {
        let stats = driver.instance(node).expect("node exists").pipeline_stats();
        full_rebuilds += stats.full_rebuilds;
        incremental_builds += stats.incremental_builds;
    }
    let total_search_nodes = ticks.iter().map(|t| t.search_nodes).sum();
    ChurnOutcome {
        ticks,
        full_rebuilds,
        incremental_builds,
        total_search_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_runs_every_tick_on_every_node() {
        let config = ChurnConfig::tiny();
        let outcome = run_churn(&config);
        assert_eq!(
            outcome.ticks.len(),
            (config.ticks as usize) * config.data_centers
        );
        assert!(outcome.all_feasible(), "churn must stay feasible");
        // first tick cold, every later tick incremental, per node
        assert_eq!(outcome.full_rebuilds, config.data_centers as u64);
        assert_eq!(
            outcome.incremental_builds,
            (config.ticks - 1) * config.data_centers as u64
        );
        // every re-solve after the first is warm-started
        for t in &outcome.ticks {
            assert_eq!(t.warm_started, t.tick > 0, "tick {} warm flag", t.tick);
        }
    }

    #[test]
    fn incremental_and_cold_runs_agree_on_objectives() {
        let config = ChurnConfig::tiny();
        let warm = run_churn(&config);
        let cold = run_churn(&config.clone().with_incremental(false));
        assert_eq!(
            warm.objectives(),
            cold.objectives(),
            "incremental re-optimization must not change solution quality"
        );
        assert_eq!(cold.full_rebuilds, config.ticks);
        assert_eq!(cold.incremental_builds, 0);
        assert!(
            warm.total_search_nodes < cold.total_search_nodes,
            "warm re-solves must explore fewer nodes: {} vs {}",
            warm.total_search_nodes,
            cold.total_search_nodes
        );
    }

    #[test]
    fn warm_low_budget_beats_cold_high_budget() {
        // The bench_incremental claim in miniature: with LNS under a node
        // budget, the warm path re-solves each tick from the previous
        // incumbent, so at a third of the cold budget it still reaches
        // equal-or-better placements on every tick — the accumulated search
        // effort is what the cold path throws away.
        use cologne::{LnsParams, SolverMode};
        let lns = |budget: u64, incremental: bool| ChurnConfig {
            data_centers: 1,
            hosts_per_dc: 5,
            initial_vms_per_dc: 24,
            ticks: 5,
            solver_node_limit: Some(budget),
            solver_mode: SolverMode::Lns(LnsParams {
                dive_node_limit: (budget / 8).max(200),
                ..Default::default()
            }),
            incremental,
            ..ChurnConfig::default()
        };
        let warm = run_churn(&lns(2_000, true));
        let cold = run_churn(&lns(6_000, false));
        assert!(warm.all_feasible() && cold.all_feasible());
        let mean = |o: &ChurnOutcome| {
            let objs: Vec<i64> = o.ticks.iter().filter_map(|t| t.objective).collect();
            objs.iter().sum::<i64>() as f64 / objs.len() as f64
        };
        assert!(
            mean(&warm) <= mean(&cold),
            "warm mean {:.0} must not be worse than cold mean {:.0}",
            mean(&warm),
            mean(&cold)
        );
        let last = |o: &ChurnOutcome| o.ticks.last().and_then(|t| t.objective).unwrap_or(i64::MAX);
        assert!(
            last(&warm) <= last(&cold),
            "final tick: warm {} must not be worse than cold {}",
            last(&warm),
            last(&cold)
        );
        assert!(warm.total_search_nodes < cold.total_search_nodes / 2);
    }

    #[test]
    fn churn_is_deterministic() {
        let config = ChurnConfig::tiny();
        let a = run_churn(&config);
        let b = run_churn(&config);
        assert_eq!(a.objectives(), b.objectives());
        assert_eq!(a.total_search_nodes, b.total_search_nodes);
    }
}
