//! Use case #3: wireless channel selection (Sec. 3.2, Appendix A, Sec. 6.4).
//!
//! Wireless mesh nodes pick channels for their links so that nearby links do
//! not interfere. The paper runs centralized and distributed Colog channel
//! selection on the 30-node ORBIT testbed and reports aggregate throughput as
//! offered load increases (Fig. 6), plus policy variations — restricted
//! channels and one-hop vs two-hop interference models — under the
//! cross-layer protocol (Fig. 7).
//!
//! The ORBIT testbed is physical hardware we do not have; the substitution
//! (see DESIGN.md) is an interference-model grid simulator: links whose
//! channels are closer than `F_mindiff` and that are within one/two hops of
//! each other share capacity, flows are routed over the grid, and aggregate
//! throughput is the sum of per-flow deliveries. The channel assignments
//! themselves are still produced by the Colog programs through the Cologne
//! runtime.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cologne::datalog::{NodeId, Value};
use cologne::net::{FaultPlan, LinkProps, NodeTraffic, SimTime, Topology};
use cologne::{
    CologneInstance, CrashEvent, DeliveryStats, Deployment, DeploymentBuilder, ProgramParams,
    SolverBranching, VarDomain,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hostile::hostile_barrier;
use crate::programs::{WIRELESS_CENTRALIZED, WIRELESS_DISTRIBUTED};

/// An undirected link identified by its (smaller, larger) endpoints.
pub type Link = (u32, u32);

/// A channel assignment: one channel per undirected link.
pub type ChannelAssignment = BTreeMap<Link, i64>;

/// The channel-selection protocols compared in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WirelessProtocol {
    /// Cross-layer: distributed channel selection plus interference-aware
    /// routing of the flows.
    CrossLayer,
    /// Distributed per-link negotiation (Appendix A.3).
    Distributed,
    /// Centralized channel manager (Appendix A.2).
    Centralized,
    /// Identical channel sets on every node; a centralized solver restricted
    /// to those channels assigns links.
    IdenticalCh,
    /// One interface per node, one common channel.
    OneInterface,
}

impl WirelessProtocol {
    /// All protocols in the paper's legend order.
    pub fn all() -> [WirelessProtocol; 5] {
        [
            WirelessProtocol::CrossLayer,
            WirelessProtocol::Distributed,
            WirelessProtocol::Centralized,
            WirelessProtocol::IdenticalCh,
            WirelessProtocol::OneInterface,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            WirelessProtocol::CrossLayer => "Cross-layer",
            WirelessProtocol::Distributed => "Distributed",
            WirelessProtocol::Centralized => "Centralized",
            WirelessProtocol::IdenticalCh => "Identical-Ch",
            WirelessProtocol::OneInterface => "1-Interface",
        }
    }
}

/// Policy variations of Fig. 7 (cross-layer protocol fixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WirelessPolicy {
    /// The default two-hop interference cost model.
    TwoHopInterference,
    /// 20% of the channels become unavailable (primary users / spectrum
    /// limits).
    RestrictedChannels,
    /// Cost model considering only one-hop interference.
    OneHopInterference,
}

impl WirelessPolicy {
    /// All policies in the paper's order.
    pub fn all() -> [WirelessPolicy; 3] {
        [
            WirelessPolicy::TwoHopInterference,
            WirelessPolicy::RestrictedChannels,
            WirelessPolicy::OneHopInterference,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            WirelessPolicy::TwoHopInterference => "2-hop Interference",
            WirelessPolicy::RestrictedChannels => "Restricted Channels",
            WirelessPolicy::OneHopInterference => "1-hop Interference",
        }
    }
}

/// Configuration of the wireless experiments.
#[derive(Debug, Clone)]
pub struct WirelessConfig {
    /// Grid rows (paper: 30 nodes in an 8m x 5m grid; we use rows x cols).
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Available channels.
    pub channels: Vec<i64>,
    /// Radio interfaces per node (paper: 2).
    pub interfaces_per_node: i64,
    /// Minimum channel separation below which two links interfere.
    pub f_mindiff: i64,
    /// Fraction of nodes with a primary-user restriction on some channel.
    pub primary_user_fraction: f64,
    /// Number of traffic flows injected.
    pub flows: usize,
    /// Per-link base capacity in Mbps when free of interference.
    pub base_capacity_mbps: f64,
    /// Branch-and-bound node budget per COP execution.
    pub solver_node_limit: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WirelessConfig {
    fn default() -> Self {
        WirelessConfig {
            rows: 5,
            cols: 6,
            // contiguous channel indices; F_mindiff = 2 means adjacent
            // channels still interfere (partial spectral overlap)
            channels: (1..=6).collect(),
            interfaces_per_node: 2,
            f_mindiff: 2,
            primary_user_fraction: 0.2,
            flows: 15,
            base_capacity_mbps: 11.0,
            solver_node_limit: 30_000,
            seed: 17,
        }
    }
}

impl WirelessConfig {
    /// A small 3x3 grid for unit tests.
    pub fn tiny() -> Self {
        WirelessConfig {
            rows: 3,
            cols: 3,
            channels: (1..=4).collect(),
            flows: 4,
            solver_node_limit: 10_000,
            ..Default::default()
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.rows * self.cols
    }
}

/// The simulated mesh network: topology, primary users, flows.
#[derive(Debug, Clone)]
pub struct MeshNetwork {
    /// Grid topology (radio links between adjacent nodes).
    pub topology: Topology,
    /// Per-node primary-user channel restrictions.
    pub primary_users: BTreeMap<u32, Vec<i64>>,
    /// Traffic flows as (source, destination) pairs.
    pub flows: Vec<(u32, u32)>,
    config: WirelessConfig,
}

impl MeshNetwork {
    /// Build the mesh for a configuration.
    pub fn generate(config: &WirelessConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let topology = Topology::grid(config.rows, config.cols, LinkProps::default());
        let mut primary_users = BTreeMap::new();
        for n in topology.nodes() {
            if rng.gen_bool(config.primary_user_fraction) {
                let ch = config.channels[rng.gen_range(0..config.channels.len())];
                primary_users.insert(n, vec![ch]);
            }
        }
        let nodes = topology.nodes();
        let mut flows = Vec::with_capacity(config.flows);
        while flows.len() < config.flows {
            let s = nodes[rng.gen_range(0..nodes.len())];
            let d = nodes[rng.gen_range(0..nodes.len())];
            if s != d {
                flows.push((s, d));
            }
        }
        MeshNetwork {
            topology,
            primary_users,
            flows,
            config: config.clone(),
        }
    }

    /// Undirected links of the mesh.
    pub fn links(&self) -> Vec<Link> {
        self.topology.links()
    }

    /// Channels available at a node (all channels minus primary-user ones).
    pub fn available_channels(&self, node: u32) -> Vec<i64> {
        let banned = self.primary_users.get(&node).cloned().unwrap_or_default();
        self.config
            .channels
            .iter()
            .copied()
            .filter(|c| !banned.contains(c))
            .collect()
    }

    /// Shortest path between two nodes (BFS over the grid).
    pub fn shortest_path(&self, src: u32, dst: u32) -> Vec<u32> {
        let mut prev: BTreeMap<u32, u32> = BTreeMap::new();
        let mut visited: BTreeSet<u32> = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(src);
        visited.insert(src);
        while let Some(n) = queue.pop_front() {
            if n == dst {
                break;
            }
            for m in self.topology.neighbors(n) {
                if visited.insert(m) {
                    prev.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            match prev.get(&cur) {
                Some(&p) => {
                    path.push(p);
                    cur = p;
                }
                None => return Vec::new(), // unreachable
            }
        }
        path.reverse();
        path
    }
}

fn link_key(a: u32, b: u32) -> Link {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

// ----- interference and throughput model -------------------------------------

/// Number of links interfering with `link` under the given assignment:
/// links within `hops` hops whose channel differs by less than `f_mindiff`.
pub fn interference_count(
    mesh: &MeshNetwork,
    assignment: &ChannelAssignment,
    link: Link,
    f_mindiff: i64,
    hops: u32,
) -> usize {
    let my_channel = assignment.get(&link).copied().unwrap_or(0);
    let (a, b) = link;
    let mut near_nodes: BTreeSet<u32> = BTreeSet::from([a, b]);
    if hops >= 2 {
        for n in [a, b] {
            for m in mesh.topology.neighbors(n) {
                near_nodes.insert(m);
            }
        }
    }
    assignment
        .iter()
        .filter(|(other, ch)| {
            **other != link
                && (near_nodes.contains(&other.0) || near_nodes.contains(&other.1))
                && (my_channel - **ch).abs() < f_mindiff
        })
        .count()
}

/// Aggregate throughput (Mbps) delivered for a per-flow offered rate
/// (`data_rate_mbps`), given a channel assignment. Cross-layer routing picks
/// the least-interfered of a few candidate paths; other protocols use
/// shortest paths.
pub fn aggregate_throughput(
    mesh: &MeshNetwork,
    assignment: &ChannelAssignment,
    data_rate_mbps: f64,
    interference_aware_routing: bool,
) -> f64 {
    if interference_aware_routing {
        // Cross-layer routing jointly optimizes routes and channels: it keeps
        // whichever routing (plain shortest-path or interference-avoiding
        // detours) delivers more aggregate traffic, so it can never do worse
        // than the channel assignment alone.
        let detoured = aggregate_throughput_routed(mesh, assignment, data_rate_mbps, true);
        let plain = aggregate_throughput_routed(mesh, assignment, data_rate_mbps, false);
        return detoured.max(plain);
    }
    aggregate_throughput_routed(mesh, assignment, data_rate_mbps, false)
}

fn aggregate_throughput_routed(
    mesh: &MeshNetwork,
    assignment: &ChannelAssignment,
    data_rate_mbps: f64,
    interference_aware_routing: bool,
) -> f64 {
    let config = &mesh.config;
    // Effective capacity of every assigned link.
    let mut capacity: BTreeMap<Link, f64> = BTreeMap::new();
    for (&link, _) in assignment.iter() {
        let interferers = interference_count(mesh, assignment, link, config.f_mindiff, 2) as f64;
        capacity.insert(link, config.base_capacity_mbps / (1.0 + interferers));
    }
    // Route flows.
    let mut usage: BTreeMap<Link, f64> = BTreeMap::new();
    let mut flow_paths: Vec<Vec<u32>> = Vec::with_capacity(mesh.flows.len());
    for &(s, d) in &mesh.flows {
        let mut path = mesh.shortest_path(s, d);
        if interference_aware_routing {
            // Try detours through each neighbour of the source and keep the
            // path whose bottleneck capacity is highest.
            let mut best = path.clone();
            let mut best_score = path_bottleneck(&path, &capacity);
            for via in mesh.topology.neighbors(s) {
                if via == d {
                    continue;
                }
                let mut alt = mesh.shortest_path(s, via);
                let tail = mesh.shortest_path(via, d);
                if alt.is_empty() || tail.is_empty() {
                    continue;
                }
                alt.extend(tail.into_iter().skip(1));
                let score = path_bottleneck(&alt, &capacity);
                if score > best_score {
                    best_score = score;
                    best = alt;
                }
            }
            path = best;
        }
        for w in path.windows(2) {
            *usage.entry(link_key(w[0], w[1])).or_insert(0.0) += 1.0;
        }
        flow_paths.push(path);
    }
    // Each flow receives the minimum of its offered rate and its bottleneck
    // fair share.
    let mut total = 0.0;
    for path in flow_paths {
        if path.len() < 2 {
            continue;
        }
        let mut rate = data_rate_mbps;
        for w in path.windows(2) {
            let link = link_key(w[0], w[1]);
            let cap = capacity.get(&link).copied().unwrap_or(0.1);
            let share = cap / usage.get(&link).copied().unwrap_or(1.0).max(1.0);
            rate = rate.min(share);
        }
        total += rate;
    }
    total
}

fn path_bottleneck(path: &[u32], capacity: &BTreeMap<Link, f64>) -> f64 {
    path.windows(2)
        .map(|w| capacity.get(&link_key(w[0], w[1])).copied().unwrap_or(0.1))
        .fold(f64::INFINITY, f64::min)
}

// ----- channel selection protocols --------------------------------------------

fn centralized_params(config: &WirelessConfig, channels: &[i64]) -> ProgramParams {
    ProgramParams::new()
        .with_var_domain(
            "assign",
            VarDomain::new(
                channels.iter().copied().min().unwrap_or(1),
                channels.iter().copied().max().unwrap_or(1),
            ),
        )
        .with_constant("F_mindiff", config.f_mindiff)
        // First-fail branching: channel variables squeezed by primary users
        // and the interface (UNIQUE) constraint are decided first.
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_node_limit(Some(config.solver_node_limit))
        .with_solver_max_time(Some(std::time::Duration::from_secs(10)))
}

/// Parameters for the *distributed* per-link negotiation. Branching is
/// explicitly per use case: the big first-fail win is on the centralized
/// whole-mesh COP (96% on the 4x4 bench), but on the tiny per-link COPs it
/// reorders which channel each best-response move lands on, which makes the
/// renegotiation fixpoint wander for extra passes — the 3x3/4x4 distributed
/// regression introduced when first-fail became the wireless default. The
/// negotiation therefore pins input-order branching while the centralized
/// solver keeps first-fail.
fn distributed_params(config: &WirelessConfig, channels: &[i64]) -> ProgramParams {
    centralized_params(config, channels).with_solver_branching(SolverBranching::InputOrder)
}

/// Centralized channel selection: one Cologne instance solves the whole mesh
/// (Appendix A.2). `channels` restricts the candidate channels (used both for
/// the full protocol and for the Identical-Ch baseline).
pub fn centralized_assignment(mesh: &MeshNetwork, channels: &[i64]) -> ChannelAssignment {
    let config = &mesh.config;
    let params = centralized_params(config, channels);
    let mut instance = CologneInstance::new(NodeId(0), WIRELESS_CENTRALIZED, params)
        .expect("wireless centralized program compiles");
    let mut link = instance.relation("link").expect("link is in the schema");
    for (a, b) in mesh.links() {
        link.insert(vec![Value::Int(a as i64), Value::Int(b as i64)])
            .expect("link rows match the schema");
        link.insert(vec![Value::Int(b as i64), Value::Int(a as i64)])
            .expect("link rows match the schema");
    }
    for n in mesh.topology.nodes() {
        instance
            .relation("numInterface")
            .expect("numInterface is in the schema")
            .insert(vec![
                Value::Int(n as i64),
                Value::Int(config.interfaces_per_node),
            ])
            .expect("numInterface rows match the schema");
        for banned in mesh.primary_users.get(&n).cloned().unwrap_or_default() {
            // only ban channels that are actually in the candidate set
            if channels.contains(&banned) && channels.len() > 1 {
                instance
                    .relation("primaryUser")
                    .expect("primaryUser is in the schema")
                    .insert(vec![Value::Int(n as i64), Value::Int(banned)])
                    .expect("primaryUser rows match the schema");
            }
        }
    }
    let mut out = ChannelAssignment::new();
    if let Ok(report) = instance.invoke_solver() {
        for row in report.table("assign") {
            let (Some(x), Some(y), Some(c)) = (row[0].as_int(), row[1].as_int(), row[2].as_int())
            else {
                continue;
            };
            out.insert(link_key(x as u32, y as u32), c);
        }
    }
    // Links the solver could not assign (infeasible/limited) fall back to the
    // first channel so the throughput model still sees a full assignment.
    for link in mesh.links() {
        out.entry(link).or_insert(channels[0]);
    }
    out
}

/// Distributed per-link channel negotiation (Appendix A.3): links are
/// negotiated one at a time; each negotiation solves a local COP at the
/// initiating node using its neighbourhood's already-chosen channels.
///
/// Mirroring the paper's protocol — nodes *periodically* re-initiate
/// negotiations as neighbour state changes — the first pass over the links is
/// followed by a refinement pass in which every link is renegotiated with
/// full knowledge of the completed assignment. The per-node instances are
/// reused across all negotiations, so the cached `GroundingPlan` of each
/// instance is built once and amortized over every `invoke_solver` call.
pub fn distributed_assignment(mesh: &MeshNetwork, channels: &[i64]) -> ChannelAssignment {
    distributed_assignment_with_stats(mesh, channels).0
}

/// [`distributed_assignment`], also returning the solver statistics
/// accumulated across every negotiation of every node — the regression
/// handle that pins the protocol's total search effort.
pub fn distributed_assignment_with_stats(
    mesh: &MeshNetwork,
    channels: &[i64],
) -> (ChannelAssignment, cologne::solver::SearchStats) {
    let config = &mesh.config;
    let params = distributed_params(config, channels);
    let mut instances: BTreeMap<u32, CologneInstance> = BTreeMap::new();
    for n in mesh.topology.nodes() {
        let mut inst = CologneInstance::new(NodeId(n), WIRELESS_DISTRIBUTED, params.clone())
            .expect("wireless distributed program compiles");
        let x = Value::Addr(NodeId(n));
        let mut link = inst.relation("link").expect("link is in the schema");
        for m in mesh.topology.neighbors(n) {
            link.insert(vec![x.clone(), Value::Addr(NodeId(m))])
                .expect("link rows match the schema");
        }
        for banned in mesh.primary_users.get(&n).cloned().unwrap_or_default() {
            if channels.contains(&banned) && channels.len() > 1 {
                inst.relation("primaryUser")
                    .expect("primaryUser is in the schema")
                    .insert(vec![x.clone(), Value::Int(banned)])
                    .expect("primaryUser rows match the schema");
            }
        }
        instances.insert(n, inst);
    }
    let mut assignment = ChannelAssignment::new();
    // Pass 0: greedy negotiation in link order. Further passes renegotiate
    // every link against the complete current assignment (each negotiation is
    // a best-response move of the local COP) until no link changes its
    // channel — the fixpoint the paper's periodic re-negotiations converge
    // to — with a small cap as a safety net against oscillation.
    for pass in 0..6 {
        let mut changed = false;
        for (a, b) in mesh.links() {
            let initiator = a.max(b);
            let peer = a.min(b);
            // Renegotiation: the link's previous choice must not constrain
            // its own new negotiation.
            let previous = assignment.remove(&link_key(initiator, peer));
            let channel =
                negotiate_link(mesh, channels, &mut instances, &assignment, initiator, peer);
            changed |= previous != Some(channel);
            assignment.insert(link_key(initiator, peer), channel);
        }
        if pass > 0 && !changed {
            break;
        }
    }
    let mut stats = cologne::solver::SearchStats::default();
    for inst in instances.values() {
        stats.merge(inst.cumulative_solver_stats());
    }
    (assignment, stats)
}

/// One link negotiation of the distributed protocol: the initiator solves a
/// local COP over its own and its neighbours' currently chosen channels.
fn negotiate_link(
    mesh: &MeshNetwork,
    channels: &[i64],
    instances: &mut BTreeMap<u32, CologneInstance>,
    assignment: &ChannelAssignment,
    initiator: u32,
    peer: u32,
) -> i64 {
    // the initiator learns its neighbours' current choices
    let mut nbor_rows = Vec::new();
    let mut nbor_pu_rows = Vec::new();
    for z in mesh.topology.neighbors(initiator) {
        for ((la, lb), &c) in assignment {
            if *la == z || *lb == z {
                let w = if *la == z { *lb } else { *la };
                nbor_rows.push(vec![
                    Value::Addr(NodeId(initiator)),
                    Value::Addr(NodeId(z)),
                    Value::Addr(NodeId(w)),
                    Value::Int(c),
                ]);
            }
        }
        for banned in mesh.primary_users.get(&z).cloned().unwrap_or_default() {
            if channels.contains(&banned) && channels.len() > 1 {
                nbor_pu_rows.push(vec![
                    Value::Addr(NodeId(initiator)),
                    Value::Addr(NodeId(z)),
                    Value::Int(banned),
                ]);
            }
        }
    }
    // plus its own already-chosen links
    let mut chosen_rows = Vec::new();
    for ((la, lb), &c) in assignment {
        if *la == initiator || *lb == initiator {
            let w = if *la == initiator { *lb } else { *la };
            chosen_rows.push(vec![
                Value::Addr(NodeId(initiator)),
                Value::Addr(NodeId(w)),
                Value::Int(c),
            ]);
        }
    }
    let inst = instances.get_mut(&initiator).expect("instance exists");
    inst.relation("nborChosen")
        .expect("nborChosen is in the schema")
        .set(nbor_rows)
        .expect("nborChosen rows match the schema");
    inst.relation("nborPrimaryUser")
        .expect("nborPrimaryUser is in the schema")
        .set(nbor_pu_rows)
        .expect("nborPrimaryUser rows match the schema");
    inst.relation("chosen")
        .expect("chosen is in the schema")
        .set(chosen_rows)
        .expect("chosen rows match the schema");
    inst.relation("setLink")
        .expect("setLink is in the schema")
        .set(vec![vec![
            Value::Addr(NodeId(initiator)),
            Value::Addr(NodeId(peer)),
        ]])
        .expect("setLink rows match the schema");
    inst.invoke_solver()
        .ok()
        .filter(|r| r.feasible && !r.trivial)
        .and_then(|r| {
            r.table("assign")
                .iter()
                .find(|row| row[1].as_addr() == Some(NodeId(peer)))
                .and_then(|row| row[2].as_int())
        })
        .unwrap_or(channels[0])
}

// ----- networked distributed negotiation ---------------------------------------

/// Half a second of virtual time per quiescence barrier: generous against
/// the 25–400ms retransmit window, cheap because the clock is event-driven.
const STEP_US: u64 = 500_000;

/// Outcome of [`networked_distributed_assignment`]: the converged channels
/// plus the network-level evidence of how they were reached.
#[derive(Debug, Clone)]
pub struct NetworkedAssignment {
    /// Converged per-link channels (same shape as [`distributed_assignment`]).
    pub assignment: ChannelAssignment,
    /// At-least-once delivery counters: retransmits, dedups, buffered
    /// reorders, crash/rejoin resyncs.
    pub delivery: DeliveryStats,
    /// Per-node traffic, including `messages_dropped` / `messages_duplicated`.
    pub traffic: BTreeMap<u32, NodeTraffic>,
    /// Crash and rejoin events observed while negotiating.
    pub crash_log: Vec<CrashEvent>,
    /// Negotiation passes run before the fixpoint (or the safety cap).
    pub passes: usize,
}

/// Distributed per-link negotiation **over the simulated network**: unlike
/// [`distributed_assignment`], which hand-feeds each initiator its
/// neighbourhood state, every `chosen` / `primaryUser` update here travels
/// as located tuples through the program's own shipping rules (r2/r3 of
/// `WIRELESS_DISTRIBUTED`) on top of the at-least-once delivery layer, under
/// the given [`FaultPlan`].
///
/// A quiet plan (`FaultPlan::default()`) exercises the exact same code path
/// as a hostile one, which is what makes the reconvergence tests meaningful:
/// under seeded loss/duplication/jitter/crash schedules the negotiation must
/// reach the same fixpoint assignment as the fault-free run. Local solves
/// run without a wall-clock cutoff so each one is a deterministic function
/// of its (settled) inputs.
pub fn networked_distributed_assignment(
    mesh: &MeshNetwork,
    channels: &[i64],
    plan: FaultPlan,
) -> NetworkedAssignment {
    let config = &mesh.config;
    // No wall-clock cutoff (schedule-dependent) and no warm starts: a node
    // that crashed solves from a cold pipeline, and a warm incumbent could
    // tie-break the re-solve differently from the quiet run's.
    let params = distributed_params(config, channels)
        .with_solver_max_time(None)
        .with_warm_start(false);
    let mut driver = DeploymentBuilder::new(WIRELESS_DISTRIBUTED)
        .params(params)
        .topology(mesh.topology.clone())
        .faults(plan)
        .build()
        .expect("wireless distributed program compiles");

    let fault_horizon = driver
        .fault_plan()
        .and_then(|p| p.crashes().iter().map(|c| c.up).max())
        .unwrap_or(SimTime::ZERO);

    // Base facts: each node knows its incident links and its own
    // primary-user restrictions; r3 ships the latter to the neighbours.
    for n in mesh.topology.nodes() {
        let x = Value::Addr(NodeId(n));
        for m in mesh.topology.neighbors(n) {
            driver
                .insert(NodeId(n), "link", vec![x.clone(), Value::Addr(NodeId(m))])
                .expect("link rows match the schema");
        }
        for banned in mesh.primary_users.get(&n).cloned().unwrap_or_default() {
            if channels.contains(&banned) && channels.len() > 1 {
                driver
                    .insert(
                        NodeId(n),
                        "primaryUser",
                        vec![x.clone(), Value::Int(banned)],
                    )
                    .expect("primaryUser rows match the schema");
            }
        }
    }
    barrier(&mut driver, fault_horizon, [0, 0]);

    let mut assignment = ChannelAssignment::new();
    let mut passes = 0;
    for pass in 0..8 {
        passes = pass + 1;
        let mut changed = false;
        for (a, b) in mesh.links() {
            let initiator = a.max(b);
            let peer = a.min(b);
            // Wait out any crash window on this link's endpoints: a down
            // initiator cannot solve, a down peer cannot receive the
            // outcome, and writing relations at a down node would ship
            // nothing. Third-party crashes are the delivery layer's problem.
            barrier(&mut driver, fault_horizon, [initiator, peer]);

            // Renegotiation: the link's previous choice must not constrain
            // its own new negotiation.
            let previous = assignment.remove(&link_key(initiator, peer));
            refresh_chosen(&mut driver, &assignment, initiator);
            refresh_chosen(&mut driver, &assignment, peer);
            set_and_sync(
                &mut driver,
                initiator,
                "setLink",
                vec![vec![
                    Value::Addr(NodeId(initiator)),
                    Value::Addr(NodeId(peer)),
                ]],
            );
            // Quiescence barrier: every shipped nborChosen/nborPrimaryUser
            // tuple must be delivered and acked before the local solve reads
            // the neighbourhood view (and any mid-settle crash waited out,
            // so the rejoin re-sync has landed too).
            barrier(&mut driver, fault_horizon, [initiator, peer]);

            let channel = driver
                .invoke_at(NodeId(initiator))
                .ok()
                .filter(|r| r.feasible && !r.trivial)
                .and_then(|r| {
                    r.table("assign")
                        .iter()
                        .find(|row| row[1].as_addr() == Some(NodeId(peer)))
                        .and_then(|row| row[2].as_int())
                })
                .unwrap_or(channels[0]);
            changed |= previous != Some(channel);
            assignment.insert(link_key(initiator, peer), channel);

            // Publish the outcome — both endpoints record the channel, which
            // r2 ships to their neighbourhoods — and disarm the negotiation.
            refresh_chosen(&mut driver, &assignment, initiator);
            refresh_chosen(&mut driver, &assignment, peer);
            set_and_sync(&mut driver, initiator, "setLink", vec![]);
            barrier(&mut driver, fault_horizon, [initiator, peer]);
        }
        if pass > 0 && !changed {
            break;
        }
    }

    let traffic = mesh
        .topology
        .nodes()
        .into_iter()
        .map(|n| (n, driver.traffic(NodeId(n))))
        .collect();
    NetworkedAssignment {
        assignment,
        delivery: driver.delivery_stats(),
        traffic,
        crash_log: driver.take_crash_log(),
        passes,
    }
}

/// One negotiation-step barrier (see [`hostile_barrier`]), anchored at
/// "one step from now".
fn barrier(driver: &mut Deployment, fault_horizon: SimTime, endpoints: [u32; 2]) {
    let deadline = driver.now().plus_us(STEP_US);
    hostile_barrier(driver, deadline, fault_horizon, STEP_US, endpoints);
}

/// Refresh one node's `chosen` table from the in-progress assignment and
/// ship the resulting r2 deltas.
fn refresh_chosen(driver: &mut Deployment, assignment: &ChannelAssignment, node: u32) {
    let rows: Vec<Vec<Value>> = assignment
        .iter()
        .filter(|((la, lb), _)| *la == node || *lb == node)
        .map(|((la, lb), &c)| {
            let w = if *la == node { *lb } else { *la };
            vec![
                Value::Addr(NodeId(node)),
                Value::Addr(NodeId(w)),
                Value::Int(c),
            ]
        })
        .collect();
    set_and_sync(driver, node, "chosen", rows);
}

fn set_and_sync(driver: &mut Deployment, node: u32, rel: &str, rows: Vec<Vec<Value>>) {
    driver
        .handle(NodeId(node), rel)
        .expect("relation is in the schema")
        .set(rows)
        .expect("rows match the schema");
    driver.sync(NodeId(node));
}

/// Identical-Ch baseline: the same two channels on every node, assigned by
/// the centralized solver restricted to that set.
pub fn identical_channels_assignment(mesh: &MeshNetwork) -> ChannelAssignment {
    let channels: Vec<i64> = mesh.config.channels.iter().copied().take(2).collect();
    centralized_assignment(mesh, &channels)
}

/// 1-Interface baseline: every link on one common channel.
pub fn one_interface_assignment(mesh: &MeshNetwork) -> ChannelAssignment {
    mesh.links()
        .into_iter()
        .map(|l| (l, mesh.config.channels[0]))
        .collect()
}

/// Compute the channel assignment used by a protocol.
pub fn assignment_for(mesh: &MeshNetwork, protocol: WirelessProtocol) -> ChannelAssignment {
    match protocol {
        WirelessProtocol::CrossLayer | WirelessProtocol::Distributed => {
            distributed_assignment(mesh, &mesh.config.channels)
        }
        WirelessProtocol::Centralized => centralized_assignment(mesh, &mesh.config.channels),
        WirelessProtocol::IdenticalCh => identical_channels_assignment(mesh),
        WirelessProtocol::OneInterface => one_interface_assignment(mesh),
    }
}

/// One curve of Fig. 6 / Fig. 7: aggregate throughput per offered data rate.
#[derive(Debug, Clone)]
pub struct ThroughputCurve {
    /// Offered per-flow data rates (Mbps).
    pub data_rates: Vec<f64>,
    /// Aggregate delivered throughput (Mbps) at each rate.
    pub throughput: Vec<f64>,
}

impl ThroughputCurve {
    /// Peak aggregate throughput across the sweep.
    pub fn peak(&self) -> f64 {
        self.throughput.iter().copied().fold(0.0, f64::max)
    }
}

/// Run the Fig. 6 experiment: throughput vs offered rate for every protocol.
pub fn run_fig6(
    config: &WirelessConfig,
    data_rates: &[f64],
) -> BTreeMap<WirelessProtocol, ThroughputCurve> {
    let mesh = MeshNetwork::generate(config);
    let mut out = BTreeMap::new();
    for protocol in WirelessProtocol::all() {
        let assignment = assignment_for(&mesh, protocol);
        let routing_aware = protocol == WirelessProtocol::CrossLayer;
        let throughput = data_rates
            .iter()
            .map(|&r| aggregate_throughput(&mesh, &assignment, r, routing_aware))
            .collect();
        out.insert(
            protocol,
            ThroughputCurve {
                data_rates: data_rates.to_vec(),
                throughput,
            },
        );
    }
    out
}

/// Run the Fig. 7 experiment: cross-layer protocol under policy variations.
pub fn run_fig7(
    config: &WirelessConfig,
    data_rates: &[f64],
) -> BTreeMap<WirelessPolicy, ThroughputCurve> {
    let mesh = MeshNetwork::generate(config);
    let mut out = BTreeMap::new();
    for policy in WirelessPolicy::all() {
        let assignment = match policy {
            WirelessPolicy::TwoHopInterference => {
                distributed_assignment(&mesh, &mesh.config.channels)
            }
            WirelessPolicy::RestrictedChannels => {
                // Sec. 6.4: each node loses ~20% of its channels (decreased
                // signal strength, primary users, spectrum-usage limits). We
                // model it as additional per-node primary-user restrictions
                // plus a network-wide trim of the candidate set.
                let mut restricted = mesh.clone();
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
                let per_node_ban =
                    ((mesh.config.channels.len() as f64) * 0.2).ceil().max(1.0) as usize;
                for n in restricted.topology.nodes() {
                    let banned = restricted.primary_users.entry(n).or_default();
                    while banned.len() < per_node_ban {
                        let ch = mesh.config.channels[rng.gen_range(0..mesh.config.channels.len())];
                        if !banned.contains(&ch) {
                            banned.push(ch);
                        }
                    }
                }
                let keep = ((mesh.config.channels.len() as f64) * 0.8).ceil() as usize;
                let channels: Vec<i64> = mesh
                    .config
                    .channels
                    .iter()
                    .copied()
                    .take(keep.max(1))
                    .collect();
                distributed_assignment(&restricted, &channels)
            }
            WirelessPolicy::OneHopInterference => {
                // the negotiating node ignores its neighbours' channels and
                // only avoids clashing with its own other links
                let mut restricted = mesh.clone();
                restricted.primary_users.clear();
                one_hop_assignment(&restricted)
            }
        };
        let throughput = data_rates
            .iter()
            .map(|&r| aggregate_throughput(&mesh, &assignment, r, true))
            .collect();
        out.insert(
            policy,
            ThroughputCurve {
                data_rates: data_rates.to_vec(),
                throughput,
            },
        );
    }
    out
}

/// One-hop-only variant of the distributed negotiation: the cost model only
/// sees the initiator's own links (used by the Fig. 7 "1-hop Interference"
/// policy).
pub fn one_hop_assignment(mesh: &MeshNetwork) -> ChannelAssignment {
    // Reuse the distributed machinery but hide neighbour information, which
    // reduces the model to one-hop interference.
    let config = &mesh.config;
    let params = distributed_params(config, &config.channels);
    let mut assignment = ChannelAssignment::new();
    for (a, b) in mesh.links() {
        let initiator = a.max(b);
        let peer = a.min(b);
        let mut inst =
            CologneInstance::new(NodeId(initiator), WIRELESS_DISTRIBUTED, params.clone())
                .expect("wireless distributed program compiles");
        let x = Value::Addr(NodeId(initiator));
        let mut link = inst.relation("link").expect("link is in the schema");
        for m in mesh.topology.neighbors(initiator) {
            link.insert(vec![x.clone(), Value::Addr(NodeId(m))])
                .expect("link rows match the schema");
        }
        let chosen_rows: Vec<Vec<Value>> = assignment
            .iter()
            .filter(|((la, lb), _)| *la == initiator || *lb == initiator)
            .map(|((la, lb), &c)| {
                let w = if *la == initiator { *lb } else { *la };
                vec![x.clone(), Value::Addr(NodeId(w)), Value::Int(c)]
            })
            .collect();
        inst.relation("chosen")
            .expect("chosen is in the schema")
            .set(chosen_rows)
            .expect("chosen rows match the schema");
        inst.relation("setLink")
            .expect("setLink is in the schema")
            .set(vec![vec![x.clone(), Value::Addr(NodeId(peer))]])
            .expect("setLink rows match the schema");
        let channel = inst
            .invoke_solver()
            .ok()
            .filter(|r| r.feasible && !r.trivial)
            .and_then(|r| r.table("assign").first().and_then(|row| row[2].as_int()))
            .unwrap_or(config.channels[0]);
        assignment.insert(link_key(initiator, peer), channel);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_generation_is_deterministic() {
        let config = WirelessConfig::tiny();
        let a = MeshNetwork::generate(&config);
        let b = MeshNetwork::generate(&config);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.primary_users, b.primary_users);
        assert_eq!(a.topology.num_nodes(), 9);
        assert_eq!(a.links().len(), 12);
    }

    #[test]
    fn shortest_path_connects_grid_corners() {
        let mesh = MeshNetwork::generate(&WirelessConfig::tiny());
        let path = mesh.shortest_path(0, 8);
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&8));
        assert_eq!(path.len(), 5); // 4 hops across a 3x3 grid
    }

    #[test]
    fn interference_counts_depend_on_channels() {
        let mesh = MeshNetwork::generate(&WirelessConfig::tiny());
        let links = mesh.links();
        // everything on one channel: lots of interference
        let same: ChannelAssignment = links.iter().map(|&l| (l, 1)).collect();
        // spread channels far apart
        let spread: ChannelAssignment = links
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, 1 + 10 * (i as i64 % 3)))
            .collect();
        let link = links[0];
        let same_count = interference_count(&mesh, &same, link, 2, 2);
        let spread_count = interference_count(&mesh, &spread, link, 2, 2);
        assert!(same_count > spread_count);
        // one-hop model never counts more than the two-hop model
        assert!(
            interference_count(&mesh, &same, link, 2, 1)
                <= interference_count(&mesh, &same, link, 2, 2)
        );
    }

    #[test]
    fn throughput_saturates_with_offered_load() {
        let mesh = MeshNetwork::generate(&WirelessConfig::tiny());
        let assignment = one_interface_assignment(&mesh);
        let low = aggregate_throughput(&mesh, &assignment, 0.5, false);
        let high = aggregate_throughput(&mesh, &assignment, 50.0, false);
        assert!(low <= high + 1e-9);
        // offered load of 0 delivers 0
        assert_eq!(aggregate_throughput(&mesh, &assignment, 0.0, false), 0.0);
    }

    #[test]
    fn centralized_assignment_respects_primary_users() {
        let mut config = WirelessConfig::tiny();
        config.primary_user_fraction = 1.0; // every node restricted
        let mesh = MeshNetwork::generate(&config);
        let assignment = centralized_assignment(&mesh, &config.channels);
        assert_eq!(assignment.len(), mesh.links().len());
        for ((a, b), ch) in &assignment {
            assert!(config.channels.contains(ch));
            for node in [a, b] {
                if let Some(banned) = mesh.primary_users.get(node) {
                    assert!(
                        !banned.contains(ch),
                        "link ({a},{b}) uses banned channel {ch}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_assignment_covers_all_links_and_avoids_neighbours() {
        let config = WirelessConfig::tiny();
        let mesh = MeshNetwork::generate(&config);
        let assignment = distributed_assignment(&mesh, &config.channels);
        assert_eq!(assignment.len(), mesh.links().len());
        for ch in assignment.values() {
            assert!(config.channels.contains(ch));
        }
        // diverse channel usage (not everything on one channel)
        let distinct: BTreeSet<i64> = assignment.values().copied().collect();
        assert!(
            distinct.len() > 1,
            "negotiation should use more than one channel"
        );
    }

    #[test]
    fn smarter_protocols_beat_baselines() {
        let config = WirelessConfig::tiny();
        let mesh = MeshNetwork::generate(&config);
        let distributed = distributed_assignment(&mesh, &config.channels);
        let single = one_interface_assignment(&mesh);
        let rate = 6.0;
        let t_distributed = aggregate_throughput(&mesh, &distributed, rate, false);
        let t_single = aggregate_throughput(&mesh, &single, rate, false);
        assert!(
            t_distributed >= t_single,
            "distributed ({t_distributed:.2}) must be at least 1-interface ({t_single:.2})"
        );
    }

    #[test]
    fn networked_negotiation_converges_on_quiet_network() {
        let config = WirelessConfig::tiny();
        let mesh = MeshNetwork::generate(&config);
        let out = networked_distributed_assignment(&mesh, &config.channels, FaultPlan::default());
        assert_eq!(out.assignment.len(), mesh.links().len());
        for ch in out.assignment.values() {
            assert!(config.channels.contains(ch));
        }
        // The quiet plan still runs the reliable delivery layer…
        assert!(out.delivery.data_packets_sent > 0);
        assert!(out.delivery.acks_sent > 0);
        // …but a perfect network never retransmits, drops or crashes.
        assert_eq!(out.delivery.retransmits, 0);
        assert_eq!(out.delivery.duplicates_dropped, 0);
        assert!(out.crash_log.is_empty());
        for t in out.traffic.values() {
            assert_eq!(t.messages_dropped, 0);
            assert_eq!(t.messages_duplicated, 0);
        }
        assert!(out.passes >= 2, "at least one refinement pass runs");
    }

    #[test]
    fn fig7_policies_produce_curves() {
        let config = WirelessConfig::tiny();
        let rates = [1.0, 4.0];
        let curves = run_fig7(&config, &rates);
        assert_eq!(curves.len(), 3);
        for curve in curves.values() {
            assert_eq!(curve.throughput.len(), rates.len());
            assert!(curve.peak() >= 0.0);
        }
    }
}
