//! Use case #1: ACloud — adaptive cloud load balancing (Sec. 3.1.1, 4.2, 6.2).
//!
//! The paper drives the centralized ACloud Colog program with a data-center
//! trace from a large hosting company (248 customers, 1740 processors, one
//! month, 300-second samples) replayed over a hypothetical deployment of 15
//! hosts in 3 data centers with ~1000 VMs. That trace is proprietary, so this
//! module generates a synthetic workload with the same structure: customers
//! with diurnal activity patterns mapped onto pre-allocated VMs, a CPU
//! high/low threshold driving VM spawn/stop, and 10-minute re-optimization
//! intervals. Four policies are compared, as in Fig. 2 / Fig. 3:
//!
//! * **Default** — VMs stay where they were initially placed.
//! * **Heuristic** — move VMs from the most-loaded to the least-loaded host
//!   until the max/min load ratio drops below `K` (1.05 in the paper).
//! * **ACloud** — the Colog COP of Sec. 4.2 executed per data center.
//! * **ACloud (M)** — the same COP with the migration-limiting rules
//!   `d5`/`d6`/`c3` (at most `max_migrates` migrations per data center).

use std::collections::BTreeMap;

use cologne::datalog::{NodeId, Value};
use cologne::{
    CologneInstance, LnsParams, ProgramParams, SolveReport, SolverBranching, SolverMode, VarDomain,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::programs::{acloud_with_migration_limit, ACLOUD_CENTRALIZED};

/// The four placement policies of Fig. 2 / Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AcloudPolicy {
    /// No migration after the initial random placement.
    Default,
    /// Threshold-based most-to-least-loaded migration (ratio K).
    Heuristic,
    /// The Colog COP (Sec. 4.2).
    ACloud,
    /// The Colog COP with a per-data-center migration limit.
    ACloudM,
}

impl AcloudPolicy {
    /// All policies, in the order plotted by the paper.
    pub fn all() -> [AcloudPolicy; 4] {
        [
            AcloudPolicy::Default,
            AcloudPolicy::Heuristic,
            AcloudPolicy::ACloud,
            AcloudPolicy::ACloudM,
        ]
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            AcloudPolicy::Default => "Default",
            AcloudPolicy::Heuristic => "Heuristic",
            AcloudPolicy::ACloud => "ACloud",
            AcloudPolicy::ACloudM => "ACloud (M)",
        }
    }
}

/// Configuration of the ACloud experiment.
#[derive(Debug, Clone)]
pub struct AcloudConfig {
    /// Number of data centers (paper: 3).
    pub data_centers: usize,
    /// Compute hosts per data center (paper: 5 hosts of which 4 hold VMs).
    pub hosts_per_dc: usize,
    /// Pre-allocated (migratable) VMs per host (paper: 80).
    pub vms_per_host: usize,
    /// Number of customers driving the diurnal load (paper trace: 248).
    pub customers: usize,
    /// CPU utilisation (%) above which a VM is considered for migration
    /// (paper: 20%).
    pub cpu_threshold: f64,
    /// Probability that a customer is in its busy phase at peak time.
    pub peak_activity: f64,
    /// Re-optimization interval in seconds (paper: 600).
    pub interval_secs: u64,
    /// Experiment duration in hours (paper: 4).
    pub duration_hours: f64,
    /// Host physical memory in GB (paper: 32).
    pub host_mem_gb: i64,
    /// Memory footprint per VM in GB.
    pub vm_mem_gb: i64,
    /// Heuristic imbalance ratio threshold K (paper: 1.05).
    pub heuristic_k: f64,
    /// Migration cap per data center per interval for ACloud (M) (paper: 3).
    pub max_migrations_per_dc: i64,
    /// Branch-and-bound node budget per COP execution (stands in for the
    /// paper's 10-second `SOLVER_MAX_TIME` in a deterministic way).
    pub solver_node_limit: u64,
    /// RNG seed for the synthetic trace.
    pub seed: u64,
}

impl Default for AcloudConfig {
    fn default() -> Self {
        AcloudConfig {
            data_centers: 3,
            hosts_per_dc: 4,
            vms_per_host: 80,
            customers: 248,
            cpu_threshold: 20.0,
            peak_activity: 0.06,
            interval_secs: 600,
            duration_hours: 4.0,
            host_mem_gb: 32,
            vm_mem_gb: 1,
            heuristic_k: 1.05,
            max_migrations_per_dc: 3,
            solver_node_limit: 100_000,
            seed: 7,
        }
    }
}

impl AcloudConfig {
    /// A deliberately tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        AcloudConfig {
            data_centers: 1,
            hosts_per_dc: 3,
            vms_per_host: 6,
            customers: 6,
            peak_activity: 0.35,
            duration_hours: 0.5,
            solver_node_limit: 20_000,
            ..Default::default()
        }
    }

    /// Total number of VMs in the deployment.
    pub fn total_vms(&self) -> usize {
        self.data_centers * self.hosts_per_dc * self.vms_per_host
    }

    /// Number of optimization intervals in the experiment.
    pub fn intervals(&self) -> usize {
        ((self.duration_hours * 3600.0) / self.interval_secs as f64).round() as usize
    }
}

/// One virtual machine of the synthetic deployment.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Unique id.
    pub id: i64,
    /// Data center index.
    pub dc: usize,
    /// Owning customer (drives the diurnal load pattern).
    pub customer: usize,
    /// Memory footprint in GB.
    pub mem_gb: i64,
    /// Current CPU utilisation in percent.
    pub cpu: f64,
    /// Whether the VM is currently powered on.
    pub powered_on: bool,
}

/// The synthetic trace: per-interval CPU utilisation for every VM, plus the
/// spawn/stop dynamics described in Sec. 6.2.
pub struct TraceGenerator {
    config: AcloudConfig,
    rng: StdRng,
    /// Per-customer phase offset of the diurnal pattern.
    customer_phase: Vec<f64>,
    /// Per-customer activity multiplier.
    customer_scale: Vec<f64>,
}

impl TraceGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: &AcloudConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let customer_phase = (0..config.customers)
            .map(|_| rng.gen_range(0.0..24.0))
            .collect();
        let customer_scale = (0..config.customers)
            .map(|_| rng.gen_range(0.5..1.5))
            .collect();
        TraceGenerator {
            config: config.clone(),
            rng,
            customer_phase,
            customer_scale,
        }
    }

    /// Build the initial VM population (powered on, idle).
    pub fn initial_vms(&mut self) -> Vec<Vm> {
        let mut vms = Vec::with_capacity(self.config.total_vms());
        let mut id = 0i64;
        for dc in 0..self.config.data_centers {
            for _host in 0..self.config.hosts_per_dc {
                for _ in 0..self.config.vms_per_host {
                    let customer = self.rng.gen_range(0..self.config.customers);
                    vms.push(Vm {
                        id,
                        dc,
                        customer,
                        mem_gb: self.config.vm_mem_gb,
                        cpu: self.rng.gen_range(1.0..8.0),
                        powered_on: true,
                    });
                    id += 1;
                }
            }
        }
        vms
    }

    /// Probability that a customer is busy at `hour` (diurnal curve).
    fn busy_probability(&self, customer: usize, hour: f64) -> f64 {
        let phase = self.customer_phase[customer];
        let scale = self.customer_scale[customer];
        let diurnal = 0.5 + 0.5 * ((hour - phase) / 24.0 * std::f64::consts::TAU).sin();
        (self.config.peak_activity * scale * (0.3 + 0.7 * diurnal)).clamp(0.0, 1.0)
    }

    /// Advance the trace by one interval, updating every VM's CPU and the
    /// power state (spawn/stop) according to the high/low thresholds.
    pub fn step(&mut self, vms: &mut [Vm], interval_index: usize) {
        let hour = interval_index as f64 * self.config.interval_secs as f64 / 3600.0;
        for vm in vms.iter_mut() {
            let p = self.busy_probability(vm.customer, hour);
            let busy = self.rng.gen_bool(p);
            vm.cpu = if busy {
                self.rng.gen_range(30.0..95.0)
            } else {
                self.rng.gen_range(1.0..12.0)
            };
            // Sec. 6.2: VMs whose customer's demand drops very low are powered
            // off; they may be powered back on when demand returns.
            if vm.cpu < 3.0 && vm.powered_on && self.rng.gen_bool(0.05) {
                vm.powered_on = false;
            } else if !vm.powered_on && busy {
                vm.powered_on = true;
            }
            if !vm.powered_on {
                vm.cpu = 0.0;
            }
        }
    }
}

/// Placement of VMs onto hosts, for one policy.
#[derive(Debug, Clone)]
pub struct Placement {
    /// vm id -> global host id.
    map: BTreeMap<i64, i64>,
}

impl Placement {
    /// Random initial placement (each VM on a host of its data center).
    pub fn initial(config: &AcloudConfig, vms: &[Vm], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = BTreeMap::new();
        for vm in vms {
            let host_in_dc = rng.gen_range(0..config.hosts_per_dc);
            map.insert(vm.id, host_id(config, vm.dc, host_in_dc));
        }
        Placement { map }
    }

    /// Host currently running `vm`.
    pub fn host_of(&self, vm: i64) -> i64 {
        self.map[&vm]
    }

    /// Move a VM to another host. Returns true if the placement changed.
    pub fn migrate(&mut self, vm: i64, host: i64) -> bool {
        self.map.insert(vm, host) != Some(host)
    }
}

/// Global host id for `(dc, host_in_dc)`.
pub fn host_id(config: &AcloudConfig, dc: usize, host_in_dc: usize) -> i64 {
    (dc * config.hosts_per_dc + host_in_dc) as i64
}

/// All host ids of one data center.
pub fn dc_hosts(config: &AcloudConfig, dc: usize) -> Vec<i64> {
    (0..config.hosts_per_dc)
        .map(|h| host_id(config, dc, h))
        .collect()
}

/// Per-host CPU load implied by a placement.
pub fn host_loads(config: &AcloudConfig, vms: &[Vm], placement: &Placement) -> BTreeMap<i64, f64> {
    let mut loads: BTreeMap<i64, f64> = BTreeMap::new();
    for dc in 0..config.data_centers {
        for h in dc_hosts(config, dc) {
            loads.insert(h, 0.0);
        }
    }
    for vm in vms {
        if vm.powered_on {
            *loads.entry(placement.host_of(vm.id)).or_insert(0.0) += vm.cpu;
        }
    }
    loads
}

/// Population standard deviation of host CPU loads within one data center.
pub fn dc_cpu_stdev(config: &AcloudConfig, dc: usize, loads: &BTreeMap<i64, f64>) -> f64 {
    let values: Vec<f64> = dc_hosts(config, dc).iter().map(|h| loads[h]).collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Average of [`dc_cpu_stdev`] across all data centers (Fig. 2's y-axis).
pub fn average_cpu_stdev(config: &AcloudConfig, vms: &[Vm], placement: &Placement) -> f64 {
    let loads = host_loads(config, vms, placement);
    let total: f64 = (0..config.data_centers)
        .map(|dc| dc_cpu_stdev(config, dc, &loads))
        .sum();
    total / config.data_centers as f64
}

/// The Cologne-backed ACloud controller for one data center: one
/// [`CologneInstance`] whose tables are refreshed incrementally every
/// interval.
pub struct AcloudController {
    instance: CologneInstance,
    limited: bool,
}

impl AcloudController {
    /// Create the controller for one data center.
    pub fn new(config: &AcloudConfig, dc: usize, limited: bool) -> Self {
        let source = if limited {
            acloud_with_migration_limit()
        } else {
            ACLOUD_CENTRALIZED.to_string()
        };
        // First-fail branching: the 0/1 assignment variables of constrained
        // rows (memory-tight hosts, migration budgets) collapse first, so
        // infeasible placements are abandoned high in the tree.
        let mut params = ProgramParams::new()
            .with_var_domain("assign", VarDomain::BOOL)
            .with_solver_branching(SolverBranching::FirstFail)
            .with_solver_node_limit(Some(config.solver_node_limit))
            .with_solver_max_time(Some(std::time::Duration::from_secs(10)));
        if limited {
            params = params.with_constant("max_migrates", config.max_migrations_per_dc);
        }
        let instance = CologneInstance::new(NodeId(dc as u32), &source, params)
            .expect("ACloud program compiles");
        AcloudController { instance, limited }
    }

    /// Access the underlying Cologne instance (for statistics).
    pub fn instance(&self) -> &CologneInstance {
        &self.instance
    }

    /// Run one optimization round for this data center. `hot` is the set of
    /// migratable VMs (CPU above threshold); `background` the per-host load
    /// from the remaining VMs. Returns the new host for each hot VM.
    pub fn optimize(
        &mut self,
        config: &AcloudConfig,
        dc: usize,
        hot: &[&Vm],
        background: &BTreeMap<i64, f64>,
        placement: &Placement,
    ) -> BTreeMap<i64, i64> {
        // Refresh the monitored tables (incremental deltas inside the engine).
        let vm_rows: Vec<Vec<Value>> = hot
            .iter()
            .map(|vm| {
                vec![
                    Value::Int(vm.id),
                    Value::Int(vm.cpu.round() as i64),
                    Value::Int(vm.mem_gb),
                ]
            })
            .collect();
        let mut vm = self.instance.relation("vm").expect("vm is in the schema");
        vm.set(vm_rows).expect("vm rows match the schema");
        let hosts = dc_hosts(config, dc);
        let host_rows: Vec<Vec<Value>> = hosts
            .iter()
            .map(|h| {
                vec![
                    Value::Int(*h),
                    Value::Int(background.get(h).copied().unwrap_or(0.0).round() as i64),
                    Value::Int(0),
                ]
            })
            .collect();
        self.instance
            .relation("host")
            .expect("host is in the schema")
            .set(host_rows)
            .expect("host rows match the schema");
        let mem_rows: Vec<Vec<Value>> = hosts
            .iter()
            .map(|h| vec![Value::Int(*h), Value::Int(config.host_mem_gb)])
            .collect();
        self.instance
            .relation("hostMemThres")
            .expect("hostMemThres is in the schema")
            .set(mem_rows)
            .expect("hostMemThres rows match the schema");
        if self.limited {
            let origin_rows: Vec<Vec<Value>> = hot
                .iter()
                .map(|vm| vec![Value::Int(vm.id), Value::Int(placement.host_of(vm.id))])
                .collect();
            self.instance
                .relation("origin")
                .expect("origin is in the schema")
                .set(origin_rows)
                .expect("origin rows match the schema");
        }

        let report = match self.instance.invoke_solver() {
            Ok(r) => r,
            Err(_) => return BTreeMap::new(),
        };
        if !report.feasible || report.trivial {
            return BTreeMap::new();
        }
        let mut out = BTreeMap::new();
        for row in report.table("assign") {
            let (Some(vid), Some(hid), Some(v)) =
                (row[0].as_int(), row[1].as_int(), row[2].as_int())
            else {
                continue;
            };
            if v == 1 {
                out.insert(vid, hid);
            }
        }
        out
    }
}

// ----- large-instance scenario (the LNS workload class) ----------------------

/// Configuration of the large-instance ACloud scenario: an order of
/// magnitude more VMs than the paper's per-data-center COPs, on
/// heterogeneous hosts (varying background load and memory capacity). At
/// this scale exact branch-and-bound exhausts any practical node budget
/// without proving optimality; the scenario exists to exercise — and
/// benchmark — the LNS solver mode against the exact mode under the same
/// budget.
#[derive(Debug, Clone)]
pub struct LargeAcloudConfig {
    /// Number of hot (migratable) VMs in the COP (100+ for the headline
    /// scenario).
    pub vms: usize,
    /// Number of candidate hosts.
    pub hosts: usize,
    /// Branch-and-bound node budget shared by both modes (the wall-clock
    /// limit is disabled so runs are deterministic).
    pub node_limit: u64,
    /// RNG seed for the synthetic workload.
    pub seed: u64,
    /// Worker threads for the COP search (`None` = sequential). Parallel
    /// runs of this scenario return the same incumbent as sequential ones;
    /// see the solver's `parallel` module for the determinism contract.
    pub workers: Option<std::num::NonZeroUsize>,
}

impl Default for LargeAcloudConfig {
    fn default() -> Self {
        LargeAcloudConfig {
            vms: 120,
            hosts: 10,
            node_limit: 30_000,
            seed: 23,
            workers: None,
        }
    }
}

impl LargeAcloudConfig {
    /// The LNS configuration the scenario is evaluated with: a small dive
    /// budget (the bulk of the node budget goes to repairs) and the default
    /// conflict-guided destroy policy.
    pub fn lns_params(&self) -> LnsParams {
        LnsParams {
            seed: self.seed ^ 0x1A75,
            dive_node_limit: (self.node_limit / 8).max(500),
            ..Default::default()
        }
    }
}

/// Build a [`CologneInstance`] holding the large ACloud COP, in the given
/// solver mode. The instance uses a node budget instead of the paper's
/// 10-second wall clock, so repeated invocations are deterministic.
pub fn large_acloud_instance(config: &LargeAcloudConfig, mode: SolverMode) -> CologneInstance {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_node_limit(Some(config.node_limit))
        .with_solver_max_time(None)
        .with_solver_workers(config.workers)
        .with_solver_mode(mode);
    let mut instance = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params)
        .expect("ACloud program compiles");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut total_mem = 0i64;
    for vid in 0..config.vms as i64 {
        let cpu = rng.gen_range(5i64..60);
        let mem = rng.gen_range(1i64..4);
        total_mem += mem;
        instance
            .relation("vm")
            .expect("vm is in the schema")
            .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .expect("vm rows match the schema");
    }
    // Heterogeneous hosts: uneven background CPU load and uneven memory
    // capacity, with ~2x aggregate memory slack so the instance is feasible
    // but the tighter hosts still constrain placement.
    let base_mem = total_mem / config.hosts as i64 + 1;
    for hid in 0..config.hosts as i64 {
        let background = rng.gen_range(0i64..40);
        let capacity = base_mem + rng.gen_range(0i64..=base_mem);
        instance
            .relation("host")
            .expect("host is in the schema")
            .insert(vec![
                Value::Int(1000 + hid),
                Value::Int(background),
                Value::Int(0),
            ])
            .expect("host rows match the schema");
        instance
            .relation("hostMemThres")
            .expect("hostMemThres is in the schema")
            .insert(vec![Value::Int(1000 + hid), Value::Int(capacity)])
            .expect("hostMemThres rows match the schema");
    }
    instance
}

/// One `invokeSolver` execution on the large scenario in the given mode.
pub fn solve_large_acloud(config: &LargeAcloudConfig, mode: SolverMode) -> SolveReport {
    let mut instance = large_acloud_instance(config, mode);
    instance
        .invoke_solver()
        .expect("large ACloud COP grounds and solves")
}

/// Metrics for one interval of the experiment (one point of Fig. 2 / Fig. 3).
#[derive(Debug, Clone)]
pub struct IntervalMetrics {
    /// Time since the start of the experiment, in hours.
    pub time_hours: f64,
    /// Average per-data-center CPU standard deviation, per policy (Fig. 2).
    pub cpu_stdev: BTreeMap<AcloudPolicy, f64>,
    /// Number of VM migrations performed in this interval, per policy (Fig. 3).
    pub migrations: BTreeMap<AcloudPolicy, u64>,
}

/// Full result of the ACloud experiment.
#[derive(Debug, Clone)]
pub struct AcloudResults {
    /// One entry per interval.
    pub intervals: Vec<IntervalMetrics>,
}

impl AcloudResults {
    /// Mean CPU standard deviation over the whole run, per policy.
    pub fn mean_stdev(&self, policy: AcloudPolicy) -> f64 {
        let values: Vec<f64> = self
            .intervals
            .iter()
            .filter_map(|i| i.cpu_stdev.get(&policy).copied())
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Mean number of migrations per interval, per policy.
    pub fn mean_migrations(&self, policy: AcloudPolicy) -> f64 {
        let values: Vec<u64> = self
            .intervals
            .iter()
            .filter_map(|i| i.migrations.get(&policy).copied())
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().sum::<u64>() as f64 / values.len() as f64
    }

    /// Reduction of load imbalance achieved by `policy` relative to
    /// `baseline` (the "98.1% / 87.8% reduction" numbers of Sec. 6.2).
    pub fn imbalance_reduction(&self, policy: AcloudPolicy, baseline: AcloudPolicy) -> f64 {
        let b = self.mean_stdev(baseline);
        if b <= f64::EPSILON {
            return 0.0;
        }
        (b - self.mean_stdev(policy)) / b
    }
}

/// Apply the threshold heuristic: migrate hot VMs from the most loaded to the
/// least loaded host until the max/min ratio is below `k`. Returns the number
/// of migrations performed.
pub fn heuristic_rebalance(
    config: &AcloudConfig,
    dc: usize,
    vms: &[Vm],
    placement: &mut Placement,
    k: f64,
) -> u64 {
    let hosts = dc_hosts(config, dc);
    let mut migrations = 0;
    for _ in 0..(config.vms_per_host * config.hosts_per_dc) {
        let loads = host_loads(config, vms, placement);
        let (max_host, max_load) = hosts
            .iter()
            .map(|h| (*h, loads[h]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let (min_host, min_load) = hosts
            .iter()
            .map(|h| (*h, loads[h]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if min_load > 0.0 && max_load / min_load <= k {
            break;
        }
        // pick the hottest migratable VM on the most loaded host
        let candidate = vms
            .iter()
            .filter(|vm| {
                vm.dc == dc
                    && vm.powered_on
                    && vm.cpu > config.cpu_threshold
                    && placement.host_of(vm.id) == max_host
            })
            .max_by(|a, b| a.cpu.total_cmp(&b.cpu));
        let Some(vm) = candidate else { break };
        // only move if it actually improves the imbalance
        if max_load - vm.cpu < min_load {
            break;
        }
        placement.migrate(vm.id, min_host);
        migrations += 1;
    }
    migrations
}

/// Run the full Fig. 2 / Fig. 3 experiment.
pub fn run_acloud_experiment(config: &AcloudConfig) -> AcloudResults {
    let mut tracegen = TraceGenerator::new(config);
    let mut vms = tracegen.initial_vms();

    let mut placements: BTreeMap<AcloudPolicy, Placement> = AcloudPolicy::all()
        .into_iter()
        .map(|p| (p, Placement::initial(config, &vms, config.seed + 1)))
        .collect();
    let mut controllers: BTreeMap<(AcloudPolicy, usize), AcloudController> = BTreeMap::new();
    for dc in 0..config.data_centers {
        controllers.insert(
            (AcloudPolicy::ACloud, dc),
            AcloudController::new(config, dc, false),
        );
        controllers.insert(
            (AcloudPolicy::ACloudM, dc),
            AcloudController::new(config, dc, true),
        );
    }

    let mut intervals = Vec::with_capacity(config.intervals());
    for interval in 0..config.intervals() {
        tracegen.step(&mut vms, interval);
        let mut cpu_stdev = BTreeMap::new();
        let mut migrations = BTreeMap::new();

        for policy in AcloudPolicy::all() {
            let placement = placements.get_mut(&policy).expect("placement exists");
            let mut moved = 0u64;
            match policy {
                AcloudPolicy::Default => {}
                AcloudPolicy::Heuristic => {
                    for dc in 0..config.data_centers {
                        moved +=
                            heuristic_rebalance(config, dc, &vms, placement, config.heuristic_k);
                    }
                }
                AcloudPolicy::ACloud | AcloudPolicy::ACloudM => {
                    // Gather every data center's COP inputs first, then run
                    // the per-DC optimizations concurrently — the paper's
                    // per-data-center COPs are independent (one controller,
                    // i.e. one Cologne instance, per DC). Results are applied
                    // in DC order, matching the sequential loop's application
                    // order; outcomes are identical to it whenever searches
                    // are bounded by the node limit rather than the 10 s
                    // wall-clock `SOLVER_MAX_TIME` (which is inherently
                    // schedule-dependent, sequentially or not).
                    let mut inputs: Vec<(usize, Vec<&Vm>, BTreeMap<i64, f64>)> = Vec::new();
                    for dc in 0..config.data_centers {
                        let hot: Vec<&Vm> = vms
                            .iter()
                            .filter(|vm| {
                                vm.dc == dc && vm.powered_on && vm.cpu > config.cpu_threshold
                            })
                            .collect();
                        if hot.is_empty() {
                            continue;
                        }
                        // background load: every other VM stays put
                        let mut background: BTreeMap<i64, f64> = BTreeMap::new();
                        for h in dc_hosts(config, dc) {
                            background.insert(h, 0.0);
                        }
                        for vm in vms.iter().filter(|vm| {
                            vm.dc == dc && vm.powered_on && vm.cpu <= config.cpu_threshold
                        }) {
                            *background.entry(placement.host_of(vm.id)).or_insert(0.0) += vm.cpu;
                        }
                        inputs.push((dc, hot, background));
                    }
                    let mut dc_controllers: BTreeMap<usize, &mut AcloudController> = controllers
                        .iter_mut()
                        .filter(|((p, _), _)| *p == policy)
                        .map(|((_, dc), c)| (*dc, c))
                        .collect();
                    let frozen_placement: &Placement = placement;
                    let mut outcomes: Vec<(usize, BTreeMap<i64, i64>)> = Vec::new();
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = inputs
                            .into_iter()
                            .map(|(dc, hot, background)| {
                                let controller =
                                    dc_controllers.remove(&dc).expect("controller exists");
                                let handle = scope.spawn(move || {
                                    controller.optimize(
                                        config,
                                        dc,
                                        &hot,
                                        &background,
                                        frozen_placement,
                                    )
                                });
                                (dc, handle)
                            })
                            .collect();
                        for (dc, handle) in handles {
                            outcomes
                                .push((dc, handle.join().expect("per-DC solver thread panicked")));
                        }
                    });
                    for (_, new_hosts) in outcomes {
                        for (vid, hid) in new_hosts {
                            if placement.host_of(vid) != hid {
                                placement.migrate(vid, hid);
                                moved += 1;
                            }
                        }
                    }
                }
            }
            cpu_stdev.insert(policy, average_cpu_stdev(config, &vms, placement));
            migrations.insert(policy, moved);
        }

        intervals.push(IntervalMetrics {
            time_hours: (interval as f64 + 1.0) * config.interval_secs as f64 / 3600.0,
            cpu_stdev,
            migrations,
        });
    }
    AcloudResults { intervals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generator_produces_plausible_loads() {
        let config = AcloudConfig::tiny();
        let mut g = TraceGenerator::new(&config);
        let mut vms = g.initial_vms();
        assert_eq!(vms.len(), config.total_vms());
        g.step(&mut vms, 0);
        assert!(vms.iter().all(|vm| (0.0..=100.0).contains(&vm.cpu)));
        // determinism: same seed, same trace
        let mut g2 = TraceGenerator::new(&config);
        let mut vms2 = g2.initial_vms();
        g2.step(&mut vms2, 0);
        let cpus: Vec<i64> = vms.iter().map(|v| v.cpu.round() as i64).collect();
        let cpus2: Vec<i64> = vms2.iter().map(|v| v.cpu.round() as i64).collect();
        assert_eq!(cpus, cpus2);
    }

    #[test]
    fn placement_and_metrics_helpers() {
        let config = AcloudConfig::tiny();
        let mut g = TraceGenerator::new(&config);
        let vms = g.initial_vms();
        let placement = Placement::initial(&config, &vms, 1);
        let loads = host_loads(&config, &vms, &placement);
        assert_eq!(loads.len(), config.data_centers * config.hosts_per_dc);
        let stdev = average_cpu_stdev(&config, &vms, &placement);
        assert!(stdev >= 0.0);
        let total: f64 = loads.values().sum();
        let cpu_sum: f64 = vms.iter().filter(|v| v.powered_on).map(|v| v.cpu).sum();
        assert!((total - cpu_sum).abs() < 1e-6);
    }

    #[test]
    fn heuristic_reduces_imbalance() {
        let config = AcloudConfig::tiny();
        // construct a deliberately imbalanced scenario: all hot VMs on host 0
        let vms: Vec<Vm> = (0..4)
            .map(|i| Vm {
                id: i,
                dc: 0,
                customer: 0,
                mem_gb: 1,
                cpu: 60.0,
                powered_on: true,
            })
            .collect();
        let mut placement = Placement::initial(&config, &vms, 3);
        for vm in &vms {
            placement.migrate(vm.id, host_id(&config, 0, 0));
        }
        let before = average_cpu_stdev(&config, &vms, &placement);
        let moved = heuristic_rebalance(&config, 0, &vms, &mut placement, config.heuristic_k);
        let after = average_cpu_stdev(&config, &vms, &placement);
        assert!(moved > 0);
        assert!(
            after < before,
            "heuristic must reduce imbalance: {before} -> {after}"
        );
    }

    #[test]
    fn acloud_controller_balances_better_than_default() {
        let config = AcloudConfig::tiny();
        let vms: Vec<Vm> = (0..5)
            .map(|i| Vm {
                id: i,
                dc: 0,
                customer: 0,
                mem_gb: 1,
                cpu: 40.0 + 5.0 * i as f64,
                powered_on: true,
            })
            .collect();
        let mut placement = Placement::initial(&config, &vms, 3);
        for vm in &vms {
            placement.migrate(vm.id, host_id(&config, 0, 0));
        }
        let before = average_cpu_stdev(&config, &vms, &placement);
        let hot: Vec<&Vm> = vms.iter().collect();
        let background: BTreeMap<i64, f64> =
            dc_hosts(&config, 0).into_iter().map(|h| (h, 0.0)).collect();
        let mut controller = AcloudController::new(&config, 0, false);
        let new_hosts = controller.optimize(&config, 0, &hot, &background, &placement);
        assert_eq!(new_hosts.len(), vms.len(), "every hot VM gets a host");
        for (vid, hid) in new_hosts {
            placement.migrate(vid, hid);
        }
        let after = average_cpu_stdev(&config, &vms, &placement);
        assert!(
            after < before,
            "COP must reduce imbalance: {before} -> {after}"
        );
        assert!(controller.instance().solver_invocations() == 1);
    }

    #[test]
    fn migration_limit_is_respected() {
        let config = AcloudConfig {
            max_migrations_per_dc: 1,
            ..AcloudConfig::tiny()
        };
        let vms: Vec<Vm> = (0..4)
            .map(|i| Vm {
                id: i,
                dc: 0,
                customer: 0,
                mem_gb: 1,
                cpu: 50.0,
                powered_on: true,
            })
            .collect();
        let mut placement = Placement::initial(&config, &vms, 3);
        for vm in &vms {
            placement.migrate(vm.id, host_id(&config, 0, 0));
        }
        let hot: Vec<&Vm> = vms.iter().collect();
        let background: BTreeMap<i64, f64> =
            dc_hosts(&config, 0).into_iter().map(|h| (h, 0.0)).collect();
        let mut controller = AcloudController::new(&config, 0, true);
        let new_hosts = controller.optimize(&config, 0, &hot, &background, &placement);
        let moved = new_hosts
            .iter()
            .filter(|(vid, hid)| placement.host_of(**vid) != **hid)
            .count();
        assert!(moved <= 1, "at most one migration allowed, got {moved}");
    }

    #[test]
    fn experiment_runs_and_orders_policies() {
        let config = AcloudConfig {
            duration_hours: 0.5,
            ..AcloudConfig::tiny()
        };
        let results = run_acloud_experiment(&config);
        assert_eq!(results.intervals.len(), config.intervals());
        // The COP-driven policy should not be worse than doing nothing.
        let acloud = results.mean_stdev(AcloudPolicy::ACloud);
        let default = results.mean_stdev(AcloudPolicy::Default);
        assert!(
            acloud <= default + 1e-9,
            "ACloud ({acloud:.2}) must not exceed Default ({default:.2})"
        );
        // migrations are only reported for migrating policies
        assert_eq!(results.mean_migrations(AcloudPolicy::Default), 0.0);
        assert!(results.imbalance_reduction(AcloudPolicy::ACloud, AcloudPolicy::Default) >= 0.0);
    }
}
