//! Use case #2: Follow-the-Sun — inter-data-center VM migration
//! (Sec. 3.1.2, 4.3, 6.3).
//!
//! Geographically distributed data centers negotiate pairwise VM migrations
//! so that workloads end up close to their demand while respecting resource
//! capacities and keeping operating + communication + migration cost low.
//! Each node runs the distributed Colog program of Sec. 4.3: periodically a
//! node picks one of its links, solves a *local* COP over that link using its
//! own state plus state shipped from the neighbour (via the localization
//! rewrite), applies the resulting migration, and the process iterates until
//! every link has been negotiated.
//!
//! The experiment reproduces Fig. 4 (normalized total cost as the distributed
//! execution converges, for 2–10 data centers) and Fig. 5 (per-node
//! communication overhead).

use std::collections::BTreeMap;

use cologne::datalog::{NodeId, RemoteTuple, Value};
use cologne::net::{FaultPlan, LinkProps, SimTime, Topology};

use crate::hostile::hostile_barrier;
use cologne::solver::{SearchStats, ValueChoice};
use cologne::{
    Deployment, DeploymentBuilder, DistributedCologne, ProgramParams, SolverSettings, VarDomain,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::programs::{followsun_with_migration_limit, FOLLOWSUN_DISTRIBUTED};

/// Configuration of a Follow-the-Sun run.
#[derive(Debug, Clone)]
pub struct FollowSunConfig {
    /// Number of data centers (the paper sweeps 2–10).
    pub data_centers: u32,
    /// Target average degree of the random topology (paper: 3).
    pub degree: f64,
    /// Resource capacity per data center in VM units (paper: 60).
    pub capacity: i64,
    /// Maximum initial allocation per (data center, demand location)
    /// (paper: 0–10).
    pub max_initial_allocation: i64,
    /// Communication cost range per (data center, demand) (paper: 50–100).
    pub comm_cost: (i64, i64),
    /// Migration cost range per link (paper: 10–20).
    pub mig_cost: (i64, i64),
    /// Operating cost per VM (paper: 10).
    pub op_cost: i64,
    /// Period between link negotiations in seconds (paper: 5).
    pub negotiation_period_secs: u64,
    /// Branch-and-bound node budget per local COP.
    pub solver_node_limit: u64,
    /// Optional per-link migration cap (the `d11`/`c5` policy of Sec. 4.3).
    pub migration_limit: Option<i64>,
    /// Worker threads per local COP search (`None` = sequential). The
    /// negotiated allocations are identical either way; see the solver's
    /// `parallel` module for the determinism contract.
    pub solver_workers: Option<std::num::NonZeroUsize>,
    /// RNG seed.
    pub seed: u64,
    /// Optional network fault plan (loss, duplication, jitter, partitions,
    /// crash/rejoin). `None` keeps the original perfect network byte for
    /// byte; `Some` switches shipping to the at-least-once delivery layer
    /// and makes the negotiation wait for crashed endpoints and for network
    /// quiescence before each local solve, so the execution reconverges to
    /// the fault-free fixpoint. Fault-plan runs also drop the wall-clock
    /// solver cutoff (the node budget alone bounds each search): hostile
    /// executions are compared byte for byte against quiet ones and across
    /// reruns, and a wall clock is schedule-dependent.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for FollowSunConfig {
    fn default() -> Self {
        FollowSunConfig {
            data_centers: 4,
            degree: 3.0,
            capacity: 60,
            max_initial_allocation: 10,
            comm_cost: (50, 100),
            mig_cost: (10, 20),
            op_cost: 10,
            negotiation_period_secs: 5,
            solver_node_limit: 50_000,
            migration_limit: None,
            solver_workers: None,
            seed: 11,
            fault_plan: None,
        }
    }
}

/// The synthetic Follow-the-Sun workload: per-node allocations and costs.
#[derive(Debug, Clone)]
pub struct FollowSunWorkload {
    /// Network of data centers.
    pub topology: Topology,
    /// `alloc[x][d]` = VMs currently hosted at data center `x` serving
    /// demand location `d`.
    pub alloc: Vec<Vec<i64>>,
    /// `comm_cost[x][d]` = cost of serving demand `d` from data center `x`.
    pub comm_cost: Vec<Vec<i64>>,
    /// `mig_cost[x][y]` = per-VM migration cost on link (x, y).
    pub mig_cost: BTreeMap<(u32, u32), i64>,
    /// Per-VM operating cost (uniform across data centers, as in the paper).
    pub op_cost: i64,
    /// Capacity per data center.
    pub capacity: i64,
}

impl FollowSunWorkload {
    /// Generate a workload for the configuration.
    pub fn generate(config: &FollowSunConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.data_centers as usize;
        let topology = Topology::random_connected(
            config.data_centers,
            config.degree,
            config.seed,
            LinkProps::default(),
        );
        let mut alloc: Vec<Vec<i64>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| rng.gen_range(0..=config.max_initial_allocation))
                    .collect()
            })
            .collect();
        // Initial allocations must respect the per-data-center capacity
        // (constraint (5) of the paper); trim overloaded nodes.
        for row in alloc.iter_mut() {
            while row.iter().sum::<i64>() > config.capacity {
                let d = rng.gen_range(0..n);
                if row[d] > 0 {
                    row[d] -= 1;
                }
            }
        }
        let comm_cost: Vec<Vec<i64>> = (0..n)
            .map(|x| {
                (0..n)
                    .map(|d| {
                        if x == d {
                            // serving local demand is cheap
                            config.comm_cost.0 / 5
                        } else {
                            rng.gen_range(config.comm_cost.0..=config.comm_cost.1)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut mig_cost = BTreeMap::new();
        for (a, b) in topology.links() {
            let c = rng.gen_range(config.mig_cost.0..=config.mig_cost.1);
            mig_cost.insert((a, b), c);
            mig_cost.insert((b, a), c);
        }
        FollowSunWorkload {
            topology,
            alloc,
            comm_cost,
            mig_cost,
            op_cost: config.op_cost,
            capacity: config.capacity,
        }
    }

    /// Operating + communication cost of the current allocation (the part of
    /// the paper's objective that depends on where VMs sit).
    pub fn allocation_cost(&self) -> i64 {
        let mut total = 0;
        for (x, row) in self.alloc.iter().enumerate() {
            for (d, &vms) in row.iter().enumerate() {
                total += vms * (self.op_cost + self.comm_cost[x][d]);
            }
        }
        total
    }

    /// Total VMs at a data center.
    pub fn load_of(&self, x: u32) -> i64 {
        self.alloc[x as usize].iter().sum()
    }

    /// Apply a migration of `r` VMs serving demand `d` from `x` to `y`
    /// (negative `r` migrates in the other direction). Returns the migration
    /// cost incurred.
    pub fn apply_migration(&mut self, x: u32, y: u32, d: usize, r: i64) -> i64 {
        self.alloc[x as usize][d] -= r;
        self.alloc[y as usize][d] += r;
        r.abs() * self.mig_cost.get(&(x, y)).copied().unwrap_or(0)
    }
}

/// One point of the Fig. 4 cost-vs-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Simulated time in seconds.
    pub time_secs: f64,
    /// Total cost (allocation cost + cumulative migration cost), normalized
    /// so that the initial value is 100.
    pub normalized_cost: f64,
}

/// Result of one distributed Follow-the-Sun execution.
#[derive(Debug, Clone)]
pub struct FollowSunOutcome {
    /// Normalized total cost over time (Fig. 4).
    pub cost_series: Vec<CostPoint>,
    /// Average per-node communication overhead in KB/s (Fig. 5).
    pub per_node_overhead_kbps: f64,
    /// Time at which the last link negotiation completed.
    pub convergence_secs: f64,
    /// Total VM units migrated.
    pub migrated_vms: i64,
    /// Absolute initial cost.
    pub initial_cost: i64,
    /// Absolute final cost (allocation + cumulative migration).
    pub final_cost: i64,
    /// Aggregate solver effort over every per-node COP invocation of the run
    /// (nodes, fails, propagations, max depth — the paper's Table 2
    /// per-execution figures, summed across the negotiation).
    pub solver_stats: SearchStats,
    /// Total number of `invokeSolver` executions across all nodes.
    pub solver_invocations: u64,
}

impl FollowSunOutcome {
    /// Fractional cost reduction achieved by the distributed execution
    /// (the paper reports 40.4% for 2 DCs down to 11.2% for 10).
    pub fn cost_reduction(&self) -> f64 {
        if self.initial_cost == 0 {
            return 0.0;
        }
        (self.initial_cost - self.final_cost) as f64 / self.initial_cost as f64
    }
}

fn node_facts(workload: &FollowSunWorkload, node: u32) -> Vec<(&'static str, Vec<Value>)> {
    let n = workload.alloc.len();
    let x = Value::Addr(NodeId(node));
    let mut facts = Vec::new();
    for d in 0..n {
        facts.push(("dc", vec![x.clone(), Value::Int(d as i64)]));
        facts.push((
            "curVm",
            vec![
                x.clone(),
                Value::Int(d as i64),
                Value::Int(workload.alloc[node as usize][d]),
            ],
        ));
        facts.push((
            "commCost",
            vec![
                x.clone(),
                Value::Int(d as i64),
                Value::Int(workload.comm_cost[node as usize][d]),
            ],
        ));
    }
    facts.push(("opCost", vec![x.clone(), Value::Int(workload.op_cost)]));
    facts.push(("resource", vec![x.clone(), Value::Int(workload.capacity)]));
    for y in workload.topology.neighbors(node) {
        facts.push(("link", vec![x.clone(), Value::Addr(NodeId(y))]));
        facts.push((
            "migCost",
            vec![
                x.clone(),
                Value::Addr(NodeId(y)),
                Value::Int(workload.mig_cost[&(node, y)]),
            ],
        ));
    }
    facts
}

/// Refresh the `curVm` table of one node from the workload state.
fn refresh_curvm(driver: &mut DistributedCologne, workload: &FollowSunWorkload, node: u32) {
    let n = workload.alloc.len();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|d| {
            vec![
                Value::Addr(NodeId(node)),
                Value::Int(d as i64),
                Value::Int(workload.alloc[node as usize][d]),
            ]
        })
        .collect();
    if let Some(inst) = driver.instance_mut(NodeId(node)) {
        inst.relation("curVm")
            .expect("curVm is in the schema")
            .set(rows)
            .expect("curVm rows match the schema");
        let out = inst.run_rules();
        driver.ship(NodeId(node), out);
    }
}

/// Build the distributed Follow-the-Sun deployment for a workload: one
/// Cologne instance per data center running the Sec. 4.3 program, with every
/// node's base facts installed and the localization shipping rules already
/// exchanged over the simulated network.
///
/// `run_followsun` drives the paper's one-link-at-a-time negotiation on top
/// of this; tests use it to exercise per-node solver invocations directly
/// (e.g. [`cologne::DistributedCologne::invoke_solvers_parallel`]).
pub fn build_followsun_deployment(
    config: &FollowSunConfig,
    workload: &FollowSunWorkload,
) -> Deployment {
    let source = match config.migration_limit {
        Some(_) => followsun_with_migration_limit(),
        None => FOLLOWSUN_DISTRIBUTED.to_string(),
    };
    // See `FollowSunConfig::fault_plan`: hostile runs must be deterministic,
    // so the wall clock only applies to the fault-free path.
    let max_time = match config.fault_plan {
        Some(_) => None,
        None => Some(std::time::Duration::from_secs(10)),
    };
    let mut params = ProgramParams::new()
        .with_var_domain("migVm", VarDomain::new(-config.capacity, config.capacity))
        .with_solver_node_limit(Some(config.solver_node_limit))
        .with_solver_max_time(max_time);
    if let Some(limit) = config.migration_limit {
        params = params.with_constant("max_migrates", limit);
    }
    // The COP cost is a SUMABS over the migration variables, so `migVm = 0`
    // (ship nothing) is both feasible and cheap: branching toward zero first
    // hands branch-and-bound a near-optimal incumbent right away, and the
    // rest of the search is bound pruning instead of incumbent discovery.
    // Bisection (`split_threshold: 2`) pairs with that: once the incumbent is
    // tight, the half of a domain far from zero is refuted in a single
    // conflict instead of one failed propagation per candidate value.
    let solver = SolverSettings {
        max_time,
        node_limit: Some(config.solver_node_limit),
        value_choice: ValueChoice::ClosestToZero,
        split_threshold: Some(2),
        workers: config.solver_workers,
        // A crashed node re-solves from a cold pipeline; under a fault plan
        // warm incumbents are disabled everywhere so quiet and hostile runs
        // tie-break identically.
        warm_start: config.fault_plan.is_none(),
        ..SolverSettings::default()
    };

    let mut builder = DeploymentBuilder::new(&source)
        .params(params)
        .solver(solver)
        .topology(workload.topology.clone());
    if let Some(plan) = &config.fault_plan {
        builder = builder.faults(plan.clone());
    }
    let mut driver = builder.build().expect("Follow-the-Sun program compiles");

    // Install the per-node base facts and let the shipping rules distribute
    // neighbour state.
    for node in workload.topology.nodes() {
        for (rel, tuple) in node_facts(workload, node) {
            driver
                .insert(NodeId(node), rel, tuple)
                .expect("base facts match the schema");
        }
    }
    driver.run_messages_until(SimTime::from_secs(1));
    driver
}

/// Run the distributed Follow-the-Sun execution on a generated workload.
pub fn run_followsun(config: &FollowSunConfig) -> FollowSunOutcome {
    let mut workload = FollowSunWorkload::generate(config);
    let mut driver = build_followsun_deployment(config, &workload);

    // Negotiate each link once, on the paper's 5-second cadence; the
    // higher-numbered endpoint initiates (footnote 1 of Sec. 4.3).
    let links = workload.topology.links();
    let mut cumulative_migration_cost = 0i64;
    let mut migrated_vms = 0i64;
    let initial_cost = workload.allocation_cost();
    let mut cost_series = vec![CostPoint {
        time_secs: 0.0,
        normalized_cost: 100.0,
    }];
    let mut convergence_secs = 0.0;

    // Under a fault plan, negotiations must not read a half-synced view:
    // wait out crash windows on the link being negotiated and drive the
    // delivery layer to quiescence (every shipped tuple acked) before each
    // local solve. `fault_horizon` bounds how long a wait can be pushed past
    // a round's nominal deadline by the last scheduled rejoin.
    let hostile = config.fault_plan.is_some();
    let fault_horizon = config
        .fault_plan
        .as_ref()
        .and_then(|p| p.crashes().iter().map(|c| c.up).max())
        .unwrap_or(SimTime::ZERO);
    let period_us = SimTime::from_secs(config.negotiation_period_secs).0;

    for (round, &(a, b)) in links.iter().enumerate() {
        let initiator = a.max(b);
        let peer = a.min(b);
        let mut deadline = SimTime::from_secs((round as u64 + 1) * config.negotiation_period_secs);
        if hostile {
            deadline = hostile_barrier(
                &mut driver,
                deadline,
                fault_horizon,
                period_us,
                [initiator, peer],
            );
        } else {
            driver.run_messages_until(deadline);
        }

        // Start the negotiation: setLink at the initiator triggers r1.
        let set_link = vec![Value::Addr(NodeId(initiator)), Value::Addr(NodeId(peer))];
        driver
            .insert(NodeId(initiator), "setLink", set_link.clone())
            .expect("setLink matches the schema");
        if hostile {
            deadline = hostile_barrier(
                &mut driver,
                deadline,
                fault_horizon,
                period_us,
                [initiator, peer],
            );
        } else {
            driver.run_messages_until(deadline);
        }

        // Local COP at the initiator. The local objective (aggCost) covers
        // operating + communication cost of both endpoints plus migration
        // cost; a proposed migration is only applied if it beats keeping the
        // current allocation (the zero-migration plan), which mirrors the
        // paper's greedy per-link improvement and keeps the global cost
        // non-increasing.
        let zero_migration_cost: i64 = [initiator, peer]
            .iter()
            .map(|&x| {
                (0..workload.alloc.len())
                    .map(|d| {
                        workload.alloc[x as usize][d]
                            * (workload.op_cost + workload.comm_cost[x as usize][d])
                    })
                    .sum::<i64>()
            })
            .sum();
        let report = driver
            .instance_mut(NodeId(initiator))
            .expect("initiator exists")
            .invoke_solver();
        let mut outgoing: Vec<RemoteTuple> = Vec::new();
        if let Ok(report) = report {
            let improves = report
                .objective
                .is_some_and(|obj| obj < zero_migration_cost);
            if report.feasible && !report.trivial && improves {
                for row in report.table("migVm") {
                    let (Some(y), Some(d), Some(r)) =
                        (row[1].as_addr(), row[2].as_int(), row[3].as_int())
                    else {
                        continue;
                    };
                    if r == 0 {
                        continue;
                    }
                    // Paper rule r2: propagate the (negated) result to the
                    // neighbour so both sides agree on the migration.
                    outgoing.push(RemoteTuple {
                        dest: y,
                        relation: "migVm".into(),
                        tuple: vec![
                            Value::Addr(y),
                            Value::Addr(NodeId(initiator)),
                            Value::Int(d),
                            Value::Int(-r),
                        ],
                        insert: true,
                    });
                    cumulative_migration_cost +=
                        workload.apply_migration(initiator, y.0, d as usize, r);
                    migrated_vms += r.abs();
                }
            }
        }
        driver.ship(NodeId(initiator), outgoing);

        // Paper rule r3: both endpoints update their allocations.
        refresh_curvm(driver.network_mut(), &workload, initiator);
        refresh_curvm(driver.network_mut(), &workload, peer);
        driver
            .instance_mut(NodeId(initiator))
            .expect("initiator")
            .relation("setLink")
            .expect("setLink is in the schema")
            .set(vec![])
            .expect("empty refresh is valid");
        if hostile {
            deadline = hostile_barrier(
                &mut driver,
                deadline,
                fault_horizon,
                period_us,
                [initiator, peer],
            );
        } else {
            driver.run_messages_until(deadline);
        }

        let total = workload.allocation_cost() + cumulative_migration_cost;
        let time_secs = driver.now().as_secs_f64().max(deadline.as_secs_f64());
        convergence_secs = time_secs;
        cost_series.push(CostPoint {
            time_secs,
            normalized_cost: 100.0 * total as f64 / initial_cost.max(1) as f64,
        });
    }

    let mut solver_stats = SearchStats::default();
    let mut solver_invocations = 0;
    for node in workload.topology.nodes() {
        if let Some(inst) = driver.instance(NodeId(node)) {
            solver_stats.merge(inst.cumulative_solver_stats());
            solver_invocations += inst.solver_invocations();
        }
    }

    FollowSunOutcome {
        cost_series,
        per_node_overhead_kbps: driver.per_node_overhead_kbps(),
        convergence_secs,
        migrated_vms,
        initial_cost,
        final_cost: workload.allocation_cost() + cumulative_migration_cost,
        solver_stats,
        solver_invocations,
    }
}

/// Run the Fig. 4 / Fig. 5 sweep over network sizes.
pub fn run_followsun_sweep(sizes: &[u32], base: &FollowSunConfig) -> Vec<(u32, FollowSunOutcome)> {
    sizes
        .iter()
        .map(|&n| {
            let config = FollowSunConfig {
                data_centers: n,
                ..base.clone()
            };
            (n, run_followsun(&config))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FollowSunConfig {
        FollowSunConfig {
            data_centers: 3,
            capacity: 30,
            max_initial_allocation: 6,
            solver_node_limit: 20_000,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn workload_generation_is_deterministic_and_consistent() {
        let config = small_config();
        let w1 = FollowSunWorkload::generate(&config);
        let w2 = FollowSunWorkload::generate(&config);
        assert_eq!(w1.alloc, w2.alloc);
        assert_eq!(w1.comm_cost, w2.comm_cost);
        assert!(w1.topology.is_connected());
        assert!(w1.allocation_cost() > 0);
        // local demand must be cheaper than remote demand on average
        let n = w1.alloc.len();
        for x in 0..n {
            for d in 0..n {
                if x == d {
                    assert!(w1.comm_cost[x][d] <= config.comm_cost.0);
                }
            }
        }
    }

    #[test]
    fn apply_migration_moves_load_and_charges_cost() {
        let config = small_config();
        let mut w = FollowSunWorkload::generate(&config);
        let (a, b) = w.topology.links()[0];
        let before_a = w.alloc[a as usize][0];
        let before_b = w.alloc[b as usize][0];
        let total_before: i64 = w.topology.nodes().iter().map(|&x| w.load_of(x)).sum();
        let cost = w.apply_migration(a, b, 0, 2);
        assert_eq!(w.alloc[a as usize][0], before_a - 2);
        assert_eq!(w.alloc[b as usize][0], before_b + 2);
        assert!(cost >= 2 * config.mig_cost.0);
        let total_after: i64 = w.topology.nodes().iter().map(|&x| w.load_of(x)).sum();
        assert_eq!(total_before, total_after, "migration conserves total VMs");
    }

    #[test]
    fn distributed_execution_reduces_cost() {
        let config = small_config();
        let outcome = run_followsun(&config);
        assert_eq!(
            outcome.cost_series.first().map(|p| p.normalized_cost),
            Some(100.0)
        );
        assert!(
            outcome.final_cost <= outcome.initial_cost,
            "cost must not increase"
        );
        assert!(outcome.cost_reduction() >= 0.0);
        // cost is non-increasing over the series (each negotiation only
        // accepts improving migrations)
        for w in outcome.cost_series.windows(2) {
            assert!(w[1].normalized_cost <= w[0].normalized_cost + 1e-9);
        }
        assert!(outcome.convergence_secs > 0.0);
        assert!(outcome.per_node_overhead_kbps >= 0.0);
    }

    #[test]
    fn migration_limit_reduces_migrated_volume() {
        let unrestricted = run_followsun(&small_config());
        let limited = run_followsun(&FollowSunConfig {
            migration_limit: Some(1),
            ..small_config()
        });
        assert!(
            limited.migrated_vms <= unrestricted.migrated_vms,
            "limited ({}) must migrate no more than unrestricted ({})",
            limited.migrated_vms,
            unrestricted.migrated_vms
        );
    }

    #[test]
    fn sweep_covers_requested_sizes() {
        let base = FollowSunConfig {
            solver_node_limit: 5_000,
            ..small_config()
        };
        let results = run_followsun_sweep(&[2, 3], &base);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, 2);
        assert_eq!(results[1].0, 3);
        for (_, outcome) in &results {
            assert!(outcome.initial_cost > 0);
        }
    }
}
