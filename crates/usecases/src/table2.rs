//! Table 2: compactness of Colog programs vs generated imperative code.
//!
//! The paper compares the number of Colog rules in each of the five programs
//! against the lines of C++ generated for RapidNet + Gecode, reporting a
//! roughly 100x gap. This module regenerates both columns from the program
//! sources shipped in [`crate::programs`] using the compiler's code
//! generator.

use cologne::colog::{analyze, generate_cpp, parse_program};

use crate::programs::table2_programs;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct CompactnessRow {
    /// Program name (as in the paper's first column).
    pub protocol: String,
    /// Number of Colog rules + declarations.
    pub colog_rules: usize,
    /// Lines of generated imperative C++ (sloccount-style count).
    pub generated_loc: usize,
}

impl CompactnessRow {
    /// Ratio of generated imperative lines to Colog rules.
    pub fn ratio(&self) -> f64 {
        self.generated_loc as f64 / self.colog_rules.max(1) as f64
    }
}

/// Build every row of Table 2.
pub fn compactness_table() -> Vec<CompactnessRow> {
    table2_programs()
        .into_iter()
        .map(|(name, source)| {
            let program = parse_program(&source).expect("shipped programs parse");
            let analysis = analyze(&program).expect("shipped programs analyze");
            let slug: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let generated = generate_cpp(&program, &analysis, &slug);
            CompactnessRow {
                protocol: name.to_string(),
                colog_rules: program.num_rules(),
                generated_loc: generated.loc(),
            }
        })
        .collect()
}

/// Render the table as aligned text (what the Table 2 harness binary prints).
pub fn render_table(rows: &[CompactnessRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>12} {:>18} {:>8}\n",
        "Protocol", "Colog rules", "Generated C++ LOC", "Ratio"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<32} {:>12} {:>18} {:>7.0}x\n",
            row.protocol,
            row.colog_rules,
            row.generated_loc,
            row.ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_programs_with_large_ratios() {
        let rows = compactness_table();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.colog_rules >= 7,
                "{}: {} rules",
                row.protocol,
                row.colog_rules
            );
            assert!(
                row.ratio() >= 30.0,
                "{}: ratio {:.1} too small to support the orders-of-magnitude claim",
                row.protocol,
                row.ratio()
            );
        }
    }

    #[test]
    fn distributed_programs_generate_more_code_than_centralized() {
        let rows = compactness_table();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.protocol.contains(name))
                .map(|r| r.generated_loc)
                .unwrap()
        };
        assert!(
            get("Follow-the-Sun (distributed)") > get("Follow-the-Sun (centralized)"),
            "distributed FTS should generate more code"
        );
    }

    #[test]
    fn render_produces_one_line_per_row_plus_header() {
        let rows = compactness_table();
        let text = render_table(&rows);
        assert_eq!(text.lines().count(), rows.len() + 1);
        assert!(text.contains("ACloud"));
        assert!(text.contains("Ratio"));
    }
}
