//! # cologne-usecases
//!
//! The three use cases evaluated by the Cologne paper (Liu et al., VLDB
//! 2012), implemented on top of the `cologne` runtime, together with their
//! workload generators, the baselines they are compared against, and the
//! experiment harnesses that regenerate every table and figure of Sec. 6:
//!
//! * [`acloud`] — adaptive cloud load balancing (Fig. 2, Fig. 3) with the
//!   Default and Heuristic baselines and the ACloud / ACloud (M) Colog
//!   policies, driven by a synthetic data-center trace;
//! * [`followsun`] — inter-data-center VM migration (Fig. 4, Fig. 5) with
//!   the distributed per-link negotiation protocol of Sec. 4.3 running over
//!   the simulated network;
//! * [`wireless`] — wireless channel selection (Fig. 6, Fig. 7) with
//!   centralized, distributed and cross-layer protocols plus the
//!   Identical-Ch and 1-Interface baselines, evaluated on an
//!   interference-model grid simulator;
//! * [`programs`] — the Colog program listings themselves;
//! * [`table2`] — the code-compactness comparison (Table 2).

pub mod acloud;
pub mod churn;
pub mod followsun;
mod hostile;
pub mod programs;
pub mod table2;
pub mod wireless;

pub use acloud::{
    large_acloud_instance, run_acloud_experiment, solve_large_acloud, AcloudConfig, AcloudPolicy,
    AcloudResults, LargeAcloudConfig,
};
pub use churn::{run_churn, ChurnConfig, ChurnOutcome, ChurnTick};
pub use followsun::{
    build_followsun_deployment, run_followsun, run_followsun_sweep, FollowSunConfig,
    FollowSunOutcome, FollowSunWorkload,
};
pub use table2::{compactness_table, render_table, CompactnessRow};
pub use wireless::{
    networked_distributed_assignment, run_fig6, run_fig7, NetworkedAssignment, WirelessConfig,
    WirelessPolicy, WirelessProtocol,
};
