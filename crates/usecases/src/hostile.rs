//! Shared synchronization helper for driving distributed negotiations over
//! a faulty network (see `cologne::DistributedCologne::set_fault_plan`).

use cologne::datalog::NodeId;
use cologne::net::SimTime;
use cologne::Deployment;

/// Hostile-mode synchronization barrier: advance the simulation until the
/// named endpoints are up **and** the delivery layer is quiescent (every
/// shipped tuple delivered and acked).
///
/// A single await-then-settle is not enough: a crash window can open in the
/// middle of the settle, after the endpoint check has already passed, and
/// the caller would then negotiate against a node whose remote state was
/// just wiped. The barrier therefore re-checks after settling and loops —
/// the rejoin re-syncs the node's relations from its neighbours'
/// `outstanding` snapshots, and the next settle delivers them.
///
/// Deadlines only ever move forward (extended past `fault_horizon`, the last
/// scheduled rejoin, when a crashed node is holding acks back), so each
/// extension pushes later rounds out rather than re-entering a crash window.
/// Returns the possibly-extended deadline. On a quiet plan this reduces to
/// exactly one settle.
pub(crate) fn hostile_barrier(
    driver: &mut Deployment,
    mut deadline: SimTime,
    fault_horizon: SimTime,
    period_us: u64,
    endpoints: [u32; 2],
) -> SimTime {
    // Every crash window is finite (all rejoins are at or before
    // `fault_horizon`), so a few rounds always suffice; the cap is a safety
    // net against a malformed plan, not a tuning knob.
    for _ in 0..8 {
        let horizon = deadline.max(fault_horizon).plus_us(period_us);
        for n in endpoints {
            driver.await_node(NodeId(n), horizon);
        }
        if deadline <= driver.now() {
            deadline = driver.now().plus_us(period_us);
        }
        let settled = if driver.settle(deadline) {
            true
        } else {
            deadline = deadline.max(fault_horizon).plus_us(period_us);
            driver.settle(deadline)
        };
        if settled && endpoints.iter().all(|&n| !driver.is_down(NodeId(n))) {
            break;
        }
    }
    deadline
}
