//! Network topologies.
//!
//! The paper's Follow-the-Sun experiments run over randomly connected data
//! centers with an average node degree of 3 (Sec. 6.3), and the wireless
//! experiments over an 8m×5m grid of 30 nodes (Sec. 6.4). This module
//! provides those topology builders plus a few generic ones used by tests.

use std::collections::{BTreeMap, BTreeSet};

/// Index of a node in the simulated network. The Cologne runtime maps these
/// one-to-one onto `cologne_datalog::NodeId` values.
pub type NodeIdx = u32;

/// Properties of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProps {
    /// One-way latency in microseconds.
    pub latency_us: u64,
    /// Bandwidth in bits per second (used to account transmission delay).
    pub bandwidth_bps: u64,
}

impl Default for LinkProps {
    fn default() -> Self {
        // 10 Mbps Ethernet with 1 ms latency: the ns-3 configuration used in
        // the paper's Follow-the-Sun experiments (Sec. 6.3).
        LinkProps {
            latency_us: 1_000,
            bandwidth_bps: 10_000_000,
        }
    }
}

/// An undirected network topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeSet<NodeIdx>,
    links: BTreeMap<(NodeIdx, NodeIdx), LinkProps>,
}

fn key(a: NodeIdx, b: NodeIdx) -> (NodeIdx, NodeIdx) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add an isolated node.
    pub fn add_node(&mut self, n: NodeIdx) {
        self.nodes.insert(n);
    }

    /// Add an undirected link (adds missing endpoints).
    pub fn add_link(&mut self, a: NodeIdx, b: NodeIdx, props: LinkProps) {
        assert_ne!(a, b, "self links are not allowed");
        self.nodes.insert(a);
        self.nodes.insert(b);
        self.links.insert(key(a, b), props);
    }

    /// All node indices, sorted.
    pub fn nodes(&self) -> Vec<NodeIdx> {
        self.nodes.iter().copied().collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All undirected links, sorted.
    pub fn links(&self) -> Vec<(NodeIdx, NodeIdx)> {
        self.links.keys().copied().collect()
    }

    /// True if `a` and `b` are directly connected.
    pub fn has_link(&self, a: NodeIdx, b: NodeIdx) -> bool {
        self.links.contains_key(&key(a, b))
    }

    /// Link properties if `a`—`b` exists.
    pub fn link(&self, a: NodeIdx, b: NodeIdx) -> Option<LinkProps> {
        self.links.get(&key(a, b)).copied()
    }

    /// Neighbors of a node, sorted.
    pub fn neighbors(&self, n: NodeIdx) -> Vec<NodeIdx> {
        let mut out: Vec<NodeIdx> = self
            .links
            .keys()
            .filter_map(|&(a, b)| {
                if a == n {
                    Some(b)
                } else if b == n {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        2.0 * self.links.len() as f64 / self.nodes.len() as f64
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let nodes = self.nodes();
        if nodes.len() <= 1 {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(n) = stack.pop() {
            for m in self.neighbors(n) {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen.len() == nodes.len()
    }

    // ---- builders ----------------------------------------------------------

    /// A single isolated node (node 0) — the topology of a centralized,
    /// non-distributed deployment.
    pub fn single() -> Topology {
        let mut t = Topology::new();
        t.add_node(0);
        t
    }

    /// A chain `0 — 1 — ... — n-1`.
    pub fn line(n: u32, props: LinkProps) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(i);
        }
        for i in 1..n {
            t.add_link(i - 1, i, props);
        }
        t
    }

    /// A ring of `n` nodes.
    pub fn ring(n: u32, props: LinkProps) -> Topology {
        let mut t = Topology::line(n, props);
        if n > 2 {
            t.add_link(n - 1, 0, props);
        }
        t
    }

    /// A full mesh over `n` nodes.
    pub fn full_mesh(n: u32, props: LinkProps) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(i);
            for j in 0..i {
                t.add_link(j, i, props);
            }
        }
        t
    }

    /// A `rows × cols` grid (each node linked to its right and down
    /// neighbours), matching the ORBIT-style wireless grid of Sec. 6.4.
    pub fn grid(rows: u32, cols: u32, props: LinkProps) -> Topology {
        let mut t = Topology::new();
        let id = |r: u32, c: u32| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                t.add_node(id(r, c));
                if c + 1 < cols {
                    t.add_link(id(r, c), id(r, c + 1), props);
                }
                if r + 1 < rows {
                    t.add_link(id(r, c), id(r + 1, c), props);
                }
            }
        }
        t
    }

    /// A connected random topology over `n` nodes with the given target
    /// average degree (the Follow-the-Sun setup uses degree ≈ 3). The
    /// construction is deterministic in `seed`.
    pub fn random_connected(n: u32, target_degree: f64, seed: u64, props: LinkProps) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(i);
        }
        if n <= 1 {
            return t;
        }
        // Simple xorshift generator keeps this crate dependency-free.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Random spanning tree first (guarantees connectivity).
        for i in 1..n {
            let j = (next() % i as u64) as u32;
            t.add_link(i, j, props);
        }
        // Add extra random links until the target degree is reached.
        let target_links = ((target_degree * n as f64) / 2.0).round() as usize;
        let max_links = (n as usize * (n as usize - 1)) / 2;
        let target_links = target_links.min(max_links);
        let mut guard = 0;
        while t.num_links() < target_links && guard < 10_000 {
            guard += 1;
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            if a != b && !t.has_link(a, b) {
                t.add_link(a, b, props);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring() {
        let l = Topology::line(4, LinkProps::default());
        assert_eq!(l.num_nodes(), 4);
        assert_eq!(l.num_links(), 3);
        assert!(l.has_link(0, 1));
        assert!(!l.has_link(0, 3));
        assert!(l.is_connected());
        let r = Topology::ring(4, LinkProps::default());
        assert_eq!(r.num_links(), 4);
        assert!(r.has_link(3, 0));
    }

    #[test]
    fn grid_shape() {
        let g = Topology::grid(3, 5, LinkProps::default());
        assert_eq!(g.num_nodes(), 15);
        // links: 3*4 horizontal + 2*5 vertical = 22
        assert_eq!(g.num_links(), 22);
        assert!(g.is_connected());
        assert_eq!(g.neighbors(0), vec![1, 5]);
    }

    #[test]
    fn full_mesh_counts() {
        let m = Topology::full_mesh(5, LinkProps::default());
        assert_eq!(m.num_links(), 10);
        assert_eq!(m.neighbors(2).len(), 4);
    }

    #[test]
    fn random_connected_is_connected_and_near_degree() {
        for n in [2u32, 4, 6, 10] {
            let t = Topology::random_connected(n, 3.0, 42, LinkProps::default());
            assert!(t.is_connected(), "n={n}");
            assert_eq!(t.num_nodes(), n as usize);
            if n >= 4 {
                assert!(
                    t.average_degree() >= 2.0,
                    "n={n} degree={}",
                    t.average_degree()
                );
            }
        }
    }

    #[test]
    fn random_connected_is_deterministic() {
        let a = Topology::random_connected(8, 3.0, 7, LinkProps::default());
        let b = Topology::random_connected(8, 3.0, 7, LinkProps::default());
        assert_eq!(a.links(), b.links());
        let c = Topology::random_connected(8, 3.0, 8, LinkProps::default());
        // different seed very likely differs (not guaranteed, but true here)
        assert_ne!(a.links(), c.links());
    }

    #[test]
    fn link_lookup_is_symmetric() {
        let mut t = Topology::new();
        t.add_link(
            1,
            2,
            LinkProps {
                latency_us: 5,
                bandwidth_bps: 100,
            },
        );
        assert_eq!(t.link(2, 1).unwrap().latency_us, 5);
        assert!(t.has_link(2, 1));
        assert_eq!(t.neighbors(2), vec![1]);
    }

    #[test]
    #[should_panic]
    fn self_link_rejected() {
        let mut t = Topology::new();
        t.add_link(1, 1, LinkProps::default());
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::new();
        t.add_link(0, 1, LinkProps::default());
        t.add_node(5);
        assert!(!t.is_connected());
    }
}
