//! Seeded, deterministic fault injection for the discrete-event simulator.
//!
//! The paper evaluates Cologne over simulated UDP (Sec. 6) — a transport
//! that loses, duplicates and reorders datagrams, and whose nodes can fail.
//! A [`FaultPlan`] describes exactly those hazards for one simulation run:
//! per-link message loss and duplication probabilities, latency jitter
//! (which reorders messages relative to their send order), temporary
//! partitions, and node crash/rejoin windows at scheduled [`SimTime`]s.
//!
//! # Determinism contract
//!
//! Every random decision is drawn from a splitmix64 stream (the same
//! generator the LNS portfolio uses for seed derivation) keyed by the plan
//! seed *and the directed link*: the n-th message sent over link `src → dest`
//! always sees the same loss/duplication/jitter draws, no matter what other
//! links do in between. Two runs of the same workload under the same plan
//! are therefore byte-identical — the property the hostile-network
//! reconvergence tests pin.
//!
//! The default plan ([`FaultPlan::default`]) injects nothing; a simulator
//! without a plan installed behaves identically to one with the quiet plan.

use std::collections::BTreeMap;

use crate::sim::SimTime;
use crate::topology::NodeIdx;

/// The splitmix64 finalizer: statistically independent outputs from
/// consecutive inputs, no state beyond the input itself.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One directed link's per-message fault profile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a message is silently lost.
    pub loss: f64,
    /// Probability in `[0, 1]` that a second copy of the message is
    /// delivered (after its own independent jitter draw).
    pub duplicate: f64,
    /// Maximum extra delivery delay in microseconds, drawn uniformly from
    /// `[0, jitter_us]` per message. Jitter reorders messages relative to
    /// their send order.
    pub jitter_us: u64,
}

impl LinkFaults {
    /// True when this profile injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.jitter_us == 0
    }
}

/// A scheduled node outage: the node crashes at `down` and rejoins at `up`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The node that fails.
    pub node: NodeIdx,
    /// Crash instant.
    pub down: SimTime,
    /// Rejoin instant (must be after `down`).
    pub up: SimTime,
}

/// A temporary partition: while active, messages between `group` and the
/// rest of the network are dropped (messages within either side still flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub group: Vec<NodeIdx>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// True when the partition separates `a` from `b` at time `now`.
    fn cuts(&self, a: NodeIdx, b: NodeIdx, now: SimTime) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        self.group.contains(&a) != self.group.contains(&b)
    }
}

/// A deterministic, seeded schedule of network hazards for one simulation.
///
/// Built with the fluent methods and installed via
/// `Simulator::set_fault_plan`. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: BTreeMap<(NodeIdx, NodeIdx), LinkFaults>,
    partitions: Vec<Partition>,
    crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    /// The quiet plan: no faults of any kind.
    fn default() -> Self {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// An empty plan drawing from the given seed. Without further
    /// configuration it injects nothing.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::default(),
            links: BTreeMap::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Apply a fault profile to every link without an explicit override.
    pub fn link_faults(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Override the fault profile of the undirected link `a — b`.
    pub fn link_faults_on(mut self, a: NodeIdx, b: NodeIdx, faults: LinkFaults) -> Self {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links.insert(key, faults);
        self
    }

    /// Cut `group` off from the rest of the network during `[from, until)`.
    pub fn partition(mut self, group: Vec<NodeIdx>, from: SimTime, until: SimTime) -> Self {
        debug_assert!(from < until, "partition window must be non-empty");
        self.partitions.push(Partition { group, from, until });
        self
    }

    /// Crash `node` at `down` and rejoin it at `up`.
    pub fn crash(mut self, node: NodeIdx, down: SimTime, up: SimTime) -> Self {
        debug_assert!(down < up, "crash window must be non-empty");
        self.crashes.push(CrashWindow { node, down, up });
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan injects nothing (the default).
    pub fn is_quiet(&self) -> bool {
        self.default_link.is_quiet()
            && self.links.values().all(LinkFaults::is_quiet)
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// The scheduled crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The fault profile in effect on the link `a — b` (either direction).
    pub(crate) fn faults_for(&self, a: NodeIdx, b: NodeIdx) -> LinkFaults {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links.get(&key).copied().unwrap_or(self.default_link)
    }

    /// True when some active partition separates `a` from `b` at `now`.
    pub(crate) fn partitioned(&self, a: NodeIdx, b: NodeIdx, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.cuts(a, b, now))
    }

    /// Initial RNG state of the directed link `src → dest`: a function of
    /// the plan seed and the link alone, so each link's draw sequence is
    /// independent of global event interleaving.
    pub(crate) fn stream_for(&self, src: NodeIdx, dest: NodeIdx) -> u64 {
        splitmix64(self.seed ^ ((u64::from(src) << 32) | u64::from(dest)))
    }
}

/// Advance a per-link stream and return a probability draw in `[0, 1)`.
pub(crate) fn draw_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (splitmix64(*state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Advance a per-link stream and return a uniform draw in `[0, bound]`.
pub(crate) fn draw_up_to(state: &mut u64, bound: u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    if bound == u64::MAX {
        return splitmix64(*state);
    }
    splitmix64(*state) % (bound + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Same reference vector the LNS portfolio pins.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn default_plan_is_quiet() {
        let plan = FaultPlan::default();
        assert!(plan.is_quiet());
        assert!(plan.faults_for(0, 1).is_quiet());
        assert!(!plan.partitioned(0, 1, SimTime::from_secs(1)));
        assert!(plan.crashes().is_empty());
    }

    #[test]
    fn link_overrides_and_defaults() {
        let noisy = LinkFaults {
            loss: 0.25,
            ..Default::default()
        };
        let worse = LinkFaults {
            loss: 0.5,
            duplicate: 0.1,
            jitter_us: 100,
        };
        let plan = FaultPlan::seeded(7)
            .link_faults(noisy)
            .link_faults_on(2, 1, worse);
        assert!(!plan.is_quiet());
        assert_eq!(plan.faults_for(0, 1), noisy);
        // undirected override, queried in either direction
        assert_eq!(plan.faults_for(1, 2), worse);
        assert_eq!(plan.faults_for(2, 1), worse);
    }

    #[test]
    fn partitions_cut_across_groups_only_inside_window() {
        let plan = FaultPlan::seeded(1).partition(
            vec![0, 1],
            SimTime::from_secs(2),
            SimTime::from_secs(4),
        );
        assert!(!plan.partitioned(0, 2, SimTime::from_secs(1)));
        assert!(plan.partitioned(0, 2, SimTime::from_secs(2)));
        assert!(plan.partitioned(2, 1, SimTime::from_secs(3)));
        // within one side of the cut, traffic flows
        assert!(!plan.partitioned(0, 1, SimTime::from_secs(3)));
        // window end is exclusive
        assert!(!plan.partitioned(0, 2, SimTime::from_secs(4)));
    }

    #[test]
    fn per_link_streams_are_independent_and_deterministic() {
        let plan = FaultPlan::seeded(42);
        let mut a1 = plan.stream_for(0, 1);
        let mut a2 = plan.stream_for(0, 1);
        let mut b = plan.stream_for(1, 0);
        let draws1: Vec<f64> = (0..8).map(|_| draw_unit(&mut a1)).collect();
        let draws2: Vec<f64> = (0..8).map(|_| draw_unit(&mut a2)).collect();
        assert_eq!(draws1, draws2, "same link => same stream");
        assert_ne!(
            draws1[0],
            draw_unit(&mut b),
            "directed links use distinct streams"
        );
        for d in draws1 {
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut s = FaultPlan::seeded(3).stream_for(4, 5);
        for _ in 0..100 {
            assert!(draw_up_to(&mut s, 10) <= 10);
        }
        assert_eq!(draw_up_to(&mut s, 0), 0);
    }
}
