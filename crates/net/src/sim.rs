//! Discrete-event simulation core.
//!
//! The paper evaluates distributed Cologne deployments inside ns-3
//! ("simulation mode", Sec. 6): Cologne instances exchange UDP messages over
//! simulated 10 Mbps links, and the evaluation reports convergence time
//! (Fig. 4) and per-node communication overhead (Fig. 5). This module
//! provides the equivalent substrate: a virtual clock, an event queue,
//! message delivery with link latency + transmission delay, per-node timers,
//! and per-node traffic accounting.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::topology::{LinkProps, NodeIdx, Topology};

/// Virtual time in microseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Add a duration in microseconds.
    pub fn plus_us(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

/// An event delivered by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<P> {
    /// A message arriving at `dest`.
    Message {
        /// Sender.
        src: NodeIdx,
        /// Receiver.
        dest: NodeIdx,
        /// Application payload.
        payload: P,
    },
    /// A timer firing at `node`.
    Timer {
        /// Node owning the timer.
        node: NodeIdx,
        /// Application-defined tag distinguishing timer kinds.
        tag: u64,
    },
}

/// Per-node traffic counters (the raw data behind Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes sent by the node.
    pub bytes_sent: u64,
    /// Bytes received by the node.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
}

#[derive(Debug)]
struct Scheduled<P> {
    time: SimTime,
    seq: u64,
    event: Event<P>,
}

/// The discrete-event simulator.
#[derive(Debug)]
pub struct Simulator<P> {
    topology: Topology,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending: HashMap<(SimTime, u64), Scheduled<P>>,
    traffic: HashMap<NodeIdx, NodeTraffic>,
    default_link: LinkProps,
    delivered: u64,
}

impl<P> Simulator<P> {
    /// Create a simulator over a topology.
    pub fn new(topology: Topology) -> Self {
        Simulator {
            topology,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            pending: HashMap::new(),
            traffic: HashMap::new(),
            default_link: LinkProps::default(),
            delivered: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still scheduled.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Per-node traffic counters.
    pub fn traffic(&self, node: NodeIdx) -> NodeTraffic {
        self.traffic.get(&node).copied().unwrap_or_default()
    }

    /// Average per-node communication overhead in KB/s over the elapsed
    /// simulated time (counts bytes sent, as Fig. 5 does).
    pub fn per_node_overhead_kbps(&self) -> f64 {
        let secs = self.now.as_secs_f64();
        let n = self.topology.num_nodes();
        if secs <= 0.0 || n == 0 {
            return 0.0;
        }
        let total_sent: u64 = self.traffic.values().map(|t| t.bytes_sent).sum();
        (total_sent as f64 / 1024.0) / secs / n as f64
    }

    fn push(&mut self, time: SimTime, event: Event<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((time, seq)));
        self.pending
            .insert((time, seq), Scheduled { time, seq, event });
    }

    /// Schedule delivery of a message of `size_bytes` from `src` to `dest`.
    ///
    /// Delivery time = link latency + transmission delay (`size / bandwidth`).
    /// If the two nodes are not directly connected the default link profile is
    /// used (the paper's distributed programs only ever message direct
    /// neighbours, so this is a convenience for tests).
    pub fn send_message(&mut self, src: NodeIdx, dest: NodeIdx, payload: P, size_bytes: usize) {
        let props = self.topology.link(src, dest).unwrap_or(self.default_link);
        let tx_us = (size_bytes as u64 * 8 * 1_000_000)
            .checked_div(props.bandwidth_bps)
            .unwrap_or(0);
        let arrival = self.now.plus_us(props.latency_us + tx_us);
        let sent = self.traffic.entry(src).or_default();
        sent.bytes_sent += size_bytes as u64;
        sent.messages_sent += 1;
        let recv = self.traffic.entry(dest).or_default();
        recv.bytes_received += size_bytes as u64;
        recv.messages_received += 1;
        self.push(arrival, Event::Message { src, dest, payload });
    }

    /// Schedule a timer to fire at `node` after `delay`.
    pub fn schedule_timer(&mut self, node: NodeIdx, delay: SimTime, tag: u64) {
        let at = self.now.plus_us(delay.0);
        self.push(at, Event::Timer { node, tag });
    }

    /// Pop the next event, advancing the virtual clock.
    pub fn next_event(&mut self) -> Option<(SimTime, Event<P>)> {
        let Reverse((time, seq)) = self.queue.pop()?;
        let scheduled = self
            .pending
            .remove(&(time, seq))
            .expect("queued event exists");
        debug_assert_eq!(scheduled.time, time);
        debug_assert_eq!(scheduled.seq, seq);
        self.now = time;
        self.delivered += 1;
        Some((time, scheduled.event))
    }

    /// Run until the queue is empty or `limit` is reached, invoking the
    /// handler for every event. The handler may schedule further events
    /// through the mutable simulator reference it receives.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<P>, SimTime, Event<P>),
    {
        let mut handled = 0;
        while let Some(Reverse((t, _))) = self.queue.peek() {
            if *t > limit {
                break;
            }
            let (time, event) = self.next_event().expect("peeked event exists");
            handler(self, time, event);
            handled += 1;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_sim() -> Simulator<&'static str> {
        let mut topo = Topology::new();
        topo.add_link(
            0,
            1,
            LinkProps {
                latency_us: 1000,
                bandwidth_bps: 8_000_000,
            },
        );
        Simulator::new(topo)
    }

    #[test]
    fn message_delivery_accounts_latency_and_transmission() {
        let mut sim = two_node_sim();
        // 1000 bytes at 8 Mbps = 1 ms transmission + 1 ms latency = 2 ms
        sim.send_message(0, 1, "hello", 1000);
        let (t, ev) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_millis(2));
        match ev {
            Event::Message { src, dest, payload } => {
                assert_eq!((src, dest, payload), (0, 1, "hello"));
            }
            _ => panic!("expected message"),
        }
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn events_ordered_by_time_then_fifo() {
        let mut sim = two_node_sim();
        sim.schedule_timer(0, SimTime::from_millis(5), 1);
        sim.schedule_timer(0, SimTime::from_millis(1), 2);
        sim.schedule_timer(0, SimTime::from_millis(5), 3);
        let order: Vec<u64> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| match e {
                Event::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut sim = two_node_sim();
        sim.send_message(0, 1, "a", 500);
        sim.send_message(1, 0, "b", 300);
        while sim.next_event().is_some() {}
        assert_eq!(sim.traffic(0).bytes_sent, 500);
        assert_eq!(sim.traffic(0).bytes_received, 300);
        assert_eq!(sim.traffic(1).messages_sent, 1);
        assert_eq!(sim.traffic(1).messages_received, 1);
        assert_eq!(sim.events_delivered(), 2);
        assert!(sim.per_node_overhead_kbps() > 0.0);
    }

    #[test]
    fn run_until_respects_limit_and_allows_rescheduling() {
        let mut sim: Simulator<()> = Simulator::new(Topology::line(2, LinkProps::default()));
        sim.schedule_timer(0, SimTime::from_secs(1), 0);
        let mut fired = 0;
        sim.run_until(SimTime::from_secs(10), |sim, _, ev| {
            if let Event::Timer { node, tag } = ev {
                fired += 1;
                if tag < 5 {
                    sim.schedule_timer(node, SimTime::from_secs(1), tag + 1);
                }
            }
        });
        // timers at t=1..=6, tag 0..=5; all within limit
        assert_eq!(fired, 6);
        assert_eq!(sim.pending_events(), 0);

        // an event beyond the limit is not handled
        sim.schedule_timer(0, SimTime::from_secs(100), 99);
        let handled = sim.run_until(SimTime::from_secs(50), |_, _, _| {});
        assert_eq!(handled, 0);
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn unlinked_nodes_use_default_profile() {
        let mut topo = Topology::new();
        topo.add_node(0);
        topo.add_node(9);
        let mut sim: Simulator<u32> = Simulator::new(topo);
        sim.send_message(0, 9, 7, 100);
        let (t, _) = sim.next_event().unwrap();
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_millis(5).0, 5_000);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_secs(1).plus_us(5), SimTime(1_000_005));
    }
}
