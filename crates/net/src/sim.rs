//! Discrete-event simulation core.
//!
//! The paper evaluates distributed Cologne deployments inside ns-3
//! ("simulation mode", Sec. 6): Cologne instances exchange UDP messages over
//! simulated 10 Mbps links, and the evaluation reports convergence time
//! (Fig. 4) and per-node communication overhead (Fig. 5). This module
//! provides the equivalent substrate: a virtual clock, an event queue,
//! message delivery with link latency + transmission delay, per-node timers,
//! and per-node traffic accounting.
//!
//! # Fault model
//!
//! The simulated transport is UDP-like. By default every message is
//! delivered exactly once, in send order per link — but installing a
//! [`FaultPlan`] via [`Simulator::set_fault_plan`]
//! turns the network hostile:
//!
//! * **loss** — a message is dropped at send time (it still counts as sent:
//!   the bytes went onto the wire) and `messages_dropped` is charged to the
//!   sender;
//! * **duplication** — a second copy is scheduled with its own jitter draw
//!   and `messages_duplicated` is charged to the sender;
//! * **reorder via jitter** — each copy gets a uniform extra delay in
//!   `[0, jitter_us]`, so later sends can overtake earlier ones;
//! * **partitions** — while a partition window is active, messages crossing
//!   the cut are dropped at send time;
//! * **crash/rejoin** — the plan's crash windows are materialised as
//!   [`Event::NodeDown`]/[`Event::NodeUp`] events. While a node is down its
//!   timers are silently discarded and messages addressed to it are dropped
//!   at delivery time (charged to the sender as `messages_dropped`).
//!
//! All of this is deterministic: draws come from per-directed-link
//! splitmix64 streams keyed by the plan seed, so the same plan over the same
//! workload replays byte-identically (see `crate::fault`).
//!
//! # Accounting
//!
//! `bytes_sent`/`messages_sent` are charged at send time;
//! `bytes_received`/`messages_received` only when the message is actually
//! delivered by [`Simulator::next_event`] — in-flight or dropped messages
//! are never counted as received, so Fig. 5 overhead numbers stay honest.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use crate::fault::{draw_unit, draw_up_to, FaultPlan};
use crate::topology::{LinkProps, NodeIdx, Topology};

/// Virtual time in microseconds since the start of the simulation.
///
/// All arithmetic saturates at `u64::MAX` (the end of virtual time) rather
/// than wrapping, so large horizons are safe in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from whole seconds, saturating at `u64::MAX` microseconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Build from milliseconds, saturating at `u64::MAX` microseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Add a duration in microseconds, saturating at `u64::MAX`.
    pub fn plus_us(self, us: u64) -> SimTime {
        SimTime(self.0.saturating_add(us))
    }
}

/// An event delivered by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<P> {
    /// A message arriving at `dest`.
    Message {
        /// Sender.
        src: NodeIdx,
        /// Receiver.
        dest: NodeIdx,
        /// Application payload.
        payload: P,
    },
    /// A timer firing at `node`.
    Timer {
        /// Node owning the timer.
        node: NodeIdx,
        /// Application-defined tag distinguishing timer kinds.
        tag: u64,
    },
    /// `node` crashes (scheduled by the fault plan). From this instant its
    /// timers are discarded and messages to it are dropped.
    NodeDown {
        /// The crashing node.
        node: NodeIdx,
    },
    /// `node` rejoins after a crash (scheduled by the fault plan).
    NodeUp {
        /// The rejoining node.
        node: NodeIdx,
    },
}

/// Per-node traffic counters (the raw data behind Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes sent by the node.
    pub bytes_sent: u64,
    /// Bytes received by the node.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
    /// Messages this node sent that the network dropped (loss, partition,
    /// sender down at send time, or receiver down at delivery time).
    pub messages_dropped: u64,
    /// Messages this node sent that the network duplicated.
    pub messages_duplicated: u64,
}

#[derive(Debug)]
struct Scheduled<P> {
    time: SimTime,
    seq: u64,
    size_bytes: usize,
    event: Event<P>,
}

/// The discrete-event simulator.
#[derive(Debug)]
pub struct Simulator<P> {
    topology: Topology,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    pending: HashMap<(SimTime, u64), Scheduled<P>>,
    traffic: HashMap<NodeIdx, NodeTraffic>,
    default_link: LinkProps,
    delivered: u64,
    plan: Option<FaultPlan>,
    streams: HashMap<(NodeIdx, NodeIdx), u64>,
    down: BTreeSet<NodeIdx>,
}

impl<P> Simulator<P> {
    /// Create a simulator over a topology.
    pub fn new(topology: Topology) -> Self {
        Simulator {
            topology,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            pending: HashMap::new(),
            traffic: HashMap::new(),
            default_link: LinkProps::default(),
            delivered: 0,
            plan: None,
            streams: HashMap::new(),
            down: BTreeSet::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still scheduled.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Per-node traffic counters.
    pub fn traffic(&self, node: NodeIdx) -> NodeTraffic {
        self.traffic.get(&node).copied().unwrap_or_default()
    }

    /// Install a fault plan, scheduling its crash windows as
    /// [`Event::NodeDown`]/[`Event::NodeUp`] events. Installing the default
    /// (quiet) plan leaves every run byte-identical to a plan-free simulator.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for window in plan.crashes() {
            debug_assert!(window.down >= self.now, "crash window in the past");
            self.push(window.down, 0, Event::NodeDown { node: window.node });
            self.push(window.up, 0, Event::NodeUp { node: window.node });
        }
        self.plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// True while `node` is crashed (between a delivered `NodeDown` and the
    /// matching `NodeUp`).
    pub fn is_down(&self, node: NodeIdx) -> bool {
        self.down.contains(&node)
    }

    /// Average per-node communication overhead in KB/s over the elapsed
    /// simulated time (counts bytes sent, as Fig. 5 does).
    pub fn per_node_overhead_kbps(&self) -> f64 {
        let secs = self.now.as_secs_f64();
        let n = self.topology.num_nodes();
        if secs <= 0.0 || n == 0 {
            return 0.0;
        }
        let total_sent: u64 = self.traffic.values().map(|t| t.bytes_sent).sum();
        (total_sent as f64 / 1024.0) / secs / n as f64
    }

    fn push(&mut self, time: SimTime, size_bytes: usize, event: Event<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((time, seq)));
        self.pending.insert(
            (time, seq),
            Scheduled {
                time,
                seq,
                size_bytes,
                event,
            },
        );
    }

    /// Schedule delivery of a message of `size_bytes` from `src` to `dest`.
    ///
    /// Delivery time = link latency + transmission delay (`size / bandwidth`).
    /// If the two nodes are not directly connected the default link profile is
    /// used (the paper's distributed programs only ever message direct
    /// neighbours, so this is a convenience for tests).
    ///
    /// A zero-bandwidth link is unusable: the build debug-asserts against it,
    /// and in release the transmission delay saturates to the end of virtual
    /// time, so the message never arrives within any finite horizon.
    ///
    /// With a fault plan installed, the message may be dropped (loss,
    /// partition, sender down), duplicated, or delayed by jitter — see the
    /// module docs.
    pub fn send_message(&mut self, src: NodeIdx, dest: NodeIdx, payload: P, size_bytes: usize)
    where
        P: Clone,
    {
        let props = self.topology.link(src, dest).unwrap_or(self.default_link);
        debug_assert!(
            props.bandwidth_bps > 0,
            "zero-bandwidth link {src} -> {dest} is unusable"
        );
        let tx_us = (size_bytes as u64)
            .saturating_mul(8_000_000)
            .checked_div(props.bandwidth_bps)
            .unwrap_or(u64::MAX);
        let base_arrival = self.now.plus_us(props.latency_us.saturating_add(tx_us));

        let sent = self.traffic.entry(src).or_default();
        sent.bytes_sent += size_bytes as u64;
        sent.messages_sent += 1;

        let Some(plan) = &self.plan else {
            self.push(
                base_arrival,
                size_bytes,
                Event::Message { src, dest, payload },
            );
            return;
        };

        // Send-time drops: sender crashed or the link is partitioned.
        if self.down.contains(&src) || plan.partitioned(src, dest, self.now) {
            self.traffic.entry(src).or_default().messages_dropped += 1;
            return;
        }

        let faults = plan.faults_for(src, dest);
        if faults.is_quiet() {
            self.push(
                base_arrival,
                size_bytes,
                Event::Message { src, dest, payload },
            );
            return;
        }

        // Draws advance the directed link's private stream, so the n-th
        // message on a link always sees the same fate regardless of what
        // other links do in between.
        let init = plan.stream_for(src, dest);
        let state = self.streams.entry((src, dest)).or_insert(init);
        if faults.loss > 0.0 && draw_unit(state) < faults.loss {
            self.traffic.entry(src).or_default().messages_dropped += 1;
            return;
        }
        let jitter = if faults.jitter_us > 0 {
            draw_up_to(state, faults.jitter_us)
        } else {
            0
        };
        let duplicated = faults.duplicate > 0.0 && draw_unit(state) < faults.duplicate;
        let dup_jitter = if duplicated && faults.jitter_us > 0 {
            draw_up_to(state, faults.jitter_us)
        } else {
            0
        };

        self.push(
            base_arrival.plus_us(jitter),
            size_bytes,
            Event::Message {
                src,
                dest,
                payload: payload.clone(),
            },
        );
        if duplicated {
            self.traffic.entry(src).or_default().messages_duplicated += 1;
            self.push(
                base_arrival.plus_us(dup_jitter),
                size_bytes,
                Event::Message { src, dest, payload },
            );
        }
    }

    /// Schedule a timer to fire at `node` after `delay`.
    pub fn schedule_timer(&mut self, node: NodeIdx, delay: SimTime, tag: u64) {
        let at = self.now.plus_us(delay.0);
        self.push(at, 0, Event::Timer { node, tag });
    }

    /// Pop the next event at or before `limit`, advancing the virtual clock.
    ///
    /// Events beyond `limit` are left queued — the clock never advances past
    /// an event this method refused to deliver, so callers can resume later
    /// without losing anything. Fault handling happens here: timers at
    /// crashed nodes are silently discarded, messages to crashed nodes are
    /// dropped (charged to the sender), and `NodeDown`/`NodeUp` update the
    /// crash set before being surfaced to the caller.
    pub fn next_event_until(&mut self, limit: SimTime) -> Option<(SimTime, Event<P>)> {
        loop {
            let &Reverse((time, seq)) = self.queue.peek()?;
            if time > limit {
                return None;
            }
            self.queue.pop();
            let scheduled = self
                .pending
                .remove(&(time, seq))
                .expect("queued event exists");
            debug_assert_eq!(scheduled.time, time);
            debug_assert_eq!(scheduled.seq, seq);
            self.now = time;
            match &scheduled.event {
                Event::NodeDown { node } => {
                    self.down.insert(*node);
                }
                Event::NodeUp { node } => {
                    self.down.remove(node);
                }
                Event::Timer { node, .. } => {
                    if self.down.contains(node) {
                        continue;
                    }
                }
                Event::Message { src, dest, .. } => {
                    if self.down.contains(dest) {
                        self.traffic.entry(*src).or_default().messages_dropped += 1;
                        continue;
                    }
                    let recv = self.traffic.entry(*dest).or_default();
                    recv.bytes_received += scheduled.size_bytes as u64;
                    recv.messages_received += 1;
                }
            }
            self.delivered += 1;
            return Some((time, scheduled.event));
        }
    }

    /// Pop the next event, advancing the virtual clock.
    pub fn next_event(&mut self) -> Option<(SimTime, Event<P>)> {
        self.next_event_until(SimTime(u64::MAX))
    }

    /// Run until the queue is empty or `limit` is reached, invoking the
    /// handler for every event. The handler may schedule further events
    /// through the mutable simulator reference it receives.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<P>, SimTime, Event<P>),
    {
        let mut handled = 0;
        while let Some((time, event)) = self.next_event_until(limit) {
            handler(self, time, event);
            handled += 1;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFaults;

    fn two_node_sim() -> Simulator<&'static str> {
        let mut topo = Topology::new();
        topo.add_link(
            0,
            1,
            LinkProps {
                latency_us: 1000,
                bandwidth_bps: 8_000_000,
            },
        );
        Simulator::new(topo)
    }

    #[test]
    fn message_delivery_accounts_latency_and_transmission() {
        let mut sim = two_node_sim();
        // 1000 bytes at 8 Mbps = 1 ms transmission + 1 ms latency = 2 ms
        sim.send_message(0, 1, "hello", 1000);
        let (t, ev) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_millis(2));
        match ev {
            Event::Message { src, dest, payload } => {
                assert_eq!((src, dest, payload), (0, 1, "hello"));
            }
            _ => panic!("expected message"),
        }
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn events_ordered_by_time_then_fifo() {
        let mut sim = two_node_sim();
        sim.schedule_timer(0, SimTime::from_millis(5), 1);
        sim.schedule_timer(0, SimTime::from_millis(1), 2);
        sim.schedule_timer(0, SimTime::from_millis(5), 3);
        let order: Vec<u64> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| match e {
                Event::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut sim = two_node_sim();
        sim.send_message(0, 1, "a", 500);
        sim.send_message(1, 0, "b", 300);
        // in flight: sent is charged immediately, received only on delivery
        assert_eq!(sim.traffic(0).bytes_sent, 500);
        assert_eq!(sim.traffic(0).bytes_received, 0);
        assert_eq!(sim.traffic(1).messages_received, 0);
        while sim.next_event().is_some() {}
        assert_eq!(sim.traffic(0).bytes_sent, 500);
        assert_eq!(sim.traffic(0).bytes_received, 300);
        assert_eq!(sim.traffic(1).messages_sent, 1);
        assert_eq!(sim.traffic(1).messages_received, 1);
        assert_eq!(sim.events_delivered(), 2);
        assert!(sim.per_node_overhead_kbps() > 0.0);
    }

    #[test]
    fn run_until_respects_limit_and_allows_rescheduling() {
        let mut sim: Simulator<()> = Simulator::new(Topology::line(2, LinkProps::default()));
        sim.schedule_timer(0, SimTime::from_secs(1), 0);
        let mut fired = 0;
        sim.run_until(SimTime::from_secs(10), |sim, _, ev| {
            if let Event::Timer { node, tag } = ev {
                fired += 1;
                if tag < 5 {
                    sim.schedule_timer(node, SimTime::from_secs(1), tag + 1);
                }
            }
        });
        // timers at t=1..=6, tag 0..=5; all within limit
        assert_eq!(fired, 6);
        assert_eq!(sim.pending_events(), 0);

        // an event beyond the limit is not handled — and not consumed either
        sim.schedule_timer(0, SimTime::from_secs(100), 99);
        let handled = sim.run_until(SimTime::from_secs(50), |_, _, _| {});
        assert_eq!(handled, 0);
        assert_eq!(sim.pending_events(), 1);
        let handled = sim.run_until(SimTime::from_secs(200), |_, _, _| {});
        assert_eq!(handled, 1);
    }

    #[test]
    fn unlinked_nodes_use_default_profile() {
        let mut topo = Topology::new();
        topo.add_node(0);
        topo.add_node(9);
        let mut sim: Simulator<u32> = Simulator::new(topo);
        sim.send_message(0, 9, 7, 100);
        let (t, _) = sim.next_event().unwrap();
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_millis(5).0, 5_000);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_secs(1).plus_us(5), SimTime(1_000_005));
    }

    #[test]
    fn simtime_arithmetic_saturates_at_u64_max() {
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime(u64::MAX));
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime(u64::MAX));
        assert_eq!(SimTime(u64::MAX).plus_us(1), SimTime(u64::MAX));
        assert_eq!(SimTime(u64::MAX - 1).plus_us(5), SimTime(u64::MAX));
        // no saturation below the boundary
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000).0,
            u64::MAX / 1_000_000 * 1_000_000
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_link_debug_asserts() {
        let mut topo = Topology::new();
        topo.add_link(
            0,
            1,
            LinkProps {
                latency_us: 10,
                bandwidth_bps: 0,
            },
        );
        let mut sim: Simulator<()> = Simulator::new(topo);
        sim.send_message(0, 1, (), 100);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn zero_bandwidth_link_saturates_to_never_in_release() {
        let mut topo = Topology::new();
        topo.add_link(
            0,
            1,
            LinkProps {
                latency_us: 10,
                bandwidth_bps: 0,
            },
        );
        let mut sim: Simulator<()> = Simulator::new(topo);
        sim.send_message(0, 1, (), 100);
        // the message is scheduled at the end of virtual time: it never
        // arrives within any finite horizon
        assert!(sim.next_event_until(SimTime(u64::MAX - 1)).is_none());
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn quiet_plan_is_byte_identical_to_no_plan() {
        let mut plain = two_node_sim();
        let mut quiet = two_node_sim();
        quiet.set_fault_plan(FaultPlan::default());
        for sim in [&mut plain, &mut quiet] {
            sim.send_message(0, 1, "x", 400);
            sim.send_message(1, 0, "y", 200);
            sim.schedule_timer(0, SimTime::from_millis(1), 7);
        }
        loop {
            let a = plain.next_event();
            let b = quiet.next_event();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(plain.traffic(0), quiet.traffic(0));
        assert_eq!(plain.traffic(1), quiet.traffic(1));
    }

    #[test]
    fn total_loss_drops_every_message() {
        let mut sim = two_node_sim();
        sim.set_fault_plan(FaultPlan::seeded(5).link_faults(LinkFaults {
            loss: 1.0,
            ..Default::default()
        }));
        for _ in 0..10 {
            sim.send_message(0, 1, "gone", 100);
        }
        assert!(sim.next_event().is_none());
        let t = sim.traffic(0);
        assert_eq!(t.messages_sent, 10);
        assert_eq!(t.messages_dropped, 10);
        assert_eq!(sim.traffic(1).messages_received, 0);
    }

    #[test]
    fn certain_duplication_delivers_twice_and_counts() {
        let mut sim = two_node_sim();
        sim.set_fault_plan(FaultPlan::seeded(5).link_faults(LinkFaults {
            duplicate: 1.0,
            ..Default::default()
        }));
        sim.send_message(0, 1, "twice", 100);
        let mut got = 0;
        while sim.next_event().is_some() {
            got += 1;
        }
        assert_eq!(got, 2);
        assert_eq!(sim.traffic(0).messages_sent, 1);
        assert_eq!(sim.traffic(0).messages_duplicated, 1);
        assert_eq!(sim.traffic(1).messages_received, 2);
    }

    #[test]
    fn jitter_can_reorder_messages() {
        // With heavy jitter, some pair of consecutive sends arrives swapped
        // for this seed; the draw sequence is deterministic, so this test is
        // stable.
        let mut sim = two_node_sim();
        sim.set_fault_plan(FaultPlan::seeded(11).link_faults(LinkFaults {
            jitter_us: 50_000,
            ..Default::default()
        }));
        for i in 0..16u64 {
            sim.send_message(0, 1, "m", 100 + i as usize);
        }
        let mut sizes = Vec::new();
        while let Some((_, ev)) = sim.next_event() {
            if let Event::Message { .. } = ev {
                sizes.push(());
            }
        }
        assert_eq!(sizes.len(), 16);
        // all 16 delivered; reordering itself is exercised by the delivery
        // layer's out-of-order buffering tests in cologne-core
    }

    #[test]
    fn partition_window_cuts_traffic_then_heals() {
        let mut sim = two_node_sim();
        sim.set_fault_plan(FaultPlan::seeded(1).partition(
            vec![0],
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        ));
        // before the window: delivered
        sim.send_message(0, 1, "pre", 100);
        assert!(sim.next_event().is_some());
        // inside the window: dropped at send time
        sim.schedule_timer(0, SimTime::from_millis(12), 0);
        while sim.next_event_until(SimTime::from_millis(15)).is_some() {}
        sim.send_message(0, 1, "cut", 100);
        assert!(sim.next_event_until(SimTime::from_millis(19)).is_none());
        assert_eq!(sim.traffic(0).messages_dropped, 1);
        // after the window: delivered again
        sim.schedule_timer(0, SimTime::from_millis(25), 0);
        while sim.next_event().is_some() {}
        sim.send_message(0, 1, "post", 100);
        assert!(matches!(sim.next_event(), Some((_, Event::Message { .. }))));
    }

    #[test]
    fn crash_window_drops_timers_and_inbound_messages() {
        let mut sim = two_node_sim();
        sim.set_fault_plan(FaultPlan::seeded(2).crash(
            1,
            SimTime::from_millis(5),
            SimTime::from_millis(50),
        ));
        // timer at the crashed node inside the window: silently discarded
        sim.schedule_timer(1, SimTime::from_millis(10), 42);
        // message arriving while node 1 is down: dropped, charged to sender
        sim.schedule_timer(0, SimTime::from_millis(8), 0);
        let mut saw_down = false;
        let mut saw_up = false;
        let mut saw_dead_timer = false;
        sim.run_until(SimTime::from_secs(1), |sim, _, ev| match ev {
            Event::NodeDown { node } => {
                assert_eq!(node, 1);
                assert!(sim.is_down(1));
                saw_down = true;
            }
            Event::NodeUp { node } => {
                assert_eq!(node, 1);
                assert!(!sim.is_down(1));
                saw_up = true;
            }
            Event::Timer { node: 0, .. } => {
                sim.send_message(0, 1, "to the dead", 100);
            }
            Event::Timer { node: 1, .. } => saw_dead_timer = true,
            _ => {}
        });
        assert!(saw_down && saw_up);
        assert!(!saw_dead_timer, "timers at a down node must not fire");
        assert_eq!(sim.traffic(0).messages_dropped, 1);
        assert_eq!(sim.traffic(1).messages_received, 0);
    }

    #[test]
    fn seeded_hostile_runs_are_identical() {
        let plan = FaultPlan::seeded(99).link_faults(LinkFaults {
            loss: 0.3,
            duplicate: 0.2,
            jitter_us: 10_000,
        });
        let run = |plan: FaultPlan| {
            let mut sim = two_node_sim();
            sim.set_fault_plan(plan);
            for i in 0..50u64 {
                sim.send_message(0, 1, "m", 64 + (i as usize % 7));
                sim.send_message(1, 0, "r", 32);
            }
            let mut trace = Vec::new();
            while let Some((t, ev)) = sim.next_event() {
                trace.push((t, format!("{ev:?}")));
            }
            (trace, sim.traffic(0), sim.traffic(1))
        };
        assert_eq!(run(plan.clone()), run(plan));
    }
}
