//! # cologne-net
//!
//! A deterministic discrete-event network simulator — the reproduction's
//! substitute for ns-3 in the Cologne paper (Liu et al., VLDB 2012).
//!
//! The paper's "simulation mode" runs Cologne instances inside ns-3 so that
//! distributed executions can be evaluated in a controllable environment
//! (Sec. 6): messages travel over simulated 10 Mbps links, convergence time
//! is measured on the virtual clock, and per-node communication overhead is
//! read off per-node byte counters. This crate provides exactly those
//! facilities:
//!
//! * [`Topology`] — nodes and point-to-point links with latency/bandwidth,
//!   plus the builders used by the evaluation (random degree-3 topologies for
//!   Follow-the-Sun, grids for the wireless testbed, lines/rings/meshes for
//!   tests);
//! * [`Simulator`] — a virtual clock, an event queue, message delivery with
//!   latency + transmission delay, per-node timers, and per-node traffic
//!   statistics;
//! * [`FaultPlan`] — a seeded, deterministic schedule of network hazards
//!   (per-link loss/duplication/jitter, partitions, node crash/rejoin) that
//!   turns the simulated transport into the hostile UDP the paper's
//!   evaluation implies. The default plan injects nothing and leaves every
//!   run byte-identical.
//!
//! ```
//! use cologne_net::{Simulator, Topology, LinkProps, SimTime, Event};
//!
//! let mut sim: Simulator<&str> = Simulator::new(Topology::line(2, LinkProps::default()));
//! sim.send_message(0, 1, "hello", 128);
//! let (when, event) = sim.next_event().unwrap();
//! assert!(when > SimTime::ZERO);
//! assert!(matches!(event, Event::Message { dest: 1, .. }));
//! ```

pub mod fault;
pub mod sim;
pub mod topology;

pub use fault::{CrashWindow, FaultPlan, LinkFaults, Partition};
pub use sim::{Event, NodeTraffic, SimTime, Simulator};
pub use topology::{LinkProps, NodeIdx, Topology};
