//! End-to-end client example: connect to a `cologne-serve` server (or spin
//! one up in-process), ingest ACloud facts, solve with streamed events, and
//! print the incumbent trail plus the unified stats snapshot.
//!
//! With `COLOGNE_SERVE_ADDR` set, connects there (the CI smoke job starts
//! the binary first); otherwise binds an in-process server on a free port.

use cologne::datalog::{NodeId, Value};
use cologne::{SolveEvent, SolveRequest};
use cologne_serve::{demo_config, Client, ClientError, Server};

fn main() -> Result<(), ClientError> {
    let (addr, _server) = match std::env::var("COLOGNE_SERVE_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let server = Server::bind("127.0.0.1:0", demo_config()).expect("bind demo server");
            (server.local_addr().to_string(), Some(server))
        }
    };
    println!("connecting to {addr}");
    let mut client = Client::connect(addr.as_str())?;
    let session = client.hello("example-tenant")?;
    println!("session {session} open");

    let node = NodeId(0);
    for (vid, cpu, mem) in [(1, 40, 2), (2, 20, 2), (3, 10, 1)] {
        client.insert(
            node,
            "vm",
            vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)],
        )?;
    }
    for hid in [10, 11] {
        client.insert(
            node,
            "host",
            vec![Value::Int(hid), Value::Int(0), Value::Int(0)],
        )?;
        client.insert(node, "hostMemThres", vec![Value::Int(hid), Value::Int(8)])?;
    }

    let request = SolveRequest::all().with_events(256);
    let response = client.solve_streaming(&request, &mut |node, event| {
        if let SolveEvent::Incumbent { objective, .. } = &event {
            println!("on_incumbent node={node} objective={objective:?}");
        }
    })?;

    let report = response.single().expect("one node");
    println!(
        "solved: feasible={} objective={:?} proven_optimal={}",
        report.feasible, report.objective, report.proven_optimal
    );
    // The demo server solves with a bound mode on: the certified gap and
    // its certificate round-trip through the wire protocol.
    if let Some(cert) = &report.certificate {
        println!("certified: gap={:?} [{cert}]", report.stats.gap);
    }

    let stats = client.stats()?;
    println!("{stats}");
    client.bye()?;
    Ok(())
}
