//! Property tests for the `cologne-serve` wire codec.
//!
//! The decoder is total: *any* byte string — truncated, oversized, or
//! outright garbage — must produce a typed error, never a panic or an
//! unbounded allocation. Round-trips must be lossless for every message
//! the encoder can produce.

use proptest::prelude::*;

use cologne::datalog::{NodeId, SymId, Value, F64};
use cologne::{EventOptions, SolveEvent, SolveRequest};
use cologne_serve::{
    decode_client, decode_server, encode_client, encode_server, read_frame, write_frame, ClientMsg,
    FrameError, IngestOp, ServerMsg,
};

/// Deterministically map two sampled integers onto one `Value`, covering
/// every variant (floats canonicalized — the codec only ever sees
/// canonical bits, which `F64` construction already guarantees).
fn mk_value(tag: u8, payload: i64) -> Value {
    match tag % 6 {
        0 => Value::Int(payload),
        1 => Value::Float(F64(payload as f64 / 7.0)),
        2 => Value::Str(format!("s{payload}\u{00e9}")),
        3 => Value::Addr(NodeId(payload as u32)),
        4 => Value::Bool(payload & 1 == 1),
        _ => Value::Sym(SymId(payload as u32)),
    }
}

fn mk_tuple(cells: &[(u8, i64)]) -> Vec<Value> {
    cells.iter().map(|&(t, p)| mk_value(t, p)).collect()
}

fn mk_request(
    target_node: Option<u32>,
    parallel: bool,
    events: Option<(u64, Option<u64>)>,
) -> SolveRequest {
    let mut request = match target_node {
        Some(n) => SolveRequest::at(NodeId(n)),
        None => SolveRequest::all(),
    };
    request.parallel = parallel;
    request.events = events.map(|(capacity, cancel)| {
        let mut opts = EventOptions::buffered(capacity as usize);
        opts.cancel_after_incumbents = cancel;
        opts
    });
    request
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Ingest batches of arbitrary tuples round-trip exactly.
    #[test]
    fn ingest_round_trips(
        node in 0u32..1000,
        sync in prop::bool::ANY,
        ops in prop::collection::vec((prop::bool::ANY, prop::collection::vec((0u8..6, -1000i64..1000), 0..6)), 0..8),
    ) {
        let msg = ClientMsg::Ingest {
            node: NodeId(node),
            relation: "link".to_string(),
            ops: ops
                .iter()
                .map(|(insert, cells)| IngestOp {
                    insert: *insert,
                    tuple: mk_tuple(cells),
                })
                .collect(),
            sync,
        };
        let decoded = decode_client(&encode_client(&msg));
        prop_assert_eq!(decoded.as_ref().ok(), Some(&msg));
    }

    /// Every shape of solve request round-trips exactly.
    #[test]
    fn solve_requests_round_trip(
        target in 0u32..5,
        node in 0u32..100,
        parallel in prop::bool::ANY,
        has_events in prop::bool::ANY,
        capacity in 0u64..100_000,
        cancel in 0u64..10,
    ) {
        let request = mk_request(
            (target % 2 == 0).then_some(node),
            parallel,
            has_events.then_some((capacity, (cancel % 2 == 0).then_some(cancel))),
        );
        let msg = ClientMsg::Solve(request.clone());
        let decoded = decode_client(&encode_client(&msg));
        prop_assert_eq!(decoded.as_ref().ok(), Some(&msg));
        match decoded {
            Ok(ClientMsg::Solve(r)) => {
                prop_assert_eq!(r.target, request.target);
                prop_assert_eq!(r.parallel, request.parallel);
                prop_assert_eq!(r.events, request.events);
            }
            other => prop_assert!(false, "decoded to {other:?}"),
        }
    }

    /// Streamed event frames round-trip exactly.
    #[test]
    fn event_frames_round_trip(
        node in 0u32..100,
        kind in 0u8..5,
        a in -100_000i64..100_000,
        b in 0u64..1_000_000,
    ) {
        let event = match kind {
            0 => SolveEvent::Incumbent { objective: (a % 2 == 0).then_some(a) },
            1 => SolveEvent::Restart { restarts: b, next_budget: b * 2 },
            2 => SolveEvent::LnsIteration {
                iteration: b,
                improved: a % 2 == 0,
                best_objective: (a % 3 == 0).then_some(a),
            },
            3 => SolveEvent::NodeBudget { nodes: b, fails: b / 3 },
            _ => SolveEvent::Progress {
                nodes: b,
                fails: b / 2,
                solutions: b % 17,
                dual_bound: (a % 2 == 0).then_some(a),
                gap: (a % 3 == 0).then_some(a.unsigned_abs() as f64 / 100_000.0),
            },
        };
        let msg = ServerMsg::Event { node: NodeId(node), event };
        let decoded = decode_server(&encode_server(&msg));
        prop_assert_eq!(decoded.as_ref().ok(), Some(&msg));
    }

    /// A strict prefix of a valid message never decodes and never panics:
    /// the codec notices the truncation and reports a typed error.
    #[test]
    fn truncation_always_errors(
        node in 0u32..100,
        cells in prop::collection::vec((0u8..6, -50i64..50), 1..5),
        cut in 0usize..10_000,
    ) {
        let msg = ClientMsg::Ingest {
            node: NodeId(node),
            relation: "r".to_string(),
            ops: vec![IngestOp { insert: true, tuple: mk_tuple(&cells) }],
            sync: false,
        };
        let bytes = encode_client(&msg);
        let cut = cut % bytes.len();
        prop_assert!(
            decode_client(&bytes[..cut]).is_err(),
            "strict prefix of length {cut} decoded"
        );
    }

    /// Arbitrary garbage bytes never panic either decoder; they produce
    /// `Ok` (if they happen to spell a message) or a typed error.
    #[test]
    fn garbage_never_panics(raw in prop::collection::vec(0u32..256, 0..64)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_client(&bytes);
        let _ = decode_server(&bytes);
    }

    /// One flipped byte in a valid encoding never panics the decoder.
    #[test]
    fn bit_flips_never_panic(
        cells in prop::collection::vec((0u8..6, -50i64..50), 1..5),
        at in 0usize..10_000,
        flip in 1u8..255,
    ) {
        let msg = ClientMsg::Ingest {
            node: NodeId(7),
            relation: "lnk".to_string(),
            ops: vec![IngestOp { insert: false, tuple: mk_tuple(&cells) }],
            sync: true,
        };
        let mut bytes = encode_client(&msg);
        let at = at % bytes.len();
        bytes[at] ^= flip;
        let _ = decode_client(&bytes);
        let _ = decode_server(&bytes);
    }

    /// Frame transport round-trips arbitrary payloads and refuses
    /// oversized ones *before* allocating.
    #[test]
    fn frames_round_trip_and_cap(payload in prop::collection::vec(0u8..200, 0..300)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("vec write");
        let mut cursor = &buf[..];
        let read = read_frame(&mut cursor, 1 << 20).expect("well-formed frame");
        prop_assert_eq!(read.as_deref(), Some(&payload[..]));

        // same bytes under a tiny cap: typed Oversized, not an allocation
        if payload.len() > 4 {
            let mut cursor = &buf[..];
            match read_frame(&mut cursor, 4) {
                Err(FrameError::Oversized { len, max }) => {
                    prop_assert_eq!(len as usize, payload.len());
                    prop_assert_eq!(max, 4);
                }
                other => prop_assert!(false, "expected Oversized, got {other:?}"),
            }
        }
    }
}

#[test]
fn clean_eof_is_none() {
    let empty: &[u8] = &[];
    let mut cursor = empty;
    assert!(matches!(read_frame(&mut cursor, 1024), Ok(None)));
}

#[test]
fn eof_inside_length_prefix_is_io_error() {
    let partial: &[u8] = &[3, 0];
    let mut cursor = partial;
    assert!(matches!(
        read_frame(&mut cursor, 1024),
        Err(FrameError::Io(_))
    ));
}
