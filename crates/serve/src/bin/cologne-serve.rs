//! The `cologne-serve` server binary: serves the stock ACloud demo program
//! (or a Colog program from a file) to many concurrent tenants.
//!
//! ```text
//! cologne-serve [--addr HOST:PORT] [--program FILE] [--max-sessions N] [--workers N]
//! ```
//!
//! `COLOGNE_SERVE_ADDR` is the fallback for `--addr` (default
//! `127.0.0.1:7171`). Prints `listening on <addr>` once ready and serves
//! until killed.

use std::process::ExitCode;

use cologne_serve::{demo_config, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cologne-serve [--addr HOST:PORT] [--program FILE] \
         [--max-sessions N] [--workers N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr =
        std::env::var("COLOGNE_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7171".to_string());
    let mut cfg: ServerConfig = demo_config();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--program" => {
                let path = value("--program");
                match std::fs::read_to_string(&path) {
                    Ok(src) => {
                        let params = cfg.params.clone();
                        cfg = ServerConfig::new(&src);
                        cfg.params = params;
                    }
                    Err(e) => {
                        eprintln!("cologne-serve: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-sessions" => cfg.max_sessions = parse(&value("--max-sessions")),
            "--workers" => cfg.workers = parse(&value("--workers")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let server = match Server::bind(addr.as_str(), cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cologne-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    loop {
        std::thread::park();
    }
}

fn usage_missing(name: &str) -> ! {
    eprintln!("cologne-serve: {name} needs a value");
    std::process::exit(2);
}

fn parse(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cologne-serve: not a number: {s}");
        std::process::exit(2);
    })
}
