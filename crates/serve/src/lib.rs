//! # cologne-serve
//!
//! The serving layer: a multi-tenant TCP server and client library on top
//! of the [`cologne::Deployment`] API, speaking a length-prefixed binary
//! protocol (see `docs/PROTOCOL.md` at the repository root).
//!
//! The same typed [`cologne::SolveRequest`] → [`cologne::SolveResponse`]
//! pair drives solves in-process and over the wire; for deterministic
//! (node-limit-bounded) searches a remote solve returns a response
//! byte-identical — elapsed-normalized — to the in-process one.
//!
//! ```no_run
//! use cologne_serve::{Client, Server, ServerConfig, ACLOUD_DEMO};
//! use cologne::SolveRequest;
//! use cologne::datalog::{NodeId, Value};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::new(ACLOUD_DEMO)).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.hello("tenant-a").unwrap();
//! client.insert(NodeId(0), "vm", vec![Value::Int(1), Value::Int(40), Value::Int(2)]).unwrap();
//! // ... more facts ...
//! let response = client.solve(&SolveRequest::all().with_events(256)).unwrap();
//! println!("objective: {:?}", response.single().unwrap().objective);
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{ServeError, Server, ServerConfig, ServerStats};
pub use wire::{
    assemble_response, decode_client, decode_server, encode_client, encode_server, read_frame,
    write_frame, ClientMsg, ErrorCode, FrameError, IngestOp, ServerMsg, TenantBudget, WireError,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

/// The ACloud load-balancing policy of the paper's Sec. 4.2 — the stock
/// demo program used by the server binary, the client example and the
/// serving benchmarks. Tenants ingest `vm(Vid,Cpu,Mem)`,
/// `host(Hid,Cpu,Mem)` and `hostMemThres(Hid,M)` facts and solve for a
/// stdev-minimizing `assign(Vid,Hid,V)` placement.
pub const ACLOUD_DEMO: &str = r#"
    goal minimize C in hostStdevCpu(C).
    var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
    r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
    d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
    d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
    d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
    c1 assignCount(Vid,V) -> V==1.
    d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
    c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
"#;

/// [`ServerConfig`] for [`ACLOUD_DEMO`] with the boolean `assign` domain
/// it needs — the one-liner used by the binary, example and benches.
pub fn demo_config() -> ServerConfig {
    let mut cfg = ServerConfig::new(ACLOUD_DEMO);
    // Bounds on: demo reports carry a certified optimality gap over the
    // wire (no gap limit, so search behavior is unchanged).
    cfg.params = cologne::ProgramParams::new()
        .with_var_domain("assign", cologne::VarDomain::BOOL)
        .with_solver_bound_mode(cologne::SolverBoundMode::Auto);
    cfg
}
