//! The client library: a blocking, synchronous connection to a
//! `cologne-serve` server speaking the frame protocol of [`crate::wire`].
//!
//! [`Client::solve`] reassembles streamed [`ServerMsg::Event`] frames plus
//! the final [`ServerMsg::SolveOk`] into the same [`SolveResponse`] an
//! in-process [`cologne::Deployment::solve`] returns — including the
//! event-buffer capacity semantics, so (elapsed-normalized) the two are
//! byte-identical for deterministic solves.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cologne::datalog::{NodeId, Value};
use cologne::{EventOptions, SolveEvent, SolveRequest, SolveResponse, StatsSnapshot};

use crate::wire::{
    assemble_response, decode_server, encode_client, read_frame, write_frame, ClientMsg, ErrorCode,
    FrameError, IngestOp, ServerMsg, WireError, DEFAULT_MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent bytes this client cannot decode.
    Wire(WireError),
    /// A frame violated transport limits (e.g. oversized).
    Frame(String),
    /// The server answered with a typed error frame.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with an unexpected (but well-formed) message.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Frame(m) => write!(f, "frame: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Oversized { len, max } => {
                ClientError::Frame(format!("frame payload {len} bytes exceeds cap {max}"))
            }
        }
    }
}

/// One session against a `cologne-serve` server. All calls are blocking
/// request/response; [`Client::solve`] additionally consumes the event
/// stream the server interleaves before the final answer.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: u32,
}

impl Client {
    /// Connect (with `TCP_NODELAY`, the protocol is latency-bound).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &encode_client(msg))?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerMsg, ClientError> {
        let payload = read_frame(&mut self.reader, self.max_frame)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Ok(decode_server(&payload)?)
    }

    /// Convert a non-streaming reply: error frames become
    /// [`ClientError::Server`], anything else is passed to `f`.
    fn expect<T>(
        &mut self,
        f: impl FnOnce(ServerMsg) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        match self.recv()? {
            ServerMsg::Error { code, message } => Err(ClientError::Server { code, message }),
            msg => f(msg),
        }
    }

    /// Open the session; returns the server-assigned session id.
    pub fn hello(&mut self, tenant: &str) -> Result<u64, ClientError> {
        self.send(&ClientMsg::Hello {
            tenant: tenant.to_string(),
        })?;
        self.expect(|msg| match msg {
            ServerMsg::HelloOk { session } => Ok(session),
            other => Err(unexpected("HelloOk", &other)),
        })
    }

    /// Apply a batch of inserts/deletes against one relation of one node
    /// through the server's schema-checked handle path. Returns the number
    /// of operations applied; a schema violation surfaces as
    /// [`ClientError::Server`] with the offending-op detail (operations
    /// before it stay applied — batches are not transactional). With
    /// `sync`, the node's rules run to fixpoint afterwards.
    pub fn ingest(
        &mut self,
        node: NodeId,
        relation: &str,
        ops: Vec<IngestOp>,
        sync: bool,
    ) -> Result<u32, ClientError> {
        self.send(&ClientMsg::Ingest {
            node,
            relation: relation.to_string(),
            ops,
            sync,
        })?;
        self.expect(|msg| match msg {
            ServerMsg::IngestOk { applied } => Ok(applied),
            other => Err(unexpected("IngestOk", &other)),
        })
    }

    /// Insert one tuple (see [`Client::ingest`] for batches).
    pub fn insert(
        &mut self,
        node: NodeId,
        relation: &str,
        tuple: Vec<Value>,
    ) -> Result<(), ClientError> {
        self.ingest(node, relation, vec![IngestOp::insert(tuple)], false)?;
        Ok(())
    }

    /// Delete one tuple (see [`Client::ingest`] for batches).
    pub fn delete(
        &mut self,
        node: NodeId,
        relation: &str,
        tuple: Vec<Value>,
    ) -> Result<(), ClientError> {
        self.ingest(node, relation, vec![IngestOp::delete(tuple)], false)?;
        Ok(())
    }

    /// Set (or clear) the session's default event options, applied to any
    /// subsequent [`Client::solve`] whose request doesn't set its own.
    pub fn subscribe(&mut self, options: Option<EventOptions>) -> Result<(), ClientError> {
        self.send(&ClientMsg::Subscribe(options))?;
        self.expect(|msg| match msg {
            ServerMsg::SubscribeOk => Ok(()),
            other => Err(unexpected("SubscribeOk", &other)),
        })
    }

    /// Execute one solve, buffering streamed events into the response —
    /// the remote mirror of [`cologne::Deployment::solve`].
    pub fn solve(&mut self, request: &SolveRequest) -> Result<SolveResponse, ClientError> {
        let capacity = request.events.as_ref().map(|e| e.capacity);
        self.solve_inner(request, capacity, &mut |_, _| {})
    }

    /// Execute one solve, handing each streamed event to `on_event` as it
    /// arrives instead of buffering — the remote mirror of
    /// [`cologne::Deployment::solve_streaming`]. The returned response has
    /// an empty event buffer.
    pub fn solve_streaming(
        &mut self,
        request: &SolveRequest,
        on_event: &mut dyn FnMut(NodeId, SolveEvent),
    ) -> Result<SolveResponse, ClientError> {
        self.solve_inner(request, Some(0), on_event)
    }

    /// `keep`: how many streamed events to retain in the response buffer
    /// (`None` = all). Retaining fewer than the server streams counts the
    /// surplus as dropped, mirroring the in-process buffer-capacity
    /// semantics so the two paths return identical responses.
    fn solve_inner(
        &mut self,
        request: &SolveRequest,
        keep: Option<usize>,
        on_event: &mut dyn FnMut(NodeId, SolveEvent),
    ) -> Result<SolveResponse, ClientError> {
        self.send(&ClientMsg::Solve(request.clone()))?;
        let mut events: Vec<(NodeId, SolveEvent)> = Vec::new();
        let mut overflow = 0u64;
        loop {
            match self.recv()? {
                ServerMsg::Event { node, event } => {
                    on_event(node, event.clone());
                    if keep.map_or(true, |k| events.len() < k) {
                        events.push((node, event));
                    } else {
                        overflow += 1;
                    }
                }
                ServerMsg::SolveOk {
                    reports,
                    dropped_events,
                } => {
                    return Ok(assemble_response(
                        reports,
                        events,
                        dropped_events + overflow,
                    ));
                }
                ServerMsg::Error { code, message } => {
                    return Err(ClientError::Server { code, message });
                }
                other => return Err(unexpected("Event|SolveOk", &other)),
            }
        }
    }

    /// Fetch the session's unified statistics snapshot
    /// ([`cologne::Deployment::stats`] over the wire).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&ClientMsg::Stats)?;
        self.expect(|msg| match msg {
            ServerMsg::StatsOk(snapshot) => Ok(snapshot),
            other => Err(unexpected("StatsOk", &other)),
        })
    }

    /// Advance the session's simulated clock by `micros`, delivering
    /// in-flight network messages; returns how many were handled.
    pub fn tick(&mut self, micros: u64) -> Result<u64, ClientError> {
        self.send(&ClientMsg::Tick { micros })?;
        self.expect(|msg| match msg {
            ServerMsg::TickOk { handled } => Ok(handled),
            other => Err(unexpected("TickOk", &other)),
        })
    }

    /// Close the session gracefully.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.send(&ClientMsg::Bye)?;
        self.expect(|msg| match msg {
            ServerMsg::ByeOk => Ok(()),
            other => Err(unexpected("ByeOk", &other)),
        })
    }
}

fn unexpected(wanted: &str, got: &ServerMsg) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
