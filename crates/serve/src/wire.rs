//! The `cologne-serve` wire protocol: length-prefixed binary frames.
//!
//! See `docs/PROTOCOL.md` for the normative spec. In short:
//!
//! ```text
//! frame   := u32-LE payload-length | payload
//! payload := version-byte (1) | opcode-byte | body
//! ```
//!
//! Client→server opcodes live in `0x01..=0x7F` ([`ClientMsg`]),
//! server→client opcodes in `0x80..=0xFF` ([`ServerMsg`]). Bodies are built
//! from little-endian integers, length-prefixed UTF-8 strings, `u8` option
//! flags and the [`cologne_datalog::serde`] value encoding. Decoding is
//! **total**: any byte sequence either decodes or returns a typed
//! [`WireError`] — never a panic, and never an allocation proportional to a
//! corrupt length field (collection counts are checked against the remaining
//! input first).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::num::NonZeroU64;
use std::time::Duration;

use cologne::datalog::serde::{decode_tuple, encode_tuple, DecodeError};
use cologne::datalog::{EngineStats, NodeId, RemoteTuple, Tuple};
use cologne::solver::SearchStats;
use cologne::{
    BoundCertificate, CologneError, DeliveryStats, EventOptions, NodeStats, PipelineStats,
    SolveEvent, SolveReport, SolveRequest, SolveResponse, SolveTarget, StatsSnapshot,
};

/// Protocol version carried in every payload's first byte.
///
/// Version 2 added the dual-bound fields: `dual_bound`/`gap` on search
/// stats and `Progress` events, and the optional `BoundCertificate` on
/// solve reports.
pub const PROTOCOL_VERSION: u8 = 2;

/// Default cap on a frame's payload length (16 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Typed error codes carried by [`ServerMsg::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame body failed to decode.
    Malformed = 1,
    /// The payload's version byte is not [`PROTOCOL_VERSION`].
    VersionMismatch = 2,
    /// The opcode byte names no known message.
    UnknownOpcode = 3,
    /// The frame's declared length exceeds the server's cap.
    Oversized = 4,
    /// An ingest named a relation the tenant's program never mentions.
    UnknownRelation = 5,
    /// A tuple failed the relation's schema check.
    SchemaMismatch = 6,
    /// A request carried an invalid configuration (e.g. parallel + events).
    InvalidConfig = 7,
    /// The solve queue is full; retry later.
    Overloaded = 8,
    /// The server is at its session limit; the connection is being closed.
    Busy = 9,
    /// Any other server-side failure.
    Internal = 10,
}

impl ErrorCode {
    /// Decode an error-code byte.
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::VersionMismatch,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::Oversized,
            5 => ErrorCode::UnknownRelation,
            6 => ErrorCode::SchemaMismatch,
            7 => ErrorCode::InvalidConfig,
            8 => ErrorCode::Overloaded,
            9 => ErrorCode::Busy,
            10 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The code a [`CologneError`] surfaces as on the wire.
    pub fn of_error(err: &CologneError) -> ErrorCode {
        match err {
            CologneError::UnknownRelation { .. } => ErrorCode::UnknownRelation,
            CologneError::SchemaMismatch { .. } => ErrorCode::SchemaMismatch,
            CologneError::InvalidConfig(_) => ErrorCode::InvalidConfig,
            _ => ErrorCode::Internal,
        }
    }
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// Bytes remained after the message body.
    TrailingBytes(usize),
    /// The version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The opcode names no known message (for the decoded direction).
    BadOpcode(u8),
    /// An enum tag byte is out of range.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A value payload failed to decode.
    Value(DecodeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated mid-message"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v}, expected {PROTOCOL_VERSION}")
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::Value(e) => write!(f, "value: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Value(e)
    }
}

impl WireError {
    /// The error code a decode failure surfaces as on the wire.
    pub fn code(&self) -> ErrorCode {
        match self {
            WireError::BadVersion(_) => ErrorCode::VersionMismatch,
            WireError::BadOpcode(_) => ErrorCode::UnknownOpcode,
            _ => ErrorCode::Malformed,
        }
    }
}

/// One ingest operation: insert or delete one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOp {
    /// True for insertion, false for deletion.
    pub insert: bool,
    /// The tuple.
    pub tuple: Tuple,
}

impl IngestOp {
    /// An insertion.
    pub fn insert(tuple: Tuple) -> IngestOp {
        IngestOp {
            insert: true,
            tuple,
        }
    }

    /// A deletion.
    pub fn delete(tuple: Tuple) -> IngestOp {
        IngestOp {
            insert: false,
            tuple,
        }
    }
}

/// Client→server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Open the session (first message; names the tenant for logs/quotas).
    Hello {
        /// Tenant identifier (free-form, for accounting).
        tenant: String,
    },
    /// A batch of schema-validated inserts/deletes on one relation of one
    /// node, optionally followed by a rule sync (run rules, ship remote
    /// tuples).
    Ingest {
        /// Target node.
        node: NodeId,
        /// Relation name.
        relation: String,
        /// The operations, applied in order.
        ops: Vec<IngestOp>,
        /// Run the node's rules and ship after applying the batch.
        sync: bool,
    },
    /// Execute one solve; the server streams [`ServerMsg::Event`] frames
    /// (when events were requested) followed by one [`ServerMsg::SolveOk`].
    Solve(SolveRequest),
    /// Set the session's default event options, applied to subsequent
    /// [`ClientMsg::Solve`] requests that carry no options of their own
    /// (`None` unsubscribes).
    Subscribe(Option<EventOptions>),
    /// Request a [`ServerMsg::StatsOk`] snapshot of the tenant's deployment.
    Stats,
    /// Advance the tenant's simulated network by `micros` microseconds,
    /// delivering in-flight messages.
    Tick {
        /// Microseconds to advance.
        micros: u64,
    },
    /// Close the session cleanly.
    Bye,
}

/// Server→client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The session is open.
    HelloOk {
        /// Server-assigned session id.
        session: u64,
    },
    /// An ingest batch was applied.
    IngestOk {
        /// Number of operations applied.
        applied: u32,
    },
    /// One streamed solve event.
    Event {
        /// The node whose search emitted the event.
        node: NodeId,
        /// The event.
        event: SolveEvent,
    },
    /// A solve finished; terminates the event stream of that solve.
    SolveOk {
        /// Per-node reports in ascending node order.
        reports: Vec<(NodeId, SolveReport)>,
        /// Events dropped server-side (bounded queue overflow).
        dropped_events: u64,
    },
    /// The stats snapshot.
    StatsOk(StatsSnapshot),
    /// A tick finished.
    TickOk {
        /// Number of simulation events processed.
        handled: u64,
    },
    /// The subscription defaults were updated.
    SubscribeOk,
    /// A typed failure; the session stays open except for
    /// [`ErrorCode::Busy`], [`ErrorCode::Oversized`] and
    /// [`ErrorCode::VersionMismatch`], after which the server closes.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Clean session close.
    ByeOk,
}

// ---------------------------------------------------------------------------
// frame IO
// ---------------------------------------------------------------------------

/// Why a frame could not be read off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(io::Error),
    /// The declared payload length exceeds the reader's cap. The payload has
    /// NOT been consumed; the connection must be closed.
    Oversized {
        /// Declared length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload {len} bytes exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame's payload. Returns `Ok(None)` on a clean EOF before the
/// length prefix (the peer closed between frames).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(FrameError::Oversized {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// encoding primitives
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    fn opt_i64(&mut self) -> Result<Option<i64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f64::from_bits(self.u64()?))),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    fn str_(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| WireError::Value(DecodeError::BadUtf8))
    }

    /// A collection count, sanity-checked against the remaining input (every
    /// element takes at least one byte) so corrupt counts cannot force a
    /// huge allocation.
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn tuple(&mut self) -> Result<Tuple, WireError> {
        Ok(decode_tuple(self.buf, &mut self.pos)?)
    }

    fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

// ---------------------------------------------------------------------------
// domain-type encodings
// ---------------------------------------------------------------------------

fn put_opt_i64(out: &mut Vec<u8>, v: Option<i64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Floats travel as their IEEE-754 bit pattern so the round trip is exact.
fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

fn put_certificate(out: &mut Vec<u8>, cert: &Option<BoundCertificate>) {
    match cert {
        None => out.push(0),
        Some(cert) => {
            out.push(1);
            put_str(out, &cert.engine);
            out.extend_from_slice(&cert.dual_bound.to_le_bytes());
            put_u32(out, cert.binding.len() as u32);
            for name in &cert.binding {
                put_str(out, name);
            }
        }
    }
}

fn put_event(out: &mut Vec<u8>, event: &SolveEvent) {
    match event {
        SolveEvent::Incumbent { objective } => {
            out.push(0);
            put_opt_i64(out, *objective);
        }
        SolveEvent::Restart {
            restarts,
            next_budget,
        } => {
            out.push(1);
            put_u64(out, *restarts);
            put_u64(out, *next_budget);
        }
        SolveEvent::LnsIteration {
            iteration,
            improved,
            best_objective,
        } => {
            out.push(2);
            put_u64(out, *iteration);
            put_bool(out, *improved);
            put_opt_i64(out, *best_objective);
        }
        SolveEvent::NodeBudget { nodes, fails } => {
            out.push(3);
            put_u64(out, *nodes);
            put_u64(out, *fails);
        }
        SolveEvent::Progress {
            nodes,
            fails,
            solutions,
            dual_bound,
            gap,
        } => {
            out.push(4);
            put_u64(out, *nodes);
            put_u64(out, *fails);
            put_u64(out, *solutions);
            put_opt_i64(out, *dual_bound);
            put_opt_f64(out, *gap);
        }
    }
}

fn dec_event(d: &mut Dec) -> Result<SolveEvent, WireError> {
    Ok(match d.u8()? {
        0 => SolveEvent::Incumbent {
            objective: d.opt_i64()?,
        },
        1 => SolveEvent::Restart {
            restarts: d.u64()?,
            next_budget: d.u64()?,
        },
        2 => SolveEvent::LnsIteration {
            iteration: d.u64()?,
            improved: d.bool()?,
            best_objective: d.opt_i64()?,
        },
        3 => SolveEvent::NodeBudget {
            nodes: d.u64()?,
            fails: d.u64()?,
        },
        4 => SolveEvent::Progress {
            nodes: d.u64()?,
            fails: d.u64()?,
            solutions: d.u64()?,
            dual_bound: d.opt_i64()?,
            gap: d.opt_f64()?,
        },
        tag => return Err(WireError::BadTag { what: "event", tag }),
    })
}

fn put_search_stats(out: &mut Vec<u8>, s: &SearchStats) {
    put_u64(out, s.nodes);
    put_u64(out, s.fails);
    put_u64(out, s.propagations);
    put_u64(out, s.prunings);
    put_u64(out, s.solutions);
    put_u64(out, s.max_depth);
    put_u64(out, s.lns_iterations);
    put_u64(out, s.lns_improvements);
    put_u64(out, s.elapsed_micros);
    put_bool(out, s.limit_reached);
    put_bool(out, s.cancelled);
    put_bool(out, s.warm_start);
    put_u64(out, s.parallel_workers);
    put_u64(out, s.subtrees);
    put_u64(out, s.portfolio_rounds);
    put_opt_i64(out, s.dual_bound);
    put_opt_f64(out, s.gap);
}

fn dec_search_stats(d: &mut Dec) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        nodes: d.u64()?,
        fails: d.u64()?,
        propagations: d.u64()?,
        prunings: d.u64()?,
        solutions: d.u64()?,
        max_depth: d.u64()?,
        lns_iterations: d.u64()?,
        lns_improvements: d.u64()?,
        elapsed_micros: d.u64()?,
        limit_reached: d.bool()?,
        cancelled: d.bool()?,
        warm_start: d.bool()?,
        parallel_workers: d.u64()?,
        subtrees: d.u64()?,
        portfolio_rounds: d.u64()?,
        dual_bound: d.opt_i64()?,
        gap: d.opt_f64()?,
    })
}

fn dec_certificate(d: &mut Dec) -> Result<Option<BoundCertificate>, WireError> {
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let engine = d.str_()?;
            let dual_bound = d.i64()?;
            let mut binding = Vec::new();
            for _ in 0..d.count()? {
                binding.push(d.str_()?);
            }
            Ok(Some(BoundCertificate {
                engine,
                dual_bound,
                binding,
            }))
        }
        tag => Err(WireError::BadTag {
            what: "option",
            tag,
        }),
    }
}

fn put_report(out: &mut Vec<u8>, r: &SolveReport) {
    put_bool(out, r.feasible);
    put_bool(out, r.trivial);
    put_opt_i64(out, r.objective);
    put_bool(out, r.proven_optimal);
    put_search_stats(out, &r.stats);
    put_certificate(out, &r.certificate);
    put_u32(out, r.assignments.len() as u32);
    for (name, rows) in &r.assignments {
        put_str(out, name);
        put_u32(out, rows.len() as u32);
        for row in rows {
            encode_tuple(row, out);
        }
    }
    put_u32(out, r.outgoing.len() as u32);
    for remote in &r.outgoing {
        put_u32(out, remote.dest.0);
        put_str(out, &remote.relation);
        encode_tuple(&remote.tuple, out);
        put_bool(out, remote.insert);
    }
}

fn dec_report(d: &mut Dec) -> Result<SolveReport, WireError> {
    let feasible = d.bool()?;
    let trivial = d.bool()?;
    let objective = d.opt_i64()?;
    let proven_optimal = d.bool()?;
    let stats = dec_search_stats(d)?;
    let certificate = dec_certificate(d)?;
    let mut assignments = BTreeMap::new();
    for _ in 0..d.count()? {
        let name = d.str_()?;
        let mut rows = Vec::new();
        for _ in 0..d.count()? {
            rows.push(d.tuple()?);
        }
        assignments.insert(name, rows);
    }
    let mut outgoing = Vec::new();
    for _ in 0..d.count()? {
        outgoing.push(RemoteTuple {
            dest: NodeId(d.u32()?),
            relation: d.str_()?,
            tuple: d.tuple()?,
            insert: d.bool()?,
        });
    }
    Ok(SolveReport {
        feasible,
        trivial,
        objective,
        proven_optimal,
        stats,
        certificate,
        assignments,
        outgoing,
    })
}

fn put_request(out: &mut Vec<u8>, r: &SolveRequest) {
    match r.target {
        SolveTarget::All => out.push(0),
        SolveTarget::Node(n) => {
            out.push(1);
            put_u32(out, n.0);
        }
    }
    put_bool(out, r.parallel);
    match &r.events {
        None => out.push(0),
        Some(opts) => {
            out.push(1);
            put_u64(out, opts.capacity as u64);
            put_opt_u64(out, opts.cancel_after_incumbents);
        }
    }
}

fn dec_request(d: &mut Dec) -> Result<SolveRequest, WireError> {
    let target = match d.u8()? {
        0 => SolveTarget::All,
        1 => SolveTarget::Node(NodeId(d.u32()?)),
        tag => {
            return Err(WireError::BadTag {
                what: "solve target",
                tag,
            })
        }
    };
    let parallel = d.bool()?;
    let events = match d.u8()? {
        0 => None,
        1 => Some(EventOptions {
            capacity: d.u64()?.min(usize::MAX as u64) as usize,
            cancel_after_incumbents: d.opt_u64()?,
        }),
        tag => {
            return Err(WireError::BadTag {
                what: "option",
                tag,
            })
        }
    };
    Ok(SolveRequest {
        target,
        parallel,
        events,
    })
}

fn put_opt_events(out: &mut Vec<u8>, opts: &Option<EventOptions>) {
    match opts {
        None => out.push(0),
        Some(opts) => {
            out.push(1);
            put_u64(out, opts.capacity as u64);
            put_opt_u64(out, opts.cancel_after_incumbents);
        }
    }
}

fn dec_opt_events(d: &mut Dec) -> Result<Option<EventOptions>, WireError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(EventOptions {
            capacity: d.u64()?.min(usize::MAX as u64) as usize,
            cancel_after_incumbents: d.opt_u64()?,
        })),
        tag => Err(WireError::BadTag {
            what: "option",
            tag,
        }),
    }
}

fn put_snapshot(out: &mut Vec<u8>, s: &StatsSnapshot) {
    put_u32(out, s.nodes.len() as u32);
    for row in &s.nodes {
        put_u32(out, row.node.0);
        put_u64(out, row.solver_invocations);
        put_u64(out, row.pipeline.plan_builds);
        put_u64(out, row.pipeline.full_rebuilds);
        put_u64(out, row.pipeline.incremental_builds);
        put_u64(out, row.engine.external_deltas);
        put_u64(out, row.engine.derivations);
        put_u64(out, row.engine.updates);
        put_u64(out, row.engine.remote_sends);
        put_u64(out, row.engine.aggregate_recomputes);
        put_u64(out, row.engine.unknown_relation_inserts);
        put_search_stats(out, &row.search_total);
        match &row.last_search {
            None => out.push(0),
            Some(last) => {
                out.push(1);
                put_search_stats(out, last);
            }
        }
    }
    put_u64(out, s.delivery.data_packets_sent);
    put_u64(out, s.delivery.retransmits);
    put_u64(out, s.delivery.acks_sent);
    put_u64(out, s.delivery.duplicates_dropped);
    put_u64(out, s.delivery.stale_epoch_dropped);
    put_u64(out, s.delivery.out_of_order_buffered);
    put_u64(out, s.delivery.crashes);
    put_u64(out, s.delivery.rejoins);
    put_u64(out, s.delivery.resync_tuples);
    put_u64(out, s.rejected_remote_tuples);
}

fn dec_snapshot(d: &mut Dec) -> Result<StatsSnapshot, WireError> {
    let mut nodes = Vec::new();
    for _ in 0..d.count()? {
        let node = NodeId(d.u32()?);
        let solver_invocations = d.u64()?;
        let pipeline = PipelineStats {
            plan_builds: d.u64()?,
            full_rebuilds: d.u64()?,
            incremental_builds: d.u64()?,
        };
        let engine = EngineStats {
            external_deltas: d.u64()?,
            derivations: d.u64()?,
            updates: d.u64()?,
            remote_sends: d.u64()?,
            aggregate_recomputes: d.u64()?,
            unknown_relation_inserts: d.u64()?,
        };
        let search_total = dec_search_stats(d)?;
        let last_search = match d.u8()? {
            0 => None,
            1 => Some(dec_search_stats(d)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "option",
                    tag,
                })
            }
        };
        nodes.push(NodeStats {
            node,
            solver_invocations,
            pipeline,
            engine,
            search_total,
            last_search,
        });
    }
    let delivery = DeliveryStats {
        data_packets_sent: d.u64()?,
        retransmits: d.u64()?,
        acks_sent: d.u64()?,
        duplicates_dropped: d.u64()?,
        stale_epoch_dropped: d.u64()?,
        out_of_order_buffered: d.u64()?,
        crashes: d.u64()?,
        rejoins: d.u64()?,
        resync_tuples: d.u64()?,
    };
    let rejected_remote_tuples = d.u64()?;
    Ok(StatsSnapshot {
        nodes,
        delivery,
        rejected_remote_tuples,
    })
}

// ---------------------------------------------------------------------------
// message encode/decode
// ---------------------------------------------------------------------------

fn header(opcode: u8) -> Vec<u8> {
    vec![PROTOCOL_VERSION, opcode]
}

/// Encode one client message into a frame payload.
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    match msg {
        ClientMsg::Hello { tenant } => {
            let mut out = header(0x01);
            put_str(&mut out, tenant);
            out
        }
        ClientMsg::Ingest {
            node,
            relation,
            ops,
            sync,
        } => {
            let mut out = header(0x02);
            put_u32(&mut out, node.0);
            put_str(&mut out, relation);
            put_u32(&mut out, ops.len() as u32);
            for op in ops {
                put_bool(&mut out, op.insert);
                encode_tuple(&op.tuple, &mut out);
            }
            put_bool(&mut out, *sync);
            out
        }
        ClientMsg::Solve(request) => {
            let mut out = header(0x03);
            put_request(&mut out, request);
            out
        }
        ClientMsg::Subscribe(opts) => {
            let mut out = header(0x04);
            put_opt_events(&mut out, opts);
            out
        }
        ClientMsg::Stats => header(0x05),
        ClientMsg::Tick { micros } => {
            let mut out = header(0x06);
            put_u64(&mut out, *micros);
            out
        }
        ClientMsg::Bye => header(0x07),
    }
}

fn check_version(d: &mut Dec) -> Result<(), WireError> {
    match d.u8()? {
        PROTOCOL_VERSION => Ok(()),
        v => Err(WireError::BadVersion(v)),
    }
}

/// Decode one client-message payload.
pub fn decode_client(payload: &[u8]) -> Result<ClientMsg, WireError> {
    let mut d = Dec::new(payload);
    check_version(&mut d)?;
    let opcode = d.u8()?;
    let msg = match opcode {
        0x01 => ClientMsg::Hello { tenant: d.str_()? },
        0x02 => {
            let node = NodeId(d.u32()?);
            let relation = d.str_()?;
            let mut ops = Vec::new();
            for _ in 0..d.count()? {
                ops.push(IngestOp {
                    insert: d.bool()?,
                    tuple: d.tuple()?,
                });
            }
            let sync = d.bool()?;
            ClientMsg::Ingest {
                node,
                relation,
                ops,
                sync,
            }
        }
        0x03 => ClientMsg::Solve(dec_request(&mut d)?),
        0x04 => ClientMsg::Subscribe(dec_opt_events(&mut d)?),
        0x05 => ClientMsg::Stats,
        0x06 => ClientMsg::Tick { micros: d.u64()? },
        0x07 => ClientMsg::Bye,
        op => return Err(WireError::BadOpcode(op)),
    };
    d.finish()?;
    Ok(msg)
}

/// Encode one server message into a frame payload.
pub fn encode_server(msg: &ServerMsg) -> Vec<u8> {
    match msg {
        ServerMsg::HelloOk { session } => {
            let mut out = header(0x81);
            put_u64(&mut out, *session);
            out
        }
        ServerMsg::IngestOk { applied } => {
            let mut out = header(0x82);
            put_u32(&mut out, *applied);
            out
        }
        ServerMsg::Event { node, event } => {
            let mut out = header(0x83);
            put_u32(&mut out, node.0);
            put_event(&mut out, event);
            out
        }
        ServerMsg::SolveOk {
            reports,
            dropped_events,
        } => {
            let mut out = header(0x84);
            put_u32(&mut out, reports.len() as u32);
            for (node, report) in reports {
                put_u32(&mut out, node.0);
                put_report(&mut out, report);
            }
            put_u64(&mut out, *dropped_events);
            out
        }
        ServerMsg::StatsOk(snapshot) => {
            let mut out = header(0x85);
            put_snapshot(&mut out, snapshot);
            out
        }
        ServerMsg::TickOk { handled } => {
            let mut out = header(0x86);
            put_u64(&mut out, *handled);
            out
        }
        ServerMsg::SubscribeOk => header(0x89),
        ServerMsg::Error { code, message } => {
            let mut out = header(0x87);
            out.push(*code as u8);
            put_str(&mut out, message);
            out
        }
        ServerMsg::ByeOk => header(0x88),
    }
}

/// Decode one server-message payload.
pub fn decode_server(payload: &[u8]) -> Result<ServerMsg, WireError> {
    let mut d = Dec::new(payload);
    check_version(&mut d)?;
    let opcode = d.u8()?;
    let msg = match opcode {
        0x81 => ServerMsg::HelloOk { session: d.u64()? },
        0x82 => ServerMsg::IngestOk { applied: d.u32()? },
        0x83 => ServerMsg::Event {
            node: NodeId(d.u32()?),
            event: dec_event(&mut d)?,
        },
        0x84 => {
            let mut reports = Vec::new();
            for _ in 0..d.count()? {
                let node = NodeId(d.u32()?);
                reports.push((node, dec_report(&mut d)?));
            }
            let dropped_events = d.u64()?;
            ServerMsg::SolveOk {
                reports,
                dropped_events,
            }
        }
        0x85 => ServerMsg::StatsOk(dec_snapshot(&mut d)?),
        0x86 => ServerMsg::TickOk { handled: d.u64()? },
        0x89 => ServerMsg::SubscribeOk,
        0x87 => {
            let code_byte = d.u8()?;
            let code = ErrorCode::from_u8(code_byte).ok_or(WireError::BadTag {
                what: "error code",
                tag: code_byte,
            })?;
            ServerMsg::Error {
                code,
                message: d.str_()?,
            }
        }
        0x88 => ServerMsg::ByeOk,
        op => return Err(WireError::BadOpcode(op)),
    };
    d.finish()?;
    Ok(msg)
}

/// Reassemble a [`SolveResponse`] from the streamed events and the final
/// [`ServerMsg::SolveOk`] parts — the client-side inverse of the server's
/// streaming, chosen so a remote solve returns a response equal to the same
/// request run in-process with [`cologne::Deployment::solve`].
pub fn assemble_response(
    reports: Vec<(NodeId, SolveReport)>,
    events: Vec<(NodeId, SolveEvent)>,
    dropped_events: u64,
) -> SolveResponse {
    SolveResponse {
        reports: reports.into_iter().collect(),
        events,
        dropped_events,
    }
}

/// Per-tenant resource caps enforced by the server (also carried in
/// `ServerConfig`); here so both halves of the protocol documentation can
/// reference one definition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantBudget {
    /// Cap on search nodes per COP execution (`None` = no cap).
    pub max_nodes: Option<NonZeroU64>,
    /// Cap on wall-clock time per COP execution (`None` = no cap).
    pub max_solve_time: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne::datalog::Value;

    fn sample_report() -> SolveReport {
        let stats = SearchStats {
            nodes: 42,
            elapsed_micros: 7,
            limit_reached: true,
            dual_bound: Some(-5),
            gap: Some(0.125),
            ..Default::default()
        };
        let mut assignments = BTreeMap::new();
        assignments.insert(
            "assign".to_string(),
            vec![vec![Value::Int(1), Value::Int(10), Value::Int(1)]],
        );
        SolveReport {
            feasible: true,
            trivial: false,
            objective: Some(-3),
            proven_optimal: false,
            stats,
            certificate: Some(BoundCertificate {
                engine: "linear_relaxation".into(),
                dual_bound: -5,
                binding: vec!["LinearEq#0 (objective)".into(), "LinearEq#2".into()],
            }),
            assignments,
            outgoing: vec![RemoteTuple {
                dest: NodeId(2),
                relation: "pong".into(),
                tuple: vec![Value::Addr(NodeId(2)), Value::Bool(true)],
                insert: true,
            }],
        }
    }

    #[test]
    fn client_messages_round_trip() {
        let msgs = [
            ClientMsg::Hello {
                tenant: "acme".into(),
            },
            ClientMsg::Ingest {
                node: NodeId(3),
                relation: "vm".into(),
                ops: vec![
                    IngestOp {
                        insert: true,
                        tuple: vec![Value::Int(1), Value::Str("x".into())],
                    },
                    IngestOp {
                        insert: false,
                        tuple: vec![],
                    },
                ],
                sync: true,
            },
            ClientMsg::Solve(SolveRequest::all().with_events(64)),
            ClientMsg::Solve(
                SolveRequest::at(NodeId(1))
                    .with_events(8)
                    .cancel_after_incumbents(2),
            ),
            ClientMsg::Solve(SolveRequest::all().parallel()),
            ClientMsg::Subscribe(Some(EventOptions::buffered(16))),
            ClientMsg::Subscribe(None),
            ClientMsg::Stats,
            ClientMsg::Tick { micros: 5_000_000 },
            ClientMsg::Bye,
        ];
        for msg in msgs {
            let payload = encode_client(&msg);
            assert_eq!(decode_client(&payload).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let snapshot = StatsSnapshot {
            nodes: vec![NodeStats {
                node: NodeId(1),
                solver_invocations: 4,
                pipeline: PipelineStats {
                    plan_builds: 1,
                    full_rebuilds: 2,
                    incremental_builds: 3,
                },
                engine: EngineStats {
                    external_deltas: 9,
                    ..Default::default()
                },
                search_total: SearchStats {
                    nodes: 100,
                    ..Default::default()
                },
                last_search: Some(SearchStats::default()),
            }],
            delivery: DeliveryStats {
                data_packets_sent: 12,
                ..Default::default()
            },
            rejected_remote_tuples: 1,
        };
        let msgs = [
            ServerMsg::HelloOk { session: 77 },
            ServerMsg::IngestOk { applied: 3 },
            ServerMsg::Event {
                node: NodeId(0),
                event: SolveEvent::Incumbent {
                    objective: Some(12),
                },
            },
            ServerMsg::Event {
                node: NodeId(1),
                event: SolveEvent::LnsIteration {
                    iteration: 3,
                    improved: true,
                    best_objective: None,
                },
            },
            ServerMsg::Event {
                node: NodeId(2),
                event: SolveEvent::Progress {
                    nodes: 64,
                    fails: 8,
                    solutions: 1,
                    dual_bound: Some(17),
                    gap: Some(0.0625),
                },
            },
            ServerMsg::Event {
                node: NodeId(2),
                event: SolveEvent::Progress {
                    nodes: 1,
                    fails: 0,
                    solutions: 0,
                    dual_bound: None,
                    gap: None,
                },
            },
            ServerMsg::SolveOk {
                reports: vec![(NodeId(0), sample_report())],
                dropped_events: 2,
            },
            ServerMsg::StatsOk(snapshot),
            ServerMsg::TickOk { handled: 9 },
            ServerMsg::SubscribeOk,
            ServerMsg::Error {
                code: ErrorCode::SchemaMismatch,
                message: "arity 2 != 3".into(),
            },
            ServerMsg::ByeOk,
        ];
        for msg in msgs {
            let payload = encode_server(&msg);
            assert_eq!(decode_server(&payload).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn version_and_opcode_errors_are_typed() {
        assert_eq!(
            decode_client(&[9, 0x05]),
            Err(WireError::BadVersion(9)),
            "wrong version byte"
        );
        assert_eq!(
            decode_client(&[PROTOCOL_VERSION, 0x60]),
            Err(WireError::BadOpcode(0x60))
        );
        // server opcodes are not client opcodes and vice versa
        assert_eq!(
            decode_client(&[PROTOCOL_VERSION, 0x81]),
            Err(WireError::BadOpcode(0x81))
        );
        assert_eq!(
            decode_server(&[PROTOCOL_VERSION, 0x01]),
            Err(WireError::BadOpcode(0x01))
        );
        assert_eq!(decode_client(&[]), Err(WireError::Truncated));
        // trailing bytes are rejected
        let mut payload = encode_client(&ClientMsg::Bye);
        payload.push(0);
        assert_eq!(decode_client(&payload), Err(WireError::TrailingBytes(1)));
        assert_eq!(WireError::BadVersion(9).code(), ErrorCode::VersionMismatch);
        assert_eq!(WireError::BadOpcode(0x60).code(), ErrorCode::UnknownOpcode);
        assert_eq!(WireError::Truncated.code(), ErrorCode::Malformed);
    }

    #[test]
    fn frame_io_round_trips_and_caps() {
        let payload = encode_client(&ClientMsg::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), payload);
        assert!(
            read_frame(&mut cursor, 1024).unwrap().is_none(),
            "clean EOF"
        );

        // an oversized declared length is rejected before any allocation
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Oversized { len: u32::MAX, .. })
        ));

        // EOF inside the length prefix is an error, not a clean close
        let mut cursor = io::Cursor::new(vec![1u8, 2]);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn cologne_errors_map_to_codes() {
        assert_eq!(
            ErrorCode::of_error(&CologneError::UnknownRelation {
                relation: "vmm".into(),
                suggestion: Some("vm".into()),
            }),
            ErrorCode::UnknownRelation
        );
        assert_eq!(
            ErrorCode::of_error(&CologneError::SchemaMismatch {
                relation: "vm".into(),
                detail: "arity".into(),
            }),
            ErrorCode::SchemaMismatch
        );
        assert_eq!(
            ErrorCode::of_error(&CologneError::InvalidConfig("x".into())),
            ErrorCode::InvalidConfig
        );
        assert_eq!(
            ErrorCode::of_error(&CologneError::NoGoal),
            ErrorCode::Internal
        );
    }
}
