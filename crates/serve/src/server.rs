//! The multi-tenant server: many concurrent [`Deployment`] sessions over
//! TCP, solving on a bounded worker pool.
//!
//! Architecture (all std, no async runtime):
//!
//! * an **acceptor** thread owns the listener and performs admission
//!   control — a connection beyond [`ServerConfig::max_sessions`] receives
//!   one [`ErrorCode::Busy`] frame and is closed;
//! * one **session** thread per connection owns that tenant's
//!   [`Deployment`] (sessions are fully isolated — no shared state between
//!   tenants beyond the worker pool) and speaks the frame protocol;
//! * a fixed pool of **solve workers** executes [`ClientMsg::Solve`] jobs.
//!   The job queue is bounded ([`ServerConfig::queue_depth`]); a solve
//!   submitted while the queue is full is refused with a typed
//!   [`ErrorCode::Overloaded`] frame instead of queueing unboundedly.
//!
//! Streaming: a solving worker pushes [`SolveEvent`]s into a bounded queue
//! ([`ServerConfig::event_queue`]); the session thread forwards them as
//! [`ServerMsg::Event`] frames. A full queue drops events (counted,
//! reported in `SolveOk`) rather than stalling the search; a failed
//! socket write marks the client gone and flips the job's cancel flag, so
//! the search stops cooperatively at its next event — cancel on disconnect.
//!
//! Budgets: [`ServerConfig::budget`] caps are clamped into every session's
//! [`ProgramParams`] at build time via
//! [`ProgramParams::clamp_solver_budget`], so no tenant can request more
//! search per COP execution than its quota.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cologne::colog::ProgramParams;
use cologne::datalog::NodeId;
use cologne::net::Topology;
use cologne::{
    CologneError, Deployment, DeploymentBuilder, EventOptions, EventSink, SolveEvent, SolveRequest,
    SolveResponse, SolverSettings,
};

use crate::wire::{
    decode_client, encode_server, read_frame, write_frame, ClientMsg, ErrorCode, FrameError,
    ServerMsg, TenantBudget, WireError, DEFAULT_MAX_FRAME,
};

/// Server configuration: the tenant program plus resource limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Colog source compiled for every session.
    pub program: String,
    /// Base program parameters per session (budget caps clamp into these).
    pub params: ProgramParams,
    /// Topology per session (`None` = single node).
    pub topology: Option<Topology>,
    /// Merged solver settings per session.
    pub solver: Option<SolverSettings>,
    /// Admission control: maximum concurrent sessions.
    pub max_sessions: usize,
    /// Solve worker threads.
    pub workers: usize,
    /// Bounded solve-job queue depth; a full queue refuses solves with
    /// [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Per-tenant node/time budget caps.
    pub budget: TenantBudget,
    /// Bounded per-solve event queue between worker and session thread.
    pub event_queue: usize,
    /// Cap on incoming frame payloads.
    pub max_frame: u32,
}

impl ServerConfig {
    /// Defaults sized for tests and moderate load.
    pub fn new(program: &str) -> Self {
        ServerConfig {
            program: program.to_string(),
            params: ProgramParams::new(),
            topology: None,
            solver: None,
            max_sessions: 1536,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 256,
            budget: TenantBudget::default(),
            event_queue: 256,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or socket setup failed.
    Io(io::Error),
    /// The configured program/settings do not build a deployment.
    Config(CologneError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A snapshot of the server's own counters (not tenant counters — those are
/// per-session [`cologne::StatsSnapshot`]s).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections admitted.
    pub accepted: u64,
    /// Connections refused with [`ErrorCode::Busy`].
    pub rejected_busy: u64,
    /// Solves that completed (ok or solver error reported to the client).
    pub solves: u64,
    /// Solves refused with [`ErrorCode::Overloaded`].
    pub overloaded: u64,
    /// Event frames written to clients.
    pub events_streamed: u64,
    /// Solves cancelled because the client disconnected mid-stream.
    pub disconnect_cancels: u64,
    /// Ingest operations applied.
    pub ingest_ops: u64,
    /// Sessions currently open.
    pub active_sessions: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected_busy: AtomicU64,
    solves: AtomicU64,
    overloaded: AtomicU64,
    events_streamed: AtomicU64,
    disconnect_cancels: AtomicU64,
    ingest_ops: AtomicU64,
}

struct SolveJob {
    deployment: Deployment,
    request: SolveRequest,
    events_tx: SyncSender<(NodeId, SolveEvent)>,
    cancel: Arc<AtomicBool>,
    done_tx: SyncSender<JobDone>,
}

struct JobDone {
    deployment: Deployment,
    result: Result<SolveResponse, CologneError>,
    dropped: u64,
}

/// The worker-side sink: non-blocking pushes into the bounded event queue,
/// with the cancel flag checked on every event so a disconnected client
/// stops the search at its next emission point.
struct StreamSink<'a> {
    tx: &'a SyncSender<(NodeId, SolveEvent)>,
    dropped: &'a mut u64,
    cancel: &'a AtomicBool,
}

impl EventSink for StreamSink<'_> {
    fn event(&mut self, node: NodeId, event: SolveEvent) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            return false;
        }
        match self.tx.try_send((node, event)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                *self.dropped += 1;
                true
            }
            // the session thread is gone; stop the search
            Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    active: AtomicUsize,
    counters: Counters,
    sessions_started: AtomicU64,
    jobs: Mutex<Option<SyncSender<SolveJob>>>,
    shutdown: AtomicBool,
}

/// A running server; dropped or [`Server::shutdown`] stops accepting.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. The configuration is validated eagerly by
    /// building one throwaway deployment, so a broken program or solver
    /// setting fails here instead of on every connection.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> Result<Server, ServeError> {
        build_deployment(&cfg).map_err(ServeError::Config)?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // queue_depth 0 is a rendezvous queue: a solve is admitted only if
        // a worker is idle right now — useful for deterministic tests
        let (job_tx, job_rx) = sync_channel::<SolveJob>(cfg.queue_depth);
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            active: AtomicUsize::new(0),
            counters: Counters::default(),
            sessions_started: AtomicU64::new(0),
            jobs: Mutex::new(Some(job_tx)),
            shutdown: AtomicBool::new(false),
        });
        let job_rx = Arc::new(Mutex::new(job_rx));
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            std::thread::spawn(move || worker_loop(&job_rx));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(&listener, &shared))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected_busy: c.rejected_busy.load(Ordering::Relaxed),
            solves: c.solves.load(Ordering::Relaxed),
            overloaded: c.overloaded.load(Ordering::Relaxed),
            events_streamed: c.events_streamed.load(Ordering::Relaxed),
            disconnect_cancels: c.disconnect_cancels.load(Ordering::Relaxed),
            ingest_ops: c.ingest_ops.load(Ordering::Relaxed),
            active_sessions: self.shared.active.load(Ordering::Relaxed) as u64,
        }
    }

    /// Stop accepting connections and retire the worker pool once open
    /// sessions finish. Sessions still connected keep running until their
    /// clients disconnect.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // closing the job sender lets idle workers exit
        self.shared.jobs.lock().expect("jobs lock").take();
        // poke the blocking accept() so the acceptor observes shutdown
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

/// Build one tenant deployment from the server configuration, with the
/// budget caps clamped into its parameters.
fn build_deployment(cfg: &ServerConfig) -> Result<Deployment, CologneError> {
    let mut params = cfg.params.clone();
    params.clamp_solver_budget(
        cfg.budget.max_nodes.map(|n| n.get()),
        cfg.budget.max_solve_time,
    );
    let mut builder = DeploymentBuilder::new(&cfg.program).params(params);
    if let Some(topology) = &cfg.topology {
        builder = builder.topology(topology.clone());
    }
    if let Some(solver) = &cfg.solver {
        let mut solver = solver.clone();
        if let Some(cap) = cfg.budget.max_nodes {
            solver.node_limit = Some(solver.node_limit.map_or(cap.get(), |l| l.min(cap.get())));
        }
        if let Some(cap) = cfg.budget.max_solve_time {
            solver.max_time = Some(solver.max_time.map_or(cap, |l| l.min(cap)));
        }
        builder = builder.solver(solver);
    }
    builder.build()
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_sessions {
            shared
                .counters
                .rejected_busy
                .fetch_add(1, Ordering::Relaxed);
            let mut writer = BufWriter::new(stream);
            let msg = ServerMsg::Error {
                code: ErrorCode::Busy,
                message: format!("server at session limit {}", shared.cfg.max_sessions),
            };
            let _ = write_frame(&mut writer, &encode_server(&msg));
            let _ = writer.flush();
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _ = session_loop(&shared, stream);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn worker_loop(jobs: &Mutex<Receiver<SolveJob>>) {
    loop {
        // hold the lock only while waiting for one job, not while solving
        let job = match jobs.lock() {
            Ok(rx) => match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            },
            Err(_) => return,
        };
        let SolveJob {
            mut deployment,
            request,
            events_tx,
            cancel,
            done_tx,
        } = job;
        let mut dropped = 0u64;
        let result = {
            let mut sink = StreamSink {
                tx: &events_tx,
                dropped: &mut dropped,
                cancel: &cancel,
            };
            deployment.solve_streaming(&request, &mut sink)
        };
        // close the event stream before reporting completion, so the session
        // thread's forwarding loop terminates first
        drop(events_tx);
        let _ = done_tx.send(JobDone {
            deployment,
            result,
            dropped,
        });
    }
}

fn send_msg(writer: &mut BufWriter<TcpStream>, msg: &ServerMsg) -> io::Result<()> {
    write_frame(writer, &encode_server(msg))?;
    writer.flush()
}

fn error_msg(code: ErrorCode, message: impl Into<String>) -> ServerMsg {
    ServerMsg::Error {
        code,
        message: message.into(),
    }
}

fn cologne_error_msg(err: &CologneError) -> ServerMsg {
    error_msg(ErrorCode::of_error(err), err.to_string())
}

fn session_loop(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    // request/response latency matters more than throughput per byte here
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let session_id = shared.sessions_started.fetch_add(1, Ordering::Relaxed);
    let mut deployment = match build_deployment(&shared.cfg) {
        Ok(d) => Some(d),
        Err(e) => {
            let _ = send_msg(&mut writer, &cologne_error_msg(&e));
            return Ok(());
        }
    };
    let mut default_events: Option<EventOptions> = None;
    loop {
        let payload = match read_frame(&mut reader, shared.cfg.max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(FrameError::Oversized { len, max }) => {
                let _ = send_msg(
                    &mut writer,
                    &error_msg(
                        ErrorCode::Oversized,
                        format!("frame payload {len} bytes exceeds cap {max}"),
                    ),
                );
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        let msg = match decode_client(&payload) {
            Ok(msg) => msg,
            Err(e) => {
                let fatal = matches!(e, WireError::BadVersion(_));
                send_msg(&mut writer, &error_msg(e.code(), e.to_string()))?;
                if fatal {
                    break;
                }
                continue;
            }
        };
        match msg {
            ClientMsg::Hello { tenant: _ } => {
                send_msg(
                    &mut writer,
                    &ServerMsg::HelloOk {
                        session: session_id,
                    },
                )?;
            }
            ClientMsg::Ingest {
                node,
                relation,
                ops,
                sync,
            } => {
                let dep = deployment.as_mut().expect("deployment present");
                let mut applied = 0u32;
                let mut failure: Option<CologneError> = None;
                match dep.handle(node, &relation) {
                    Ok(mut handle) => {
                        for op in ops {
                            let outcome = if op.insert {
                                handle.insert(op.tuple)
                            } else {
                                handle.delete(op.tuple)
                            };
                            match outcome {
                                Ok(()) => applied += 1,
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => failure = Some(e),
                }
                shared
                    .counters
                    .ingest_ops
                    .fetch_add(u64::from(applied), Ordering::Relaxed);
                match failure {
                    // ingest batches are not transactional: operations before
                    // the failing one stay applied, and the error frame names
                    // the reason (unknown relation, schema mismatch, ...)
                    Some(e) => send_msg(&mut writer, &cologne_error_msg(&e))?,
                    None => {
                        if sync {
                            dep.sync(node);
                        }
                        send_msg(&mut writer, &ServerMsg::IngestOk { applied })?;
                    }
                }
            }
            ClientMsg::Solve(mut request) => {
                if request.events.is_none() {
                    request.events = default_events;
                }
                if let Err(e) = request.validate() {
                    send_msg(&mut writer, &cologne_error_msg(&e))?;
                    continue;
                }
                let dep = deployment.take().expect("deployment present");
                let (events_tx, events_rx) = sync_channel(shared.cfg.event_queue.max(1));
                let (done_tx, done_rx) = sync_channel(1);
                let cancel = Arc::new(AtomicBool::new(false));
                let job = SolveJob {
                    deployment: dep,
                    request,
                    events_tx,
                    cancel: Arc::clone(&cancel),
                    done_tx,
                };
                let submit = {
                    let guard = shared.jobs.lock().expect("jobs lock");
                    match guard.as_ref() {
                        Some(tx) => tx.try_send(job).map_err(|e| match e {
                            TrySendError::Full(job) => (ErrorCode::Overloaded, job),
                            TrySendError::Disconnected(job) => (ErrorCode::Internal, job),
                        }),
                        None => Err((ErrorCode::Internal, job)),
                    }
                };
                match submit {
                    Err((code, job)) => {
                        deployment = Some(job.deployment);
                        if code == ErrorCode::Overloaded {
                            shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                            send_msg(
                                &mut writer,
                                &error_msg(code, "solve queue full; retry later"),
                            )?;
                        } else {
                            send_msg(&mut writer, &error_msg(code, "server shutting down"))?;
                            break;
                        }
                    }
                    Ok(()) => {
                        let mut client_gone = false;
                        while let Ok((node, event)) = events_rx.recv() {
                            if client_gone {
                                continue; // drain so the worker never blocks
                            }
                            if send_msg(&mut writer, &ServerMsg::Event { node, event }).is_err() {
                                client_gone = true;
                                cancel.store(true, Ordering::Relaxed);
                                shared
                                    .counters
                                    .disconnect_cancels
                                    .fetch_add(1, Ordering::Relaxed);
                            } else {
                                shared
                                    .counters
                                    .events_streamed
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let done = done_rx.recv().expect("worker reports completion");
                        deployment = Some(done.deployment);
                        shared.counters.solves.fetch_add(1, Ordering::Relaxed);
                        let reply = match done.result {
                            Ok(response) => ServerMsg::SolveOk {
                                reports: response.reports.into_iter().collect(),
                                dropped_events: done.dropped,
                            },
                            Err(e) => cologne_error_msg(&e),
                        };
                        if client_gone || send_msg(&mut writer, &reply).is_err() {
                            break;
                        }
                    }
                }
            }
            ClientMsg::Subscribe(opts) => {
                default_events = opts;
                send_msg(&mut writer, &ServerMsg::SubscribeOk)?;
            }
            ClientMsg::Stats => {
                let dep = deployment.as_ref().expect("deployment present");
                send_msg(&mut writer, &ServerMsg::StatsOk(dep.stats()))?;
            }
            ClientMsg::Tick { micros } => {
                let dep = deployment.as_mut().expect("deployment present");
                let limit = dep.now().plus_us(micros);
                let handled = dep.run_messages_until(limit);
                send_msg(&mut writer, &ServerMsg::TickOk { handled })?;
            }
            ClientMsg::Bye => {
                let _ = send_msg(&mut writer, &ServerMsg::ByeOk);
                break;
            }
        }
    }
    Ok(())
}
