//! # cologne-colog
//!
//! The Colog language: lexer, parser, static analysis, localization rewrite
//! and imperative code generation.
//!
//! Colog (Sec. 4 of the Cologne paper, Liu et al., VLDB 2012) extends
//! distributed Datalog with constructs for constraint optimization:
//!
//! * `goal minimize|maximize|satisfy X in rel(...)` — the optimization goal;
//! * `var table(...) forall boundTable(...)` — solver variable declarations;
//! * solver derivation rules (`head <- body`) and solver constraint rules
//!   (`head -> body`);
//! * `@Loc` location specifiers for distributed rules;
//! * aggregates `SUM`, `COUNT`, `MIN`, `MAX`, `STDEV`, `SUMABS`, `UNIQUE`.
//!
//! The typical pipeline is:
//!
//! ```
//! use cologne_colog::{parse_program, analyze, localize_rules, generate_cpp};
//!
//! let source = r#"
//!     goal minimize C in hostStdevCpu(C).
//!     var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
//!     r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
//!     d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
//! "#;
//! let program = parse_program(source).expect("valid Colog");
//! let analysis = analyze(&program).expect("well-formed program");
//! assert!(analysis.solver_tables.is_solver_table("assign"));
//! let localized = localize_rules(&program.rules).expect("localizable");
//! assert_eq!(localized.len(), program.rules.len()); // nothing distributed here
//! let cpp = generate_cpp(&program, &analysis, "quickstart");
//! assert!(cpp.loc() > 100); // Table 2: orders of magnitude more C++
//! ```
//!
//! Execution of analysed programs (grounding solver rules, invoking the
//! constraint solver, distributing tuples) lives in the `cologne` runtime
//! crate (`cologne-core`).

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod localize;
pub mod params;
pub mod parser;
pub mod schema;

pub use analysis::{analyze, Analysis, AnalysisError, RuleClass, SolverTables};
pub use ast::{
    Arg, BodyElem, CExpr, COp, GoalDecl, GoalKind, Literal, Predicate, Program, RuleArrow,
    RuleDecl, VarDecl,
};
pub use codegen::{count_loc, generate_cpp, GeneratedCode};
pub use lexer::{tokenize, LexError, Token};
pub use localize::{localize_rule, localize_rules, LocalizeError};
pub use params::{
    LnsParams, ProgramParams, SolverBoundMode, SolverBranching, SolverMode, VarDomain,
};
pub use parser::{parse_program, ParseError};
pub use schema::{RelationSchema, SchemaCatalog};
