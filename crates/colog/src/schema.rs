//! Relation schemas derived from a compiled Colog program.
//!
//! The [`SchemaCatalog`] is the compiler-facing contract behind the typed
//! relation API of the runtime: for every relation a program mentions —
//! goal relation, `var`-declared solver tables, `forall` bindings, rule
//! heads and rule bodies — it records the relation's arity, the kind of
//! each column ([`ValueKind`]), the location-specifier position (the `@Loc`
//! column of distributed relations) and which columns are solver
//! attributes. The runtime uses it to hand out schema-checked relation
//! handles, to validate tuples received from remote nodes, and to produce
//! did-you-mean diagnostics for misspelled relation names.
//!
//! Derive the catalog from the *localized* program (the same rule set the
//! runtime executes) so the shipping relations introduced by the
//! localization rewrite are covered too.

use std::collections::BTreeMap;

use cologne_datalog::{did_you_mean, SchemaError, SchemaSet, Tuple, TupleSchema, ValueKind};

use crate::analysis::Analysis;
use crate::ast::{Arg, BodyElem, Predicate, Program};

/// Everything the runtime knows about the shape of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Kind of each column: [`ValueKind::Addr`] for the location specifier,
    /// [`ValueKind::Sym`] for solver attributes, [`ValueKind::Any`]
    /// elsewhere.
    pub columns: Vec<ValueKind>,
    /// Position of the `@Loc` location-specifier column, if the relation is
    /// located (always 0 in Colog).
    pub loc_position: Option<usize>,
    /// Per-column flag: true for solver-attribute columns (the `var`-decl
    /// columns and everything the analysis marked downstream of them).
    pub solver_positions: Vec<bool>,
    /// True when the relation is declared by a `var` statement (its rows are
    /// created by the grounding stage, not by facts).
    pub declared_by_var: bool,
    /// False when the program uses the relation with conflicting arities;
    /// validation is skipped for such relations.
    pub strict: bool,
}

impl RelationSchema {
    /// Check a tuple against the schema (no-op for non-strict schemas).
    pub fn check(&self, tuple: &Tuple) -> Result<(), SchemaError> {
        if !self.strict {
            return Ok(());
        }
        TupleSchema {
            relation: self.name.clone(),
            columns: self.columns.clone(),
        }
        .check(tuple)
    }
}

/// The schemas of every relation a program mentions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaCatalog {
    relations: BTreeMap<String, RelationSchema>,
}

impl SchemaCatalog {
    /// Derive the catalog from a program and its analysis.
    pub fn derive(program: &Program, analysis: &Analysis) -> SchemaCatalog {
        let mut catalog = SchemaCatalog::default();
        if let Some(goal) = &program.goal {
            catalog.observe(&goal.relation);
        }
        for var in &program.vars {
            catalog.observe(&var.table);
            catalog.observe(&var.forall);
        }
        for rule in &program.rules {
            catalog.observe(&rule.head);
            for b in &rule.body {
                if let BodyElem::Pred(p) = b {
                    catalog.observe(p);
                }
            }
        }
        // Overlay the analysis' solver-attribute marks: they are a fixpoint
        // over the whole program, so they are authoritative over whatever a
        // single occurrence suggested.
        for schema in catalog.relations.values_mut() {
            let flags = analysis.solver_tables.positions(&schema.name);
            for (i, &solver) in flags.iter().enumerate() {
                if i >= schema.arity {
                    break;
                }
                schema.solver_positions[i] = solver;
                if solver {
                    schema.columns[i] = ValueKind::Sym;
                }
            }
            schema.declared_by_var = program.vars.iter().any(|v| v.table.name == schema.name);
        }
        catalog
    }

    /// Merge one predicate occurrence into the catalog.
    fn observe(&mut self, pred: &Predicate) {
        let arity = pred.args.len();
        let entry = self
            .relations
            .entry(pred.name.clone())
            .or_insert_with(|| RelationSchema {
                name: pred.name.clone(),
                arity,
                columns: vec![ValueKind::Any; arity],
                loc_position: None,
                solver_positions: vec![false; arity],
                declared_by_var: false,
                strict: true,
            });
        if entry.arity != arity {
            // Conflicting arities across occurrences: stop validating this
            // relation rather than guessing which occurrence is right.
            entry.strict = false;
            return;
        }
        for (i, arg) in pred.args.iter().enumerate() {
            if matches!(arg, Arg::Loc(_)) {
                entry.loc_position = Some(i);
                entry.columns[i] = ValueKind::Addr;
            }
        }
    }

    /// Schema of one relation.
    pub fn get(&self, relation: &str) -> Option<&RelationSchema> {
        self.relations.get(relation)
    }

    /// True when the program mentions the relation anywhere.
    pub fn contains(&self, relation: &str) -> bool {
        self.relations.contains_key(relation)
    }

    /// All relation names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// A known relation with a name similar to `relation`, for did-you-mean
    /// diagnostics.
    pub fn suggest(&self, relation: &str) -> Option<String> {
        did_you_mean(relation, self.names())
    }

    /// The datalog-level schema set (strict relations only), ready for
    /// [`cologne_datalog::Engine::set_schemas`].
    pub fn schema_set(&self) -> SchemaSet {
        let mut set = SchemaSet::new();
        for schema in self.relations.values() {
            if schema.strict {
                set.insert(TupleSchema {
                    relation: schema.name.clone(),
                    columns: schema.columns.clone(),
                });
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_program;
    use cologne_datalog::{NodeId, Value};

    const ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
        d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
        c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
    "#;

    fn acloud_catalog() -> SchemaCatalog {
        let program = parse_program(ACLOUD).unwrap();
        let analysis = analyze(&program).unwrap();
        SchemaCatalog::derive(&program, &analysis)
    }

    #[test]
    fn catalog_covers_every_mentioned_relation() {
        let catalog = acloud_catalog();
        for rel in [
            "hostStdevCpu",
            "assign",
            "toAssign",
            "vm",
            "host",
            "hostCpu",
            "assignCount",
            "hostMem",
            "hostMemThres",
        ] {
            assert!(catalog.contains(rel), "{rel} missing");
        }
        assert!(!catalog.is_empty());
        assert_eq!(catalog.len(), 9);
        assert!(!catalog.contains("vmCpu"));
    }

    #[test]
    fn arity_and_solver_columns_derived() {
        let catalog = acloud_catalog();
        let vm = catalog.get("vm").unwrap();
        assert_eq!(vm.arity, 3);
        assert_eq!(vm.columns, vec![ValueKind::Any; 3]);
        assert!(!vm.declared_by_var);
        let assign = catalog.get("assign").unwrap();
        assert_eq!(assign.arity, 3);
        assert_eq!(assign.solver_positions, vec![false, false, true]);
        assert_eq!(
            assign.columns,
            vec![ValueKind::Any, ValueKind::Any, ValueKind::Sym]
        );
        assert!(assign.declared_by_var);
        let host_cpu = catalog.get("hostCpu").unwrap();
        assert_eq!(host_cpu.columns, vec![ValueKind::Any, ValueKind::Sym]);
    }

    #[test]
    fn location_specifier_column_is_addr() {
        let src = r#"
            r1 pong(@Y,X) <- ping(@X,Y).
        "#;
        let program = parse_program(src).unwrap();
        let analysis = analyze(&program).unwrap();
        let catalog = SchemaCatalog::derive(&program, &analysis);
        let ping = catalog.get("ping").unwrap();
        assert_eq!(ping.loc_position, Some(0));
        assert_eq!(ping.columns, vec![ValueKind::Addr, ValueKind::Any]);
        // tuples validate accordingly
        ping.check(&vec![Value::Addr(NodeId(0)), Value::Int(1)])
            .unwrap();
        assert!(ping.check(&vec![Value::Int(0), Value::Int(1)]).is_err());
        assert!(ping.check(&vec![Value::Addr(NodeId(0))]).is_err());
    }

    #[test]
    fn conflicting_arity_turns_off_validation() {
        let src = r#"
            r1 out(X) <- a(X,Y).
            r2 out(X,Y) <- a(X,Y).
        "#;
        let program = parse_program(src).unwrap();
        let analysis = analyze(&program).unwrap();
        let catalog = SchemaCatalog::derive(&program, &analysis);
        let out = catalog.get("out").unwrap();
        assert!(!out.strict);
        out.check(&vec![Value::Int(1)]).unwrap();
        out.check(&vec![Value::Int(1), Value::Int(2)]).unwrap();
        // non-strict schemas are excluded from the engine-level set
        assert!(!catalog.schema_set().contains("out"));
        assert!(catalog.schema_set().contains("a"));
    }

    #[test]
    fn suggestions_catch_typos() {
        let catalog = acloud_catalog();
        assert_eq!(catalog.suggest("hostCpi").as_deref(), Some("hostCpu"));
        assert_eq!(catalog.suggest("asign").as_deref(), Some("assign"));
        assert_eq!(catalog.suggest("somethingElse"), None);
    }

    #[test]
    fn schema_set_round_trips_into_engine() {
        let catalog = acloud_catalog();
        let set = catalog.schema_set();
        assert_eq!(set.len(), catalog.len());
        set.check("vm", &vec![Value::Int(1), Value::Int(40), Value::Int(2)])
            .unwrap();
        assert!(set.check("vm", &vec![Value::Int(1)]).is_err());
    }
}
