//! Program parameters.
//!
//! Colog programs reference named constants (`max_migrates`, `F_mindiff`,
//! `cost_thres`, ...) and leave the domains of solver variables to the
//! generated Gecode model. [`ProgramParams`] carries both, mirroring the
//! knobs the paper exposes (`SOLVER_MAX_TIME`, policy thresholds) without
//! changing the Colog surface syntax.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::time::Duration;

/// Domain `[lo, hi]` for the solver variables of one `var`-declared table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarDomain {
    /// Smallest allowed value.
    pub lo: i64,
    /// Largest allowed value.
    pub hi: i64,
}

impl VarDomain {
    /// A 0/1 domain (the default, used for assignment variables).
    pub const BOOL: VarDomain = VarDomain { lo: 0, hi: 1 };

    /// Build a domain.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty var domain [{lo}, {hi}]");
        VarDomain { lo, hi }
    }
}

impl Default for VarDomain {
    fn default() -> Self {
        VarDomain::BOOL
    }
}

/// Variable-selection heuristic for the branch-and-bound search of a COP
/// invocation.
///
/// This is the compiler-facing mirror of the solver's `Branching` enum (the
/// compiler crate does not depend on the solver); the runtime maps it onto
/// the solver's search configuration when an instance is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBranching {
    /// Branch on variables in creation order (the paper's setup).
    #[default]
    InputOrder,
    /// Branch on the unfixed variable with the smallest domain first
    /// (first-fail). The default for the ACloud and wireless use cases,
    /// whose 0/1 assignment and channel variables benefit from failing
    /// early on tightly-constrained rows.
    FirstFail,
    /// Branch on the unfixed variable with the largest domain first.
    LargestDomain,
}

/// Incomplete-search (large neighborhood search) parameters.
///
/// Compiler-facing mirror of the solver's `LnsConfig` (the compiler crate
/// does not depend on the solver); the runtime maps it onto the solver's
/// search configuration when an instance is built. See the solver's `lns`
/// module for the semantics of each knob.
#[derive(Debug, Clone, PartialEq)]
pub struct LnsParams {
    /// Seed of the neighborhood-selection RNG (fixed seed = reproducible run).
    pub seed: u64,
    /// Fraction of the decision variables destroyed per iteration.
    pub destroy_fraction: f64,
    /// Prefer destroying variables whose frozen assignment conflicted with
    /// the improving bound (`true`), or pick purely at random (`false`).
    pub conflict_guided: bool,
    /// Node budget of the initial exact incumbent dive.
    pub dive_node_limit: u64,
    /// Base fail budget of one repair search.
    pub repair_fail_base: u64,
    /// Geometric growth factor for stalled repair budgets and neighborhoods.
    pub repair_growth: f64,
    /// Hard cap on destroy/repair iterations.
    pub max_iterations: Option<u64>,
}

impl Default for LnsParams {
    fn default() -> Self {
        LnsParams {
            seed: 0xC010_93E5,
            destroy_fraction: 0.25,
            conflict_guided: true,
            dive_node_limit: 2_000,
            repair_fail_base: 64,
            repair_growth: 1.5,
            max_iterations: None,
        }
    }
}

/// Dual-bound engine selection for COP invocations.
///
/// Compiler-facing mirror of the solver's `BoundMode` (the compiler crate
/// does not depend on the solver); the runtime maps it onto the solver's
/// search configuration when an instance is built. See the solver's
/// `bounds` module for the engine semantics and soundness contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBoundMode {
    /// No dual bound: every run stays byte-identical to a build without the
    /// bounds subsystem (the default).
    #[default]
    Off,
    /// Linear/packing relaxation over the grounded COP's exactly-one groups.
    Linear,
    /// Relaxed decision-diagram bound (merge-based, width-limited).
    Relaxed,
    /// Run both engines and keep the tighter bound.
    Auto,
}

/// How COP invocations explore the search space: exact branch-and-bound (the
/// paper's mode) or incomplete large neighborhood search for instances exact
/// search cannot close within its budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SolverMode {
    /// Exact branch-and-bound with an optimality proof.
    #[default]
    Exact,
    /// Destroy/repair large neighborhood search (best incumbent under the
    /// configured budgets; optimization goals only — `satisfy` programs run
    /// exact regardless).
    Lns(LnsParams),
}

/// Compile/run-time parameters for a Colog program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramParams {
    /// Values for named constants appearing in the program.
    constants: BTreeMap<String, i64>,
    /// Domain of the solver variables declared by each `var` statement,
    /// keyed by solver-table name. Tables not listed use [`VarDomain::BOOL`].
    var_domains: BTreeMap<String, VarDomain>,
    /// The paper's `SOLVER_MAX_TIME`: wall-clock budget per COP execution.
    pub solver_max_time: Option<Duration>,
    /// Cap on branch-and-bound search nodes per COP execution (a
    /// deterministic alternative to the wall-clock limit, useful in tests
    /// and benchmarks).
    pub solver_node_limit: Option<u64>,
    /// Variable-selection heuristic for the COP search. Seeds the search
    /// configuration of the runtime's solve pipeline at instance
    /// construction.
    pub solver_branching: SolverBranching,
    /// Search mode for COP invocations (exact branch-and-bound or LNS).
    /// Like the branching heuristic, it seeds the pipeline's search
    /// configuration and follows parameter updates.
    pub solver_mode: SolverMode,
    /// Worker threads for each COP search (`None` = sequential, the paper's
    /// setup). With `Some(n)`, exact goals run the spine-splitting parallel
    /// branch-and-bound and LNS goals run the multi-seed portfolio — both
    /// return results identical to the sequential engines (see the solver's
    /// `parallel` module for the determinism contract).
    pub solver_workers: Option<NonZeroUsize>,
    /// Dual-bound engine for COP invocations. Anything but
    /// [`SolverBoundMode::Off`] computes a certified dual bound at the
    /// frozen root of every solve and reports the optimality gap in the
    /// solve statistics. Off by default — the default keeps every run
    /// byte-identical to a build without the bounds subsystem.
    pub solver_bound_mode: SolverBoundMode,
    /// Relative optimality-gap threshold for early termination. With
    /// `Some(eps)` (and a bound mode that is not `Off`), a COP search stops
    /// as soon as its certified gap drops strictly below `eps`; the solve is
    /// then reported as budget-limited rather than proved optimal.
    /// `Some(0.0)` never stops early (the gap is never negative), so it
    /// reproduces the full search byte-for-byte. `None` (the default)
    /// disables gap-driven termination.
    pub solver_gap_limit: Option<f64>,
    /// Carry the previous invocation's best assignment into the next solve
    /// (the warm-start half of incremental re-optimization): persisting rows
    /// seed the initial branch-and-bound bound for exact search and the
    /// initial incumbent for LNS. On by default; disable to force every
    /// invocation to cold-start (e.g. for baseline benchmarking).
    pub warm_start: bool,
    /// Consult the engine's delta summary when grounding (the grounding half
    /// of incremental re-optimization): an invocation whose relevant inputs
    /// are unchanged reuses the previous grounded COP, and clean `var`
    /// declarations are replayed instead of re-joined. On by default;
    /// disabling forces a full re-grounding per invocation. Either way the
    /// grounded COP is identical — this knob only selects how much work it
    /// takes to build it.
    pub delta_grounding: bool,
}

impl Default for ProgramParams {
    fn default() -> Self {
        ProgramParams {
            constants: BTreeMap::new(),
            var_domains: BTreeMap::new(),
            // Sec. 6.2: "we limit each solver's COP execution time to 10 seconds".
            solver_max_time: Some(Duration::from_secs(10)),
            solver_node_limit: None,
            solver_branching: SolverBranching::default(),
            solver_mode: SolverMode::default(),
            solver_workers: None,
            solver_bound_mode: SolverBoundMode::default(),
            solver_gap_limit: None,
            warm_start: true,
            delta_grounding: true,
        }
    }
}

impl ProgramParams {
    /// Empty parameter set with the paper's default solver time limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a named constant (builder style).
    pub fn with_constant(mut self, name: &str, value: i64) -> Self {
        self.constants.insert(name.to_string(), value);
        self
    }

    /// Set the domain for a `var`-declared table (builder style).
    pub fn with_var_domain(mut self, table: &str, domain: VarDomain) -> Self {
        self.var_domains.insert(table.to_string(), domain);
        self
    }

    /// Set the solver time limit (builder style).
    pub fn with_solver_max_time(mut self, limit: Option<Duration>) -> Self {
        self.solver_max_time = limit;
        self
    }

    /// Set the solver node limit (builder style).
    pub fn with_solver_node_limit(mut self, limit: Option<u64>) -> Self {
        self.solver_node_limit = limit;
        self
    }

    /// Set the branch-and-bound variable-selection heuristic (builder style).
    pub fn with_solver_branching(mut self, branching: SolverBranching) -> Self {
        self.solver_branching = branching;
        self
    }

    /// Set the search mode — exact or LNS — for COP invocations (builder
    /// style).
    pub fn with_solver_mode(mut self, mode: SolverMode) -> Self {
        self.solver_mode = mode;
        self
    }

    /// Set the COP search worker-thread count (builder style). `None` keeps
    /// the sequential engines.
    pub fn with_solver_workers(mut self, workers: Option<NonZeroUsize>) -> Self {
        self.solver_workers = workers;
        self
    }

    /// Set the dual-bound engine for COP invocations (builder style).
    pub fn with_solver_bound_mode(mut self, mode: SolverBoundMode) -> Self {
        self.solver_bound_mode = mode;
        self
    }

    /// Set the relative optimality-gap threshold for early termination
    /// (builder style). `None` disables gap-driven termination.
    pub fn with_solver_gap_limit(mut self, limit: Option<f64>) -> Self {
        self.solver_gap_limit = limit;
        self
    }

    /// Enable or disable warm-started solving (builder style).
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Enable or disable delta-aware grounding (builder style).
    pub fn with_delta_grounding(mut self, on: bool) -> Self {
        self.delta_grounding = on;
        self
    }

    /// Clamp the solver budgets to per-tenant caps: the effective node
    /// limit (resp. time limit) becomes the minimum of the configured limit
    /// and the cap, and an unlimited budget becomes the cap itself. A
    /// serving layer applies this once per session so no tenant can buy
    /// more search than its quota, whatever its program or solver settings
    /// ask for. `None` caps leave the corresponding budget untouched.
    pub fn clamp_solver_budget(&mut self, node_cap: Option<u64>, time_cap: Option<Duration>) {
        if let Some(cap) = node_cap {
            self.solver_node_limit = Some(self.solver_node_limit.map_or(cap, |l| l.min(cap)));
        }
        if let Some(cap) = time_cap {
            self.solver_max_time = Some(self.solver_max_time.map_or(cap, |l| l.min(cap)));
        }
    }

    /// Look up a named constant.
    pub fn constant(&self, name: &str) -> Option<i64> {
        self.constants.get(name).copied()
    }

    /// Domain for a solver table (defaults to 0/1).
    pub fn var_domain(&self, table: &str) -> VarDomain {
        self.var_domains.get(table).copied().unwrap_or_default()
    }

    /// Names of all declared constants.
    pub fn constant_names(&self) -> Vec<&str> {
        self.constants.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ProgramParams::default();
        assert_eq!(p.solver_max_time, Some(Duration::from_secs(10)));
        assert_eq!(p.var_domain("assign"), VarDomain::BOOL);
        assert_eq!(p.constant("max_migrates"), None);
        assert_eq!(p.solver_branching, SolverBranching::InputOrder);
        assert_eq!(p.solver_workers, None);
        assert_eq!(p.solver_bound_mode, SolverBoundMode::Off);
        assert_eq!(p.solver_gap_limit, None);
        assert!(p.warm_start);
        assert!(p.delta_grounding);
    }

    #[test]
    fn bound_builders_set_engine_and_gap() {
        let p = ProgramParams::new()
            .with_solver_bound_mode(SolverBoundMode::Auto)
            .with_solver_gap_limit(Some(0.05));
        assert_eq!(p.solver_bound_mode, SolverBoundMode::Auto);
        assert_eq!(p.solver_gap_limit, Some(0.05));
        let p = p.with_solver_gap_limit(None);
        assert_eq!(p.solver_gap_limit, None);
    }

    #[test]
    fn reoptimization_knobs_toggle() {
        let p = ProgramParams::new()
            .with_warm_start(false)
            .with_delta_grounding(false);
        assert!(!p.warm_start);
        assert!(!p.delta_grounding);
    }

    #[test]
    fn branching_builder_sets_heuristic() {
        let p = ProgramParams::new().with_solver_branching(SolverBranching::FirstFail);
        assert_eq!(p.solver_branching, SolverBranching::FirstFail);
    }

    #[test]
    fn solver_mode_defaults_to_exact_and_builder_selects_lns() {
        let p = ProgramParams::new();
        assert_eq!(p.solver_mode, SolverMode::Exact);
        let lns = LnsParams {
            seed: 99,
            max_iterations: Some(10),
            ..Default::default()
        };
        let p = p.with_solver_mode(SolverMode::Lns(lns.clone()));
        assert_eq!(p.solver_mode, SolverMode::Lns(lns));
    }

    #[test]
    fn solver_workers_builder_roundtrips() {
        let p = ProgramParams::new().with_solver_workers(NonZeroUsize::new(4));
        assert_eq!(p.solver_workers, NonZeroUsize::new(4));
        let p = p.with_solver_workers(None);
        assert_eq!(p.solver_workers, None);
    }

    #[test]
    fn builder_sets_values() {
        let p = ProgramParams::new()
            .with_constant("max_migrates", 3)
            .with_constant("F_mindiff", 2)
            .with_var_domain("migVm", VarDomain::new(-60, 60))
            .with_solver_max_time(Some(Duration::from_secs(1)))
            .with_solver_node_limit(Some(10_000));
        assert_eq!(p.constant("max_migrates"), Some(3));
        assert_eq!(p.var_domain("migVm"), VarDomain::new(-60, 60));
        assert_eq!(p.var_domain("assign"), VarDomain::BOOL);
        assert_eq!(p.solver_max_time, Some(Duration::from_secs(1)));
        assert_eq!(p.solver_node_limit, Some(10_000));
        assert_eq!(p.constant_names(), vec!["F_mindiff", "max_migrates"]);
    }

    #[test]
    #[should_panic]
    fn empty_domain_rejected() {
        let _ = VarDomain::new(5, 4);
    }

    #[test]
    fn budget_clamp_takes_the_minimum_and_fills_unlimited() {
        // a configured limit below the cap survives
        let mut p = ProgramParams::new().with_solver_node_limit(Some(500));
        p.clamp_solver_budget(Some(1_000), None);
        assert_eq!(p.solver_node_limit, Some(500));
        // a limit above the cap is clamped down
        p.clamp_solver_budget(Some(200), None);
        assert_eq!(p.solver_node_limit, Some(200));
        // an unlimited budget becomes the cap
        let mut p = ProgramParams::new().with_solver_node_limit(None);
        p.clamp_solver_budget(Some(64), None);
        assert_eq!(p.solver_node_limit, Some(64));
        // time budgets clamp the same way; None caps change nothing
        let mut p = ProgramParams::new().with_solver_max_time(Some(Duration::from_secs(30)));
        p.clamp_solver_budget(None, Some(Duration::from_secs(2)));
        assert_eq!(p.solver_max_time, Some(Duration::from_secs(2)));
        p.clamp_solver_budget(None, None);
        assert_eq!(p.solver_max_time, Some(Duration::from_secs(2)));
        assert_eq!(p.solver_node_limit, None);
    }
}
