//! Abstract syntax tree for the Colog language.
//!
//! Colog (Sec. 4 of the paper) extends distributed Datalog with:
//!
//! * a `goal` declaration (`minimize` / `maximize` / `satisfy`),
//! * `var` declarations binding solver variables to the rows of a regular
//!   table (`var assign(Vid,Hid,V) forall toAssign(Vid,Hid)`),
//! * solver *derivation* rules (`head <- body`) and solver *constraint* rules
//!   (`head -> body`),
//! * the `@Loc` location specifier for distributed rules,
//! * aggregates (`SUM`, `COUNT`, `MIN`, `MAX`, `STDEV`, `SUMABS`, `UNIQUE`).

use cologne_datalog::AggFunc;

/// The kind of optimization goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoalKind {
    /// `goal minimize X in rel(...)`
    Minimize,
    /// `goal maximize X in rel(...)`
    Maximize,
    /// `goal satisfy` — find any solution meeting all constraints.
    Satisfy,
}

/// A `goal` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalDecl {
    /// Minimize, maximize or satisfy.
    pub kind: GoalKind,
    /// The goal variable named in the declaration (e.g. `C`).
    pub var: String,
    /// The predicate the goal variable is read from (e.g. `hostStdevCpu(C)`).
    pub relation: Predicate,
}

/// A `var` declaration:
/// `var assign(Vid,Hid,V) forall toAssign(Vid,Hid).`
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// The solver table being declared (e.g. `assign(Vid,Hid,V)`).
    pub table: Predicate,
    /// The regular table whose rows the solver variables range over.
    pub forall: Predicate,
}

impl VarDecl {
    /// Positions of `table`'s arguments that are solver variables: the
    /// argument variables that do not appear in the `forall` predicate
    /// (Sec. 5.2: "V is a solver attribute of table assign, since V does not
    /// appear after forall").
    pub fn solver_positions(&self) -> Vec<usize> {
        let bound: Vec<&str> = self
            .forall
            .args
            .iter()
            .filter_map(|a| a.var_name())
            .collect();
        self.table
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a.var_name() {
                Some(v) if !bound.contains(&v) => Some(i),
                _ => None,
            })
            .collect()
    }
}

/// A constant appearing in a Colog program.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Floating-point constant.
    Float(f64),
    /// String constant.
    Str(String),
    /// A named program parameter (lowercase identifier such as
    /// `max_migrates`, `F_mindiff`, `cost_thres`); resolved at compile time
    /// from the [`crate::ProgramParams`].
    Param(String),
}

/// One argument of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A location specifier `@X`.
    Loc(String),
    /// A plain variable.
    Var(String),
    /// An aggregate over a variable, e.g. `SUM<C>`.
    Agg(AggFunc, String),
    /// A constant.
    Const(Literal),
}

impl Arg {
    /// The variable name carried by this argument (for `Loc`, `Var` and
    /// `Agg`), or `None` for constants.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Arg::Loc(v) | Arg::Var(v) => Some(v),
            Arg::Agg(_, v) => Some(v),
            Arg::Const(_) => None,
        }
    }

    /// True if the argument is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Arg::Agg(_, _))
    }
}

/// A predicate occurrence `name(arg1, ..., argn)`; if the first argument is a
/// location specifier `@X`, [`Predicate::location`] returns it.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Relation name.
    pub name: String,
    /// Arguments (the location specifier, when present, is `args[0]`).
    pub args: Vec<Arg>,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(name: &str, args: Vec<Arg>) -> Predicate {
        Predicate {
            name: name.to_string(),
            args,
        }
    }

    /// The location variable if the predicate carries a `@Loc` specifier.
    pub fn location(&self) -> Option<&str> {
        match self.args.first() {
            Some(Arg::Loc(v)) => Some(v),
            _ => None,
        }
    }

    /// True if any argument is an aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.args.iter().any(Arg::is_aggregate)
    }

    /// Variable names referenced by the predicate, in order of appearance.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.args {
            if let Some(v) = a.var_name() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }
}

/// Binary operators in Colog expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum COp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl COp {
    /// True for comparison operators (which yield booleans).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            COp::Eq | COp::Ne | COp::Lt | COp::Le | COp::Gt | COp::Ge
        )
    }
}

/// An expression in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A variable reference.
    Var(String),
    /// A literal constant or named parameter.
    Lit(Literal),
    /// Binary operation.
    Bin(COp, Box<CExpr>, Box<CExpr>),
    /// Absolute value `|e|`.
    Abs(Box<CExpr>),
    /// Unary negation `-e`.
    Neg(Box<CExpr>),
}

impl CExpr {
    /// Build a binary expression.
    pub fn bin(op: COp, lhs: CExpr, rhs: CExpr) -> CExpr {
        CExpr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Variables referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            CExpr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            CExpr::Lit(_) => {}
            CExpr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            CExpr::Abs(e) | CExpr::Neg(e) => e.collect_vars(out),
        }
    }

    /// True if the expression is a top-level comparison.
    pub fn is_comparison(&self) -> bool {
        matches!(self, CExpr::Bin(op, _, _) if op.is_comparison())
    }
}

/// One element of a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyElem {
    /// A predicate to be joined.
    Pred(Predicate),
    /// A boolean expression (selection in a regular rule; constraint template
    /// in a solver rule).
    Expr(CExpr),
    /// An assignment `X := expr` (regular rules only).
    Assign(String, CExpr),
}

/// `<-` (derivation) vs `->` (constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleArrow {
    /// `head <- body`: the body derives the head.
    Derivation,
    /// `head -> body`: whenever the head holds, the body must hold
    /// (an invariant the solver must maintain, Sec. 4.2).
    Constraint,
}

/// A Colog rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDecl {
    /// Rule label (`r1`, `d2`, `c3`, ...).
    pub label: String,
    /// Derivation or constraint.
    pub arrow: RuleArrow,
    /// Head predicate.
    pub head: Predicate,
    /// Body elements.
    pub body: Vec<BodyElem>,
}

impl RuleDecl {
    /// Names of relations referenced in the body.
    pub fn body_relations(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyElem::Pred(p) => Some(p.name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// All distinct location variables mentioned in head and body predicates.
    pub fn locations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |loc: Option<&str>| {
            if let Some(l) = loc {
                if !out.iter().any(|x| x == l) {
                    out.push(l.to_string());
                }
            }
        };
        push(self.head.location());
        for b in &self.body {
            if let BodyElem::Pred(p) = b {
                push(p.location());
            }
        }
        out
    }

    /// True if the rule spans more than one location (and therefore needs the
    /// localization rewrite of Sec. 5.5).
    pub fn is_distributed(&self) -> bool {
        self.locations().len() > 1
    }
}

/// A complete Colog program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Optional optimization goal (a program may also be pure Datalog).
    pub goal: Option<GoalDecl>,
    /// Solver variable declarations.
    pub vars: Vec<VarDecl>,
    /// Rules, in source order.
    pub rules: Vec<RuleDecl>,
}

impl Program {
    /// Number of rules plus declarations — the unit reported in the
    /// "Colog" column of Table 2 of the paper.
    pub fn num_rules(&self) -> usize {
        self.rules.len() + self.vars.len() + usize::from(self.goal.is_some())
    }

    /// Find a rule by label.
    pub fn rule(&self, label: &str) -> Option<&RuleDecl> {
        self.rules.iter().find(|r| r.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign_var_decl() -> VarDecl {
        VarDecl {
            table: Predicate::new(
                "assign",
                vec![
                    Arg::Var("Vid".into()),
                    Arg::Var("Hid".into()),
                    Arg::Var("V".into()),
                ],
            ),
            forall: Predicate::new(
                "toAssign",
                vec![Arg::Var("Vid".into()), Arg::Var("Hid".into())],
            ),
        }
    }

    #[test]
    fn var_decl_solver_positions() {
        assert_eq!(assign_var_decl().solver_positions(), vec![2]);
    }

    #[test]
    fn predicate_location_and_vars() {
        let p = Predicate::new(
            "migVm",
            vec![
                Arg::Loc("X".into()),
                Arg::Var("Y".into()),
                Arg::Var("D".into()),
                Arg::Var("R".into()),
            ],
        );
        assert_eq!(p.location(), Some("X"));
        assert_eq!(p.variables(), vec!["X", "Y", "D", "R"]);
        assert!(!p.has_aggregate());
        let agg = Predicate::new(
            "hostCpu",
            vec![Arg::Var("Hid".into()), Arg::Agg(AggFunc::Sum, "C".into())],
        );
        assert!(agg.has_aggregate());
        assert_eq!(agg.location(), None);
    }

    #[test]
    fn rule_locations_and_distribution() {
        let rule = RuleDecl {
            label: "d2".into(),
            arrow: RuleArrow::Derivation,
            head: Predicate::new(
                "nborNextVm",
                vec![Arg::Loc("X".into()), Arg::Var("Y".into())],
            ),
            body: vec![
                BodyElem::Pred(Predicate::new(
                    "link",
                    vec![Arg::Loc("Y".into()), Arg::Var("X".into())],
                )),
                BodyElem::Pred(Predicate::new(
                    "curVm",
                    vec![Arg::Loc("Y".into()), Arg::Var("D".into())],
                )),
            ],
        };
        assert_eq!(rule.locations(), vec!["X", "Y"]);
        assert!(rule.is_distributed());
        assert_eq!(rule.body_relations(), vec!["link", "curVm"]);
    }

    #[test]
    fn expression_helpers() {
        let e = CExpr::bin(
            COp::Eq,
            CExpr::Var("C".into()),
            CExpr::bin(COp::Mul, CExpr::Var("V".into()), CExpr::Var("Cpu".into())),
        );
        assert!(e.is_comparison());
        assert_eq!(e.variables(), vec!["C", "V", "Cpu"]);
        let abs = CExpr::Abs(Box::new(CExpr::bin(
            COp::Sub,
            CExpr::Var("C1".into()),
            CExpr::Var("C2".into()),
        )));
        assert_eq!(abs.variables(), vec!["C1", "C2"]);
        assert!(!abs.is_comparison());
    }

    #[test]
    fn program_counts_declarations() {
        let mut p = Program::default();
        assert_eq!(p.num_rules(), 0);
        p.vars.push(assign_var_decl());
        p.goal = Some(GoalDecl {
            kind: GoalKind::Minimize,
            var: "C".into(),
            relation: Predicate::new("hostStdevCpu", vec![Arg::Var("C".into())]),
        });
        assert_eq!(p.num_rules(), 2);
        assert!(p.rule("r1").is_none());
    }
}
