//! Imperative code generation.
//!
//! Cologne compiles Colog programs into C++ that runs inside RapidNet (rule
//! dataflows, message handlers) and Gecode (variable/constraint posting,
//! branch-and-bound setup). Table 2 of the paper compares the number of
//! Colog rules against the lines of generated C++ — roughly two orders of
//! magnitude more code — to argue for the compactness of the declarative
//! specification.
//!
//! This module regenerates that comparison: it emits the equivalent
//! imperative C++ for a parsed program (tuple classes, per-rule delta
//! handlers, localization/message marshaling for distributed rules, Gecode
//! model construction for solver rules) and counts its physical source lines
//! the way `sloccount` does (non-blank, non-comment lines).

use std::collections::BTreeSet;

use crate::analysis::{Analysis, RuleClass};
use crate::ast::{Arg, BodyElem, GoalKind, Predicate, Program, RuleDecl};

/// The generated imperative program.
#[derive(Debug, Clone)]
pub struct GeneratedCode {
    /// C++ source text.
    pub cpp: String,
}

impl GeneratedCode {
    /// Count physical source lines (`sloccount` style: non-blank lines that
    /// are not pure comments).
    pub fn loc(&self) -> usize {
        count_loc(&self.cpp)
    }
}

/// Count non-blank, non-comment lines of C/C++-like source.
pub fn count_loc(code: &str) -> usize {
    code.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && *l != "*/")
        .count()
}

fn relation_names(program: &Program) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    if let Some(goal) = &program.goal {
        names.insert(goal.relation.name.clone());
    }
    for v in &program.vars {
        names.insert(v.table.name.clone());
        names.insert(v.forall.name.clone());
    }
    for r in &program.rules {
        names.insert(r.head.name.clone());
        for b in &r.body {
            if let BodyElem::Pred(p) = b {
                names.insert(p.name.clone());
            }
        }
    }
    names
}

fn arity_of(program: &Program, relation: &str) -> usize {
    let check = |p: &Predicate| {
        if p.name == relation {
            Some(p.args.len())
        } else {
            None
        }
    };
    for r in &program.rules {
        if let Some(a) = check(&r.head) {
            return a;
        }
        for b in &r.body {
            if let BodyElem::Pred(p) = b {
                if let Some(a) = check(p) {
                    return a;
                }
            }
        }
    }
    for v in &program.vars {
        if let Some(a) = check(&v.table).or_else(|| check(&v.forall)) {
            return a;
        }
    }
    if let Some(goal) = &program.goal {
        if let Some(a) = check(&goal.relation) {
            return a;
        }
    }
    1
}

fn emit_tuple_class(out: &mut String, relation: &str, arity: usize) {
    let fields: Vec<String> = (0..arity).map(|i| format!("attr{i}")).collect();
    out.push_str(&format!(
        "class {relation}Tuple : public rapidnet::Tuple {{\n"
    ));
    out.push_str("public:\n");
    for f in &fields {
        out.push_str(&format!("  rapidnet::ValuePtr {f};\n"));
    }
    out.push_str(&format!("  {relation}Tuple() {{}}\n"));
    out.push_str(&format!(
        "  explicit {relation}Tuple(const std::vector<rapidnet::ValuePtr>& attrs) {{\n"
    ));
    for (i, f) in fields.iter().enumerate() {
        out.push_str(&format!("    {f} = attrs[{i}];\n"));
    }
    out.push_str("  }\n");
    out.push_str("  std::string ToString() const {\n");
    out.push_str("    std::ostringstream os;\n");
    out.push_str(&format!("    os << \"{relation}(\""));
    for f in &fields {
        out.push_str(&format!(" << {f}->ToString() << \",\""));
    }
    out.push_str(" << \")\";\n");
    out.push_str("    return os.str();\n");
    out.push_str("  }\n");
    out.push_str("  bool Equals(const rapidnet::Tuple& other) const;\n");
    out.push_str("  uint32_t HashCode() const;\n");
    out.push_str("};\n\n");
    out.push_str(&format!(
        "bool {relation}Tuple::Equals(const rapidnet::Tuple& other) const {{\n"
    ));
    out.push_str(&format!(
        "  const {relation}Tuple* o = dynamic_cast<const {relation}Tuple*>(&other);\n"
    ));
    out.push_str("  if (o == NULL) return false;\n");
    for f in &fields {
        out.push_str(&format!("  if (!{f}->Equals(*o->{f})) return false;\n"));
    }
    out.push_str("  return true;\n");
    out.push_str("}\n\n");
}

fn pred_args_comment(p: &Predicate) -> String {
    let args: Vec<String> = p
        .args
        .iter()
        .map(|a| match a {
            Arg::Loc(v) => format!("@{v}"),
            Arg::Var(v) => v.clone(),
            Arg::Agg(f, v) => format!("{}<{v}>", f.keyword()),
            Arg::Const(_) => "const".to_string(),
        })
        .collect();
    format!("{}({})", p.name, args.join(","))
}

/// How the Datalog engine will evaluate a regular rule, mirroring the
/// classification in `cologne_datalog::Engine::add_rule`: rules with an
/// aggregate head or a repeated body relation are recomputed and diffed
/// against the previous output; everything else is maintained
/// incrementally with pipelined per-delta counting.
fn engine_eval_mode(rule: &RuleDecl) -> &'static str {
    let aggregate = rule.head.args.iter().any(|a| matches!(a, Arg::Agg(_, _)));
    let mut names: Vec<&str> = rule
        .body
        .iter()
        .filter_map(|b| match b {
            BodyElem::Pred(p) => Some(p.name.as_str()),
            _ => None,
        })
        .collect();
    names.sort_unstable();
    let repeats = names.windows(2).any(|w| w[0] == w[1]);
    if aggregate || repeats {
        "recompute-diff"
    } else {
        "pipelined-delta"
    }
}

fn emit_regular_rule(out: &mut String, rule: &RuleDecl) {
    let preds: Vec<&Predicate> = rule
        .body
        .iter()
        .filter_map(|b| match b {
            BodyElem::Pred(p) => Some(p),
            _ => None,
        })
        .collect();
    let exprs = rule.body.len() - preds.len();
    out.push_str(&format!(
        "// rule {}: {} <- ...  [engine: {}]\n",
        rule.label,
        pred_args_comment(&rule.head),
        engine_eval_mode(rule)
    ));
    for (ti, trigger) in preds.iter().enumerate() {
        out.push_str(&format!(
            "void {}Runtime::Rule_{}_Delta{}(Ptr<{}Tuple> delta) {{\n",
            rule_class_name(rule),
            rule.label,
            ti,
            trigger.name
        ));
        out.push_str("  // join the delta tuple with the remaining body relations\n");
        let mut indent = String::from("  ");
        for (oi, other) in preds.iter().enumerate() {
            if oi == ti {
                continue;
            }
            out.push_str(&format!(
                "{indent}RelationIterator<{0}Tuple> it{oi} = m_{0}Table->Begin();\n",
                other.name
            ));
            out.push_str(&format!(
                "{indent}for (; !it{oi}.AtEnd(); it{oi}.Next()) {{\n"
            ));
            indent.push_str("  ");
            out.push_str(&format!(
                "{indent}Ptr<{0}Tuple> t{oi} = it{oi}.Current();\n",
                other.name
            ));
            for v in other.variables().iter().take(2) {
                out.push_str(&format!(
                    "{indent}if (!JoinAttributeMatches(delta, t{oi}, \"{v}\")) continue;\n"
                ));
            }
        }
        for k in 0..exprs {
            out.push_str(&format!(
                "{indent}if (!EvaluateSelection_{}_{k}(bindings)) continue;\n",
                rule.label
            ));
        }
        out.push_str(&format!(
            "{indent}Ptr<{}Tuple> head = Create<{}Tuple>(ProjectHeadAttributes(bindings));\n",
            rule.head.name, rule.head.name
        ));
        if rule.head.location().is_some() {
            out.push_str(&format!(
                "{indent}rapidnet::Address dest = ResolveLocationSpecifier(head);\n"
            ));
            out.push_str(&format!("{indent}if (dest != GetAddress()) {{\n"));
            out.push_str(&format!("{indent}  SendTuple(dest, head);\n"));
            out.push_str(&format!("{indent}}} else {{\n"));
            out.push_str(&format!(
                "{indent}  m_{}Table->Insert(head);\n",
                rule.head.name
            ));
            out.push_str(&format!("{indent}}}\n"));
        } else {
            out.push_str(&format!(
                "{indent}m_{}Table->Insert(head);\n",
                rule.head.name
            ));
        }
        for _ in 1..preds.len() {
            indent.truncate(indent.len() - 2);
            out.push_str(&format!("{indent}}}\n"));
        }
        out.push_str("}\n\n");
        // deletion handler mirrors the insertion handler
        out.push_str(&format!(
            "void {}Runtime::Rule_{}_Delete{}(Ptr<{}Tuple> delta) {{\n",
            rule_class_name(rule),
            rule.label,
            ti,
            trigger.name
        ));
        out.push_str("  // counting view maintenance: retract derivations that used delta\n");
        out.push_str(&format!(
            "  std::vector<Ptr<{}Tuple>> affected = RederiveWithout(delta);\n",
            rule.head.name
        ));
        out.push_str("  for (size_t i = 0; i < affected.size(); ++i) {\n");
        out.push_str(&format!(
            "    m_{}Table->DecrementCount(affected[i]);\n",
            rule.head.name
        ));
        out.push_str("  }\n");
        out.push_str("}\n\n");
    }
}

fn emit_solver_rule(out: &mut String, rule: &RuleDecl, class: RuleClass) {
    let preds: Vec<&Predicate> = rule
        .body
        .iter()
        .filter_map(|b| match b {
            BodyElem::Pred(p) => Some(p),
            _ => None,
        })
        .collect();
    let exprs: Vec<&BodyElem> = rule
        .body
        .iter()
        .filter(|b| matches!(b, BodyElem::Expr(_)))
        .collect();
    let kind = match class {
        RuleClass::SolverDerivation => "derivation",
        RuleClass::SolverConstraint => "constraint",
        RuleClass::Regular => "regular",
    };
    out.push_str(&format!(
        "// solver {kind} rule {}: {}\n",
        rule.label,
        pred_args_comment(&rule.head)
    ));
    out.push_str(&format!(
        "void {}Model::Post_{}(Gecode::Space& home) {{\n",
        rule_class_name(rule),
        rule.label
    ));
    out.push_str("  // enumerate the regular bindings of the rule body\n");
    let mut indent = String::from("  ");
    for (oi, p) in preds.iter().enumerate() {
        out.push_str(&format!(
            "{indent}RelationIterator<{0}Tuple> it{oi} = m_{0}Table->Begin();\n",
            p.name
        ));
        out.push_str(&format!(
            "{indent}for (; !it{oi}.AtEnd(); it{oi}.Next()) {{\n"
        ));
        indent.push_str("  ");
        out.push_str(&format!(
            "{indent}Ptr<{0}Tuple> t{oi} = it{oi}.Current();\n",
            p.name
        ));
        out.push_str(&format!(
            "{indent}Gecode::IntVarArgs vars{oi} = LookupSolverVars(t{oi});\n"
        ));
    }
    for (k, _) in exprs.iter().enumerate() {
        out.push_str(&format!(
            "{indent}Gecode::LinIntExpr e{k} = TranslateExpression_{}_{k}(bindings);\n",
            rule.label
        ));
        out.push_str(&format!("{indent}Gecode::rel(home, e{k});\n"));
    }
    if rule.head.has_aggregate() {
        out.push_str(&format!(
            "{indent}AccumulateAggregate(home, groupKey, contributions);\n"
        ));
    }
    if class == RuleClass::SolverDerivation {
        out.push_str(&format!(
            "{indent}Gecode::IntVar derived = RegisterDerivedVariable(home, \"{}\");\n",
            rule.head.name
        ));
        out.push_str(&format!(
            "{indent}Gecode::rel(home, derived == AggregateExpression(contributions));\n"
        ));
        out.push_str(&format!(
            "{indent}MaterializeHeadTuple(m_{}Table, groupKey, derived);\n",
            rule.head.name
        ));
    } else {
        out.push_str(&format!(
            "{indent}Gecode::rel(home, ConstraintExpression(bindings));\n"
        ));
    }
    for _ in &preds {
        indent.truncate(indent.len() - 2);
        out.push_str(&format!("{indent}}}\n"));
    }
    out.push_str("}\n\n");
    if rule.is_distributed() {
        out.push_str(&format!(
            "void {}Runtime::Recv_{}(Ptr<Packet> packet, rapidnet::Address from) {{\n",
            rule_class_name(rule),
            rule.label
        ));
        out.push_str("  rapidnet::TupleHeader header;\n");
        out.push_str("  packet->RemoveHeader(header);\n");
        out.push_str(&format!(
            "  Ptr<tmp_{}Tuple> tuple = Deserialize<tmp_{}Tuple>(packet);\n",
            rule.label, rule.label
        ));
        out.push_str(&format!("  m_tmp_{}Table->Insert(tuple);\n", rule.label));
        out.push_str("  ScheduleLocalReevaluation();\n");
        out.push_str("}\n\n");
    }
}

fn rule_class_name(rule: &RuleDecl) -> String {
    let mut name = rule.head.name.clone();
    if let Some(first) = name.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    name
}

/// Generate the equivalent imperative C++ for a Colog program.
pub fn generate_cpp(program: &Program, analysis: &Analysis, program_name: &str) -> GeneratedCode {
    let mut out = String::new();
    out.push_str(&format!(
        "// Auto-generated RapidNet + Gecode C++ for program '{program_name}'.\n"
    ));
    out.push_str("// Equivalent imperative implementation of the Colog specification.\n");
    out.push_str("#include <map>\n#include <set>\n#include <sstream>\n#include <string>\n#include <vector>\n");
    out.push_str("#include \"ns3/rapidnet-module.h\"\n");
    out.push_str(
        "#include <gecode/int.hh>\n#include <gecode/search.hh>\n#include <gecode/minimodel.hh>\n\n",
    );
    out.push_str(&format!("namespace {program_name} {{\n\n"));

    // Tuple classes per relation.
    for rel in relation_names(program) {
        emit_tuple_class(&mut out, &rel, arity_of(program, &rel));
    }

    // Application class boilerplate.
    let class_name = {
        let mut n = program_name.to_string();
        if let Some(first) = n.get_mut(0..1) {
            first.make_ascii_uppercase();
        }
        n
    };
    out.push_str(&format!(
        "class {class_name}Runtime : public rapidnet::RapidNetApplicationBase {{\n"
    ));
    out.push_str("public:\n");
    out.push_str("  static TypeId GetTypeId();\n");
    out.push_str(&format!("  {class_name}Runtime();\n"));
    out.push_str(&format!("  virtual ~{class_name}Runtime();\n"));
    out.push_str("  virtual void StartApplication();\n");
    out.push_str("  virtual void StopApplication();\n");
    out.push_str("  void InvokeSolver();\n");
    out.push_str("  void PeriodicTimerExpired();\n");
    for rel in relation_names(program) {
        out.push_str(&format!("  Ptr<rapidnet::RelationBase> m_{rel}Table;\n"));
    }
    out.push_str("private:\n");
    out.push_str("  Gecode::Space* m_space;\n");
    out.push_str("  EventId m_periodicTimer;\n");
    out.push_str("};\n\n");
    out.push_str(&format!(
        "void {class_name}Runtime::StartApplication() {{\n"
    ));
    for rel in relation_names(program) {
        out.push_str(&format!(
            "  m_{rel}Table = CreateRelation(\"{rel}\", {});\n",
            arity_of(program, &rel)
        ));
    }
    out.push_str("  m_periodicTimer = Simulator::Schedule(Seconds(PERIODIC_INTERVAL),\n");
    out.push_str(&format!(
        "      &{class_name}Runtime::PeriodicTimerExpired, this);\n"
    ));
    out.push_str("}\n\n");

    // Rules.
    for (idx, rule) in program.rules.iter().enumerate() {
        match analysis.class_of(idx) {
            RuleClass::Regular => emit_regular_rule(&mut out, rule),
            class => emit_solver_rule(&mut out, rule, class),
        }
    }

    // Goal / solver invocation glue.
    if let Some(goal) = &program.goal {
        out.push_str(&format!(
            "class {class_name}Model : public Gecode::IntMinimizeSpace {{\n"
        ));
        out.push_str("public:\n");
        out.push_str("  Gecode::IntVarArray m_decisionVars;\n");
        out.push_str("  Gecode::IntVar m_objective;\n");
        for v in &program.vars {
            out.push_str(&format!(
                "  // var {} forall {}\n",
                pred_args_comment(&v.table),
                pred_args_comment(&v.forall)
            ));
            out.push_str(&format!(
                "  void Declare_{}(Gecode::Space& home, Ptr<rapidnet::RelationBase> forallTable);\n",
                v.table.name
            ));
        }
        out.push_str("  virtual Gecode::IntVar cost() const { return m_objective; }\n");
        out.push_str("  virtual Gecode::Space* copy() { return new ");
        out.push_str(&format!("{class_name}Model(*this); }}\n"));
        out.push_str("};\n\n");
        out.push_str(&format!("void {class_name}Runtime::InvokeSolver() {{\n"));
        out.push_str(&format!(
            "  {class_name}Model* model = new {class_name}Model();\n"
        ));
        for v in &program.vars {
            out.push_str(&format!(
                "  model->Declare_{}(*model, m_{}Table);\n",
                v.table.name, v.forall.name
            ));
        }
        for (idx, rule) in program.rules.iter().enumerate() {
            if analysis.class_of(idx) != RuleClass::Regular {
                out.push_str(&format!("  model->Post_{}(*model);\n", rule.label));
            }
        }
        let engine = match goal.kind {
            GoalKind::Minimize | GoalKind::Maximize => "Gecode::BAB",
            GoalKind::Satisfy => "Gecode::DFS",
        };
        out.push_str("  Gecode::Search::Options options;\n");
        out.push_str("  options.stop = Gecode::Search::Stop::time(SOLVER_MAX_TIME);\n");
        out.push_str(&format!(
            "  {engine}<{class_name}Model> search(model, options);\n"
        ));
        out.push_str(&format!("  {class_name}Model* best = NULL;\n"));
        out.push_str(&format!(
            "  while ({class_name}Model* sol = search.next()) {{\n"
        ));
        out.push_str("    delete best;\n");
        out.push_str("    best = sol;\n");
        out.push_str("  }\n");
        out.push_str("  if (best != NULL) {\n");
        for v in &program.vars {
            out.push_str(&format!(
                "    MaterializeSolution(m_{}Table, best->m_decisionVars);\n",
                v.table.name
            ));
        }
        out.push_str(&format!(
            "    MaterializeObjective(m_{}Table, best->m_objective);\n",
            goal.relation.name
        ));
        out.push_str("    delete best;\n");
        out.push_str("  }\n");
        out.push_str("  delete model;\n");
        out.push_str("}\n\n");
    }

    out.push_str(&format!("}} // namespace {program_name}\n"));
    GeneratedCode { cpp: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_program;

    const ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
        d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
        c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
    "#;

    #[test]
    fn loc_counter_ignores_blank_and_comment_lines() {
        let code = "// comment\n\nint x = 1;\n  // indented comment\nint y = 2;\n";
        assert_eq!(count_loc(code), 2);
    }

    #[test]
    fn generated_code_is_orders_of_magnitude_larger() {
        let program = parse_program(ACLOUD).unwrap();
        let analysis = analyze(&program).unwrap();
        let generated = generate_cpp(&program, &analysis, "acloud");
        let loc = generated.loc();
        let rules = program.num_rules();
        assert!(rules >= 9);
        // Table 2 reports ~100x; require at least 40x to allow for structural
        // differences while still demonstrating the orders-of-magnitude gap.
        assert!(
            loc >= rules * 40,
            "generated {loc} LOC for {rules} rules (ratio {})",
            loc / rules
        );
        // and it should actually contain the expected artifacts
        assert!(generated.cpp.contains("class assignTuple"));
        assert!(generated.cpp.contains("Gecode::BAB"));
        assert!(generated.cpp.contains("InvokeSolver"));
    }

    #[test]
    fn distributed_rules_emit_message_handlers() {
        let src = r#"
            goal minimize C in aggCost(@X,C).
            var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D).
            d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
        "#;
        let program = parse_program(src).unwrap();
        let analysis = analyze(&program).unwrap();
        let generated = generate_cpp(&program, &analysis, "followsun");
        assert!(generated.cpp.contains("Recv_d2"));
        assert!(generated.cpp.contains("Deserialize"));
    }

    #[test]
    fn bigger_programs_generate_more_code() {
        let small = parse_program("r1 path(X,Y) <- link(X,Y).").unwrap();
        let small_an = analyze(&small).unwrap();
        let small_loc = generate_cpp(&small, &small_an, "tiny").loc();
        let big = parse_program(ACLOUD).unwrap();
        let big_an = analyze(&big).unwrap();
        let big_loc = generate_cpp(&big, &big_an, "acloud").loc();
        assert!(big_loc > small_loc);
    }
}
