//! Static analysis of Colog programs (Sec. 5.2 of the paper).
//!
//! The compiler must know, for every rule, whether it is a regular Datalog
//! rule (executed by the incremental engine), a solver derivation rule or a
//! solver constraint rule (both compiled into constraint-solver primitives).
//! The analysis starts from the `var` declarations, propagates "solver
//! attribute" marks through derivation rules until a fixpoint, and then
//! classifies each rule. It also rejects programs that join on solver
//! attributes, which Cologne disallows (Sec. 5.3).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Arg, BodyElem, Program, RuleArrow, RuleDecl};

/// Classification of a rule after analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleClass {
    /// Plain distributed-Datalog rule.
    Regular,
    /// Solver derivation rule (`<-` involving solver tables).
    SolverDerivation,
    /// Solver constraint rule (`->`).
    SolverConstraint,
}

/// Per-relation solver-attribute information.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverTables {
    /// relation name → per-position flag (true = solver attribute).
    tables: BTreeMap<String, Vec<bool>>,
}

impl SolverTables {
    /// True if the relation contains at least one solver attribute.
    pub fn is_solver_table(&self, relation: &str) -> bool {
        self.tables
            .get(relation)
            .is_some_and(|ps| ps.iter().any(|&b| b))
    }

    /// Solver-attribute flags for a relation (empty if not a solver table).
    pub fn positions(&self, relation: &str) -> Vec<bool> {
        self.tables.get(relation).cloned().unwrap_or_default()
    }

    /// Names of all solver tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .iter()
            .filter(|(_, ps)| ps.iter().any(|&b| b))
            .map(|(n, _)| n.clone())
            .collect()
    }

    fn mark(&mut self, relation: &str, position: usize, arity: usize) -> bool {
        let entry = self
            .tables
            .entry(relation.to_string())
            .or_insert_with(|| vec![false; arity]);
        if entry.len() < arity {
            entry.resize(arity, false);
        }
        if !entry[position] {
            entry[position] = true;
            true
        } else {
            false
        }
    }
}

/// Result of analysing a program.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// One class per rule, parallel to `program.rules`.
    pub classes: Vec<RuleClass>,
    /// Solver-attribute information per relation.
    pub solver_tables: SolverTables,
}

impl Analysis {
    /// Class of the rule at `index`.
    pub fn class_of(&self, index: usize) -> RuleClass {
        self.classes[index]
    }

    /// Indices of the rules in `class`, in source order. The runtime's
    /// grounding plan uses this to schedule solver rules without rescanning
    /// the whole program on every invocation.
    pub fn rules_in_class(&self, class: RuleClass) -> impl Iterator<Item = usize> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(move |(_, c)| **c == class)
            .map(|(i, _)| i)
    }

    /// Number of rules per class: `(regular, derivation, constraint)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.classes {
            match c {
                RuleClass::Regular => counts.0 += 1,
                RuleClass::SolverDerivation => counts.1 += 1,
                RuleClass::SolverConstraint => counts.2 += 1,
            }
        }
        counts
    }
}

/// Errors detected by the static analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The goal variable does not appear in the goal relation's arguments.
    GoalVariableNotInRelation { variable: String, relation: String },
    /// A `forall` predicate references a variable that does not appear in the
    /// declared solver table.
    ForallVariableUnknown { variable: String, table: String },
    /// A constraint rule (`->`) does not reference any solver table.
    ConstraintWithoutSolverTable { label: String },
    /// Two body predicates join on a solver attribute, which Cologne forbids
    /// (Sec. 5.3).
    JoinOnSolverAttribute { label: String, variable: String },
    /// A body predicate uses an aggregate argument (aggregates are only
    /// allowed in rule heads).
    AggregateInBody { label: String, relation: String },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::GoalVariableNotInRelation { variable, relation } => {
                write!(f, "goal variable {variable} does not appear in {relation}")
            }
            AnalysisError::ForallVariableUnknown { variable, table } => {
                write!(
                    f,
                    "forall variable {variable} does not appear in solver table {table}"
                )
            }
            AnalysisError::ConstraintWithoutSolverTable { label } => {
                write!(f, "constraint rule {label} references no solver table")
            }
            AnalysisError::JoinOnSolverAttribute { label, variable } => {
                write!(f, "rule {label} joins on solver attribute {variable}")
            }
            AnalysisError::AggregateInBody { label, relation } => {
                write!(
                    f,
                    "rule {label} uses an aggregate inside body predicate {relation}"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Run the static analysis over a program.
pub fn analyze(program: &Program) -> Result<Analysis, AnalysisError> {
    validate_declarations(program)?;

    let mut tables = SolverTables::default();
    // Step 1: initial solver variables from `var` declarations.
    for var in &program.vars {
        let arity = var.table.args.len();
        for pos in var.solver_positions() {
            tables.mark(&var.table.name, pos, arity);
        }
    }

    // Step 2: propagate through derivation rules until fixpoint.
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if rule.arrow != RuleArrow::Derivation {
                continue;
            }
            let symbolic = symbolic_variables(rule, &tables);
            let arity = rule.head.args.len();
            for (i, arg) in rule.head.args.iter().enumerate() {
                let is_solver = match arg {
                    Arg::Var(v) => symbolic.contains(v),
                    Arg::Agg(_, v) => symbolic.contains(v),
                    Arg::Loc(_) | Arg::Const(_) => false,
                };
                if is_solver {
                    changed |= tables.mark(&rule.head.name, i, arity);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Step 3: classification + error checks.
    let mut classes = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        check_no_body_aggregates(rule)?;
        let body_touches_solver = rule
            .body
            .iter()
            .any(|b| matches!(b, BodyElem::Pred(p) if tables.is_solver_table(&p.name)));
        let head_is_solver = tables.is_solver_table(&rule.head.name);
        let class = match rule.arrow {
            RuleArrow::Constraint => {
                if !body_touches_solver && !head_is_solver {
                    return Err(AnalysisError::ConstraintWithoutSolverTable {
                        label: rule.label.clone(),
                    });
                }
                RuleClass::SolverConstraint
            }
            RuleArrow::Derivation => {
                if head_is_solver || body_touches_solver {
                    check_no_solver_join(rule, &tables)?;
                    RuleClass::SolverDerivation
                } else {
                    RuleClass::Regular
                }
            }
        };
        classes.push(class);
    }

    Ok(Analysis {
        classes,
        solver_tables: tables,
    })
}

fn validate_declarations(program: &Program) -> Result<(), AnalysisError> {
    if let Some(goal) = &program.goal {
        let vars = goal.relation.variables();
        if !vars.iter().any(|v| v == &goal.var) {
            return Err(AnalysisError::GoalVariableNotInRelation {
                variable: goal.var.clone(),
                relation: goal.relation.name.clone(),
            });
        }
    }
    for var in &program.vars {
        let table_vars = var.table.variables();
        for fv in var.forall.variables() {
            if !table_vars.contains(&fv) {
                return Err(AnalysisError::ForallVariableUnknown {
                    variable: fv,
                    table: var.table.name.clone(),
                });
            }
        }
    }
    Ok(())
}

fn check_no_body_aggregates(rule: &RuleDecl) -> Result<(), AnalysisError> {
    for b in &rule.body {
        if let BodyElem::Pred(p) = b {
            if p.has_aggregate() {
                return Err(AnalysisError::AggregateInBody {
                    label: rule.label.clone(),
                    relation: p.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Variables of the rule whose values are solver expressions.
///
/// A variable is symbolic if it is bound by a solver-attribute position of a
/// body predicate, or if it appears in a comparison expression together with
/// a symbolic variable while not being bound by any regular position (the
/// transitive case of Sec. 5.2: `C` in `C == V*Cpu`).
pub fn symbolic_variables(rule: &RuleDecl, tables: &SolverTables) -> BTreeSet<String> {
    let mut symbolic: BTreeSet<String> = BTreeSet::new();
    let mut regular_bound: BTreeSet<String> = BTreeSet::new();
    for b in &rule.body {
        if let BodyElem::Pred(p) = b {
            let flags = tables.positions(&p.name);
            for (i, arg) in p.args.iter().enumerate() {
                if let Some(v) = arg.var_name() {
                    if flags.get(i).copied().unwrap_or(false) {
                        symbolic.insert(v.to_string());
                    } else {
                        regular_bound.insert(v.to_string());
                    }
                }
            }
        }
    }
    // A variable bound by a regular position is never symbolic, even if it
    // also appears next to solver attributes.
    symbolic.retain(|v| !regular_bound.contains(v));
    // Transitive marking through expressions.
    loop {
        let mut changed = false;
        for b in &rule.body {
            if let BodyElem::Expr(e) = b {
                let vars = e.variables();
                if vars.iter().any(|v| symbolic.contains(v)) {
                    for v in vars {
                        if !regular_bound.contains(&v) && symbolic.insert(v) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    symbolic
}

fn check_no_solver_join(rule: &RuleDecl, tables: &SolverTables) -> Result<(), AnalysisError> {
    // A join on a solver attribute means the same variable appears in
    // solver-attribute positions of two different body predicates.
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (pi, b) in rule.body.iter().enumerate() {
        if let BodyElem::Pred(p) = b {
            let flags = tables.positions(&p.name);
            for (i, arg) in p.args.iter().enumerate() {
                if !flags.get(i).copied().unwrap_or(false) {
                    continue;
                }
                if let Some(v) = arg.var_name() {
                    if let Some(&prev) = seen.get(v) {
                        if prev != pi {
                            return Err(AnalysisError::JoinOnSolverAttribute {
                                label: rule.label.clone(),
                                variable: v.to_string(),
                            });
                        }
                    } else {
                        seen.insert(v.to_string(), pi);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
        d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
        c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
    "#;

    #[test]
    fn acloud_solver_tables_match_paper() {
        // Sec. 5.2: assign, hostCpu, hostStdevCpu, assignCount, hostMem are
        // identified as solver tables.
        let program = parse_program(ACLOUD).unwrap();
        let analysis = analyze(&program).unwrap();
        let names = analysis.solver_tables.table_names();
        assert_eq!(
            names,
            vec![
                "assign",
                "assignCount",
                "hostCpu",
                "hostMem",
                "hostStdevCpu"
            ]
        );
        // toAssign, vm, host are regular
        assert!(!analysis.solver_tables.is_solver_table("toAssign"));
        assert!(!analysis.solver_tables.is_solver_table("vm"));
    }

    #[test]
    fn acloud_rule_classification_matches_paper() {
        let program = parse_program(ACLOUD).unwrap();
        let analysis = analyze(&program).unwrap();
        let class = |label: &str| {
            let idx = program.rules.iter().position(|r| r.label == label).unwrap();
            analysis.class_of(idx)
        };
        assert_eq!(class("r1"), RuleClass::Regular);
        for d in ["d1", "d2", "d3", "d4"] {
            assert_eq!(class(d), RuleClass::SolverDerivation, "{d}");
        }
        for c in ["c1", "c2"] {
            assert_eq!(class(c), RuleClass::SolverConstraint, "{c}");
        }
        assert_eq!(analysis.class_counts(), (1, 4, 2));
    }

    #[test]
    fn acloud_solver_positions() {
        let program = parse_program(ACLOUD).unwrap();
        let analysis = analyze(&program).unwrap();
        // assign(Vid,Hid,V): only V
        assert_eq!(
            analysis.solver_tables.positions("assign"),
            vec![false, false, true]
        );
        // hostCpu(Hid,SUM<C>): C symbolic through C==V*Cpu
        assert_eq!(
            analysis.solver_tables.positions("hostCpu"),
            vec![false, true]
        );
        // hostStdevCpu(STDEV<C>)
        assert_eq!(analysis.solver_tables.positions("hostStdevCpu"), vec![true]);
        // assignCount(Vid,SUM<V>)
        assert_eq!(
            analysis.solver_tables.positions("assignCount"),
            vec![false, true]
        );
    }

    #[test]
    fn migration_extension_rules_are_solver_rules() {
        let src = format!(
            "{ACLOUD}
            d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
            d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
            c3 migrateCount(C) -> C<=max_migrates.
        "
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze(&program).unwrap();
        assert!(analysis.solver_tables.is_solver_table("migrate"));
        assert!(analysis.solver_tables.is_solver_table("migrateCount"));
        // C in migrate is position 3
        assert_eq!(
            analysis.solver_tables.positions("migrate"),
            vec![false, false, false, true]
        );
        let c3_idx = program.rules.iter().position(|r| r.label == "c3").unwrap();
        assert_eq!(analysis.class_of(c3_idx), RuleClass::SolverConstraint);
    }

    #[test]
    fn goal_variable_must_appear() {
        let src = "goal minimize X in cost(C).";
        let program = parse_program(src).unwrap();
        assert!(matches!(
            analyze(&program),
            Err(AnalysisError::GoalVariableNotInRelation { .. })
        ));
    }

    #[test]
    fn forall_variables_must_be_subset() {
        let src = "var assign(X,V) forall toAssign(X,Y).";
        let program = parse_program(src).unwrap();
        assert!(matches!(
            analyze(&program),
            Err(AnalysisError::ForallVariableUnknown { .. })
        ));
    }

    #[test]
    fn constraint_without_solver_table_rejected() {
        let src = "c1 load(X) -> X==1.";
        let program = parse_program(src).unwrap();
        assert!(matches!(
            analyze(&program),
            Err(AnalysisError::ConstraintWithoutSolverTable { .. })
        ));
    }

    #[test]
    fn join_on_solver_attribute_rejected() {
        let src = r#"
            var assign(X,V) forall nodes(X).
            d1 bad(X,Y) <- assign(X,V), other(Y,V).
            d0 other(Y,V) <- assign(Y,V).
        "#;
        let program = parse_program(src).unwrap();
        assert!(matches!(
            analyze(&program),
            Err(AnalysisError::JoinOnSolverAttribute { .. })
        ));
    }

    #[test]
    fn pure_datalog_program_is_all_regular() {
        let src = r#"
            r1 path(X,Y) <- link(X,Y).
            r2 path(X,Z) <- link(X,Y), path(Y,Z).
        "#;
        let program = parse_program(src).unwrap();
        let analysis = analyze(&program).unwrap();
        assert_eq!(analysis.class_counts(), (2, 0, 0));
        assert!(analysis.solver_tables.table_names().is_empty());
    }

    #[test]
    fn wireless_distributed_program_analysis() {
        let src = r#"
            goal minimize C in totalCost(@X,C).
            var assign(@X,Y,C) forall setLink(@X,Y).
            d1 cost(@X,Y,Z,W,C) <- assign(@X,Y,C1), link(@Z,X), assign(@Z,W,C2),
               X!=W, Y!=W, Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
            d2 totalCost(@X,SUM<C>) <- cost(@X,Y,Z,W,C).
            c1 assign(@X,Y,C) -> primaryUser(@X,C2), C!=C2.
            r1 assign(@Y,X,C) <- assign(@X,Y,C).
        "#;
        let program = parse_program(src).unwrap();
        let analysis = analyze(&program).unwrap();
        assert!(analysis.solver_tables.is_solver_table("assign"));
        assert!(analysis.solver_tables.is_solver_table("cost"));
        assert!(analysis.solver_tables.is_solver_table("totalCost"));
        // r1 propagates channels: head is a solver table so it is a solver rule
        let r1_idx = program.rules.iter().position(|r| r.label == "r1").unwrap();
        assert_eq!(analysis.class_of(r1_idx), RuleClass::SolverDerivation);
        let (_, deriv, constr) = analysis.class_counts();
        assert_eq!(deriv, 3);
        assert_eq!(constr, 1);
    }

    #[test]
    fn aggregate_in_body_rejected() {
        let src = r#"
            var assign(X,V) forall nodes(X).
            d1 out(X) <- assign(X,SUM<V>).
        "#;
        let program = parse_program(src).unwrap();
        assert!(matches!(
            analyze(&program),
            Err(AnalysisError::AggregateInBody { .. })
        ));
    }
}
