//! Tokenizer for Colog source text.
//!
//! The surface syntax follows the Datalog conventions of the paper
//! (Sec. 4.1): predicate and function names start with a lowercase letter,
//! attribute (variable) names with an uppercase letter, aggregates are
//! written `SUM<C>`, rules end with a period, `//` starts a line comment, and
//! the two rule arrows are `<-` (derivation) and `->` (constraint).

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier starting with a lowercase letter (predicate names, named
    /// parameters, keywords such as `goal`, `var`, `minimize`, `forall`).
    LowerIdent(String),
    /// Identifier starting with an uppercase letter (variables, aggregate
    /// keywords).
    UpperIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `<-`
    DeriveArrow,
    /// `->`
    ConstraintArrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    LessEq,
    /// `>=`
    GreaterEq,
    /// `<`
    Less,
    /// `>`
    Greater,
    /// `:=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `|`
    Pipe,
}

/// A token together with its position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize Colog source.
pub fn tokenize(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    let err = |message: &str, line: usize, col: usize| LexError {
        message: message.to_string(),
        line,
        col,
    };

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize, n: usize| {
            for k in 0..n {
                if chars[*i + k] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
            }
            *i += n;
        };

        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col, 1);
            continue;
        }
        // line comments
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            while i < chars.len() && chars[i] != '\n' {
                advance(&mut i, &mut line, &mut col, 1);
            }
            continue;
        }
        // identifiers
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                advance(&mut i, &mut line, &mut col, 1);
            }
            let word: String = chars[start..i].iter().collect();
            let token = if word.chars().next().unwrap().is_ascii_uppercase() {
                Token::UpperIdent(word)
            } else {
                Token::LowerIdent(word)
            };
            out.push(Spanned {
                token,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // numbers
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && chars[i].is_ascii_digit() {
                advance(&mut i, &mut line, &mut col, 1);
            }
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                is_float = true;
                advance(&mut i, &mut line, &mut col, 1);
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            let text: String = chars[start..i].iter().collect();
            let token = if is_float {
                Token::Float(
                    text.parse()
                        .map_err(|_| err("invalid float", tline, tcol))?,
                )
            } else {
                Token::Int(
                    text.parse()
                        .map_err(|_| err("invalid integer", tline, tcol))?,
                )
            };
            out.push(Spanned {
                token,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // string literals
        if c == '"' {
            advance(&mut i, &mut line, &mut col, 1);
            let start = i;
            while i < chars.len() && chars[i] != '"' {
                advance(&mut i, &mut line, &mut col, 1);
            }
            if i >= chars.len() {
                return Err(err("unterminated string literal", tline, tcol));
            }
            let text: String = chars[start..i].iter().collect();
            advance(&mut i, &mut line, &mut col, 1); // closing quote
            out.push(Spanned {
                token: Token::Str(text),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // multi-char operators
        let two: Option<Token> = if i + 1 < chars.len() {
            match (c, chars[i + 1]) {
                ('<', '-') => Some(Token::DeriveArrow),
                ('-', '>') => Some(Token::ConstraintArrow),
                ('=', '=') => Some(Token::EqEq),
                ('!', '=') => Some(Token::NotEq),
                ('<', '=') => Some(Token::LessEq),
                ('>', '=') => Some(Token::GreaterEq),
                (':', '=') => Some(Token::Assign),
                _ => None,
            }
        } else {
            None
        };
        if let Some(tok) = two {
            advance(&mut i, &mut line, &mut col, 2);
            out.push(Spanned {
                token: tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        let single = match c {
            '@' => Token::At,
            '(' => Token::LParen,
            ')' => Token::RParen,
            ',' => Token::Comma,
            '.' => Token::Period,
            '<' => Token::Less,
            '>' => Token::Greater,
            '+' => Token::Plus,
            '-' => Token::Minus,
            '*' => Token::Star,
            '/' => Token::Slash,
            '|' => Token::Pipe,
            other => return Err(err(&format!("unexpected character '{other}'"), tline, tcol)),
        };
        advance(&mut i, &mut line, &mut col, 1);
        out.push(Spanned {
            token: single,
            line: tline,
            col: tcol,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn identifiers_case_split() {
        assert_eq!(
            toks("vm Vid hostCpu SUM"),
            vec![
                Token::LowerIdent("vm".into()),
                Token::UpperIdent("Vid".into()),
                Token::LowerIdent("hostCpu".into()),
                Token::UpperIdent("SUM".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("42 3.5 \"abc\""),
            vec![Token::Int(42), Token::Float(3.5), Token::Str("abc".into())]
        );
    }

    #[test]
    fn operators_including_arrows() {
        assert_eq!(
            toks("<- -> == != <= >= < > := + - * / | @ ( ) , ."),
            vec![
                Token::DeriveArrow,
                Token::ConstraintArrow,
                Token::EqEq,
                Token::NotEq,
                Token::LessEq,
                Token::GreaterEq,
                Token::Less,
                Token::Greater,
                Token::Assign,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Pipe,
                Token::At,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Period,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("// first\nvm(Vid) // rest\n"),
            vec![
                Token::LowerIdent("vm".into()),
                Token::LParen,
                Token::UpperIdent("Vid".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn rule_snippet_round_trips() {
        let src = "d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), C==V*Cpu.";
        let tokens = toks(src);
        assert!(tokens.contains(&Token::DeriveArrow));
        assert!(tokens.contains(&Token::LowerIdent("assign".into())));
        assert!(tokens.contains(&Token::UpperIdent("SUM".into())));
        assert_eq!(tokens.last(), Some(&Token::Period));
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = tokenize("vm\n  host").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn errors_reported_with_position() {
        let e = tokenize("vm # host").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unexpected character"));
        let unterminated = tokenize("\"abc").unwrap_err();
        assert!(unterminated.message.contains("unterminated"));
    }

    #[test]
    fn integer_then_period_is_not_a_float() {
        // rule terminators directly after numbers must stay periods
        assert_eq!(
            toks("C<=3."),
            vec![
                Token::UpperIdent("C".into()),
                Token::LessEq,
                Token::Int(3),
                Token::Period,
            ]
        );
    }
}
