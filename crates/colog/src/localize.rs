//! Localization rewrite for distributed rules (Sec. 5.5 of the paper).
//!
//! A rule whose body predicates live at more than one location cannot be
//! evaluated locally. The rewrite splits it into (a) one *shipping* rule per
//! remote location, which gathers the remote body predicates into an
//! intermediate `tmp` relation addressed to the rule's home location, and
//! (b) a *local* rule identical to the original but with the remote
//! predicates replaced by the `tmp` relation. The paper's example:
//!
//! ```text
//! d2  nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
//! ```
//!
//! becomes
//!
//! ```text
//! d21 tmp_d2(@X,Y,D,R1)    <- link(@Y,X), curVm(@Y,D,R1).
//! d22 nborNextVm(@X,Y,D,R) <- tmp_d2(@X,Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
//! ```

use crate::ast::{Arg, BodyElem, Predicate, RuleArrow, RuleDecl};

/// Errors raised by the localization rewrite.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalizeError {
    /// The rule spans multiple locations but its head carries no location
    /// specifier, so there is no home location to ship data to.
    NoHomeLocation { label: String },
    /// The remote group of predicates does not bind the home location
    /// variable, so the shipping rule cannot address its output.
    HomeNotBoundRemotely { label: String, location: String },
}

impl std::fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizeError::NoHomeLocation { label } => {
                write!(
                    f,
                    "distributed rule {label} has no location specifier on its head"
                )
            }
            LocalizeError::HomeNotBoundRemotely { label, location } => write!(
                f,
                "rule {label}: remote predicates do not bind home location {location}"
            ),
        }
    }
}

impl std::error::Error for LocalizeError {}

/// Rewrite one rule. Non-distributed rules are returned unchanged (as a
/// single-element vector). Distributed rules are returned as
/// `[shipping rules..., local rule]`.
pub fn localize_rule(rule: &RuleDecl) -> Result<Vec<RuleDecl>, LocalizeError> {
    if !rule.is_distributed() {
        return Ok(vec![rule.clone()]);
    }
    // Distinct locations appearing in the *body*.
    let mut body_locations: Vec<String> = Vec::new();
    for elem in &rule.body {
        if let BodyElem::Pred(p) = elem {
            if let Some(l) = p.location() {
                if !body_locations.iter().any(|x| x == l) {
                    body_locations.push(l.to_string());
                }
            }
        }
    }
    if body_locations.len() <= 1 && rule.arrow == RuleArrow::Derivation {
        // The body is evaluable at a single location; a remotely-addressed
        // head is handled by the engine's tuple shipping, no rewrite needed.
        return Ok(vec![rule.clone()]);
    }
    let home = match rule.head.location() {
        Some(l) => l.to_string(),
        None => {
            // A body-only distributed rule: use the first body location as home.
            body_locations
                .first()
                .cloned()
                .ok_or_else(|| LocalizeError::NoHomeLocation {
                    label: rule.label.clone(),
                })?
        }
    };

    // Partition body predicates by location; non-predicates and home-located
    // (or unlocated) predicates stay in the local rule.
    let mut local_body: Vec<BodyElem> = Vec::new();
    let mut remote_groups: Vec<(String, Vec<Predicate>)> = Vec::new();
    for elem in &rule.body {
        match elem {
            BodyElem::Pred(p) => match p.location() {
                Some(loc) if loc != home => {
                    match remote_groups.iter_mut().find(|(l, _)| l == loc) {
                        Some((_, preds)) => preds.push(p.clone()),
                        None => remote_groups.push((loc.to_string(), vec![p.clone()])),
                    }
                }
                _ => local_body.push(elem.clone()),
            },
            other => local_body.push(other.clone()),
        }
    }
    if remote_groups.is_empty() {
        // Head addressed elsewhere but body is single-location: the engine
        // handles this directly (located head -> remote send).
        return Ok(vec![rule.clone()]);
    }

    let mut out = Vec::new();
    let mut local_inserts: Vec<BodyElem> = Vec::new();
    for (idx, (remote_loc, preds)) in remote_groups.iter().enumerate() {
        // Variables produced by the remote group (deduplicated, stable order),
        // excluding the home location variable which becomes the address.
        let mut vars: Vec<String> = Vec::new();
        for p in preds {
            for v in p.variables() {
                if v != home && !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        let home_bound = preds.iter().any(|p| p.variables().contains(&home));
        if !home_bound {
            return Err(LocalizeError::HomeNotBoundRemotely {
                label: rule.label.clone(),
                location: home.clone(),
            });
        }
        let tmp_name = if remote_groups.len() == 1 {
            format!("tmp_{}", rule.label)
        } else {
            format!("tmp_{}_{}", rule.label, idx)
        };
        let mut tmp_args: Vec<Arg> = vec![Arg::Loc(home.clone())];
        tmp_args.extend(vars.iter().map(|v| Arg::Var(v.clone())));
        let tmp_head = Predicate::new(&tmp_name, tmp_args.clone());

        let shipping = RuleDecl {
            label: format!("{}_ship{}", rule.label, idx + 1),
            arrow: RuleArrow::Derivation,
            head: tmp_head,
            body: preds.iter().cloned().map(BodyElem::Pred).collect(),
        };
        out.push(shipping);
        local_inserts.push(BodyElem::Pred(Predicate::new(&tmp_name, tmp_args)));
        let _ = remote_loc;
    }

    // Local rule: tmp predicates first (they bind the home location), then
    // the remaining local body.
    let mut body = local_inserts;
    body.extend(local_body);
    out.push(RuleDecl {
        label: format!("{}_local", rule.label),
        arrow: rule.arrow,
        head: rule.head.clone(),
        body,
    });
    Ok(out)
}

/// Localize every rule of a program, preserving order.
pub fn localize_rules(rules: &[RuleDecl]) -> Result<Vec<RuleDecl>, LocalizeError> {
    let mut out = Vec::with_capacity(rules.len());
    for r in rules {
        out.extend(localize_rule(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn non_distributed_rule_unchanged() {
        let p = parse_program("r1 toAssign(Vid,Hid) <- vm(Vid,C,M), host(Hid,C2,M2).").unwrap();
        let out = localize_rule(&p.rules[0]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], p.rules[0]);
    }

    #[test]
    fn paper_example_d2_rewrite() {
        let p = parse_program(
            "d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.",
        )
        .unwrap();
        let out = localize_rule(&p.rules[0]).unwrap();
        assert_eq!(out.len(), 2);
        let ship = &out[0];
        let local = &out[1];
        // shipping rule gathers link and curVm at Y and addresses @X
        assert_eq!(ship.head.name, "tmp_d2");
        assert_eq!(ship.head.location(), Some("X"));
        assert_eq!(ship.body.len(), 2);
        assert!(
            !ship.is_distributed() || ship.locations() == vec!["X".to_string(), "Y".to_string()]
        );
        // variables shipped: Y, D, R1 (order of first appearance)
        let shipped_vars = ship.head.variables();
        assert_eq!(shipped_vars, vec!["X", "Y", "D", "R1"]);
        // the local rule joins tmp with migVm and keeps the expression
        assert_eq!(local.head.name, "nborNextVm");
        assert_eq!(local.body.len(), 3);
        assert!(matches!(&local.body[0], BodyElem::Pred(p) if p.name == "tmp_d2"));
        assert!(matches!(&local.body[2], BodyElem::Expr(_)));
        assert!(!local.is_distributed());
    }

    #[test]
    fn constraint_rule_keeps_arrow() {
        let p = parse_program("c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.")
            .unwrap();
        let out = localize_rule(&p.rules[0]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].arrow, RuleArrow::Derivation); // shipping is a plain rule
        assert_eq!(out[1].arrow, RuleArrow::Constraint);
    }

    #[test]
    fn head_only_remote_is_left_to_engine() {
        // body entirely at X, head addressed to Y: no rewrite needed, the
        // engine ships the head tuple.
        let p = parse_program("r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm2(@X,Y,D,R1), R2:=-R1.")
            .unwrap();
        let out = localize_rule(&p.rules[0]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn error_when_home_not_bound_by_remote_group() {
        let p = parse_program("r1 out(@X,V) <- local(@X,W), remote(@Y,V).").unwrap();
        let err = localize_rule(&p.rules[0]).unwrap_err();
        assert!(matches!(err, LocalizeError::HomeNotBoundRemotely { .. }));
        assert!(err.to_string().contains("remote predicates"));
    }

    #[test]
    fn localize_rules_expands_in_place() {
        let p = parse_program(
            r#"
            r1 a(@X,Y) <- b(@X,Y).
            d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
            "#,
        )
        .unwrap();
        let out = localize_rules(&p.rules).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, "r1");
        assert_eq!(out[1].label, "d2_ship1");
        assert_eq!(out[2].label, "d2_local");
    }
}
