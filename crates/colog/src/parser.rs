//! Recursive-descent parser for Colog.
//!
//! The accepted syntax is exactly the one used in the paper's program
//! listings (Sec. 4.2, 4.3 and Appendix A): `goal`/`var` declarations,
//! labelled rules with `<-`/`->` arrows, predicates with optional `@Loc`
//! location specifiers and aggregate arguments, and arithmetic/comparison
//! expressions including the absolute-value form `|C1-C2|` and reified
//! comparisons such as `(C==1)==(|C1-C2|<F_mindiff)`.

use cologne_datalog::AggFunc;

use crate::ast::{
    Arg, BodyElem, CExpr, COp, GoalDecl, GoalKind, Literal, Predicate, Program, RuleArrow,
    RuleDecl, VarDecl,
};
use crate::lexer::{tokenize, LexError, Spanned, Token};

/// A parsing error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line (0 when at end of input).
    pub line: usize,
    /// 1-based column (0 when at end of input).
    pub col: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a full Colog program.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {expected:?}, found {t:?}"))),
            None => Err(self.error(format!("expected {expected:?}, found end of input"))),
        }
    }

    fn eat_period(&mut self) {
        if matches!(self.peek(), Some(Token::Period)) {
            self.pos += 1;
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        while let Some(token) = self.peek() {
            match token {
                Token::LowerIdent(word) if word == "goal" => {
                    let goal = self.goal_decl()?;
                    if program.goal.is_some() {
                        return Err(self.error("multiple goal declarations"));
                    }
                    program.goal = Some(goal);
                }
                Token::LowerIdent(word) if word == "var" => {
                    program.vars.push(self.var_decl()?);
                }
                Token::LowerIdent(_) => {
                    program.rules.push(self.rule()?);
                }
                other => {
                    return Err(
                        self.error(format!("expected a declaration or rule, found {other:?}"))
                    )
                }
            }
        }
        Ok(program)
    }

    fn goal_decl(&mut self) -> Result<GoalDecl, ParseError> {
        self.next(); // 'goal'
        let kind = match self.next() {
            Some(Token::LowerIdent(w)) if w == "minimize" => GoalKind::Minimize,
            Some(Token::LowerIdent(w)) if w == "maximize" => GoalKind::Maximize,
            Some(Token::LowerIdent(w)) if w == "satisfy" => GoalKind::Satisfy,
            other => return Err(self.error(format!("expected goal kind, found {other:?}"))),
        };
        let var = match self.next() {
            Some(Token::UpperIdent(v)) => v,
            other => return Err(self.error(format!("expected goal variable, found {other:?}"))),
        };
        match self.next() {
            Some(Token::LowerIdent(w)) if w == "in" => {}
            other => return Err(self.error(format!("expected 'in', found {other:?}"))),
        }
        let relation = self.predicate()?;
        self.eat_period();
        Ok(GoalDecl {
            kind,
            var,
            relation,
        })
    }

    fn var_decl(&mut self) -> Result<VarDecl, ParseError> {
        self.next(); // 'var'
        let table = self.predicate()?;
        match self.next() {
            Some(Token::LowerIdent(w)) if w == "forall" => {}
            other => return Err(self.error(format!("expected 'forall', found {other:?}"))),
        }
        let forall = self.predicate()?;
        self.eat_period();
        Ok(VarDecl { table, forall })
    }

    fn rule(&mut self) -> Result<RuleDecl, ParseError> {
        let label = match self.next() {
            Some(Token::LowerIdent(l)) => l,
            other => return Err(self.error(format!("expected rule label, found {other:?}"))),
        };
        let head = self.predicate()?;
        let arrow = match self.next() {
            Some(Token::DeriveArrow) => RuleArrow::Derivation,
            Some(Token::ConstraintArrow) => RuleArrow::Constraint,
            other => return Err(self.error(format!("expected '<-' or '->', found {other:?}"))),
        };
        let mut body = Vec::new();
        loop {
            body.push(self.body_elem()?);
            match self.peek() {
                Some(Token::Comma) => {
                    self.pos += 1;
                }
                Some(Token::Period) => {
                    self.pos += 1;
                    break;
                }
                None => break,
                other => return Err(self.error(format!("expected ',' or '.', found {other:?}"))),
            }
        }
        Ok(RuleDecl {
            label,
            arrow,
            head,
            body,
        })
    }

    fn body_elem(&mut self) -> Result<BodyElem, ParseError> {
        // predicate: lowercase identifier followed by '('
        if let (Some(Token::LowerIdent(_)), Some(Token::LParen)) = (self.peek(), self.peek_at(1)) {
            return Ok(BodyElem::Pred(self.predicate()?));
        }
        // assignment: Upper ':=' expr
        if let (Some(Token::UpperIdent(name)), Some(Token::Assign)) = (self.peek(), self.peek_at(1))
        {
            let name = name.clone();
            self.pos += 2;
            let expr = self.comparison()?;
            return Ok(BodyElem::Assign(name, expr));
        }
        Ok(BodyElem::Expr(self.comparison()?))
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let name = match self.next() {
            Some(Token::LowerIdent(n)) => n,
            other => return Err(self.error(format!("expected predicate name, found {other:?}"))),
        };
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(Token::RParen)) {
            loop {
                args.push(self.arg()?);
                match self.peek() {
                    Some(Token::Comma) => {
                        self.pos += 1;
                    }
                    Some(Token::RParen) => break,
                    other => {
                        return Err(self.error(format!("expected ',' or ')', found {other:?}")))
                    }
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Predicate { name, args })
    }

    fn arg(&mut self) -> Result<Arg, ParseError> {
        match self.peek().cloned() {
            Some(Token::At) => {
                self.pos += 1;
                match self.next() {
                    Some(Token::UpperIdent(v)) => Ok(Arg::Loc(v)),
                    other => {
                        Err(self.error(format!("expected location variable, found {other:?}")))
                    }
                }
            }
            Some(Token::UpperIdent(word)) => {
                // aggregate keyword followed by '<'
                if let Some(func) = AggFunc::from_keyword(&word) {
                    if matches!(self.peek_at(1), Some(Token::Less)) {
                        self.pos += 2;
                        let inner = match self.next() {
                            Some(Token::UpperIdent(v)) => v,
                            other => {
                                return Err(self.error(format!(
                                    "expected aggregate variable, found {other:?}"
                                )))
                            }
                        };
                        self.expect(&Token::Greater)?;
                        return Ok(Arg::Agg(func, inner));
                    }
                }
                self.pos += 1;
                Ok(Arg::Var(word))
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Arg::Const(Literal::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Arg::Const(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Arg::Const(Literal::Str(s)))
            }
            Some(Token::LowerIdent(p)) => {
                self.pos += 1;
                Ok(Arg::Const(Literal::Param(p)))
            }
            other => Err(self.error(format!("expected predicate argument, found {other:?}"))),
        }
    }

    // expression parsing ----------------------------------------------------

    fn comparison(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => COp::Eq,
                Some(Token::NotEq) => COp::Ne,
                Some(Token::LessEq) => COp::Le,
                Some(Token::GreaterEq) => COp::Ge,
                Some(Token::Less) => COp::Lt,
                Some(Token::Greater) => COp::Gt,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = CExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => COp::Add,
                Some(Token::Minus) => COp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = CExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<CExpr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => COp::Mul,
                Some(Token::Slash) => COp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = CExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<CExpr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(CExpr::Neg(Box::new(self.factor()?)))
            }
            Some(Token::Pipe) => {
                self.pos += 1;
                let inner = self.comparison()?;
                self.expect(&Token::Pipe)?;
                Ok(CExpr::Abs(Box::new(inner)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.comparison()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::UpperIdent(v)) => {
                self.pos += 1;
                Ok(CExpr::Var(v))
            }
            Some(Token::LowerIdent(p)) => {
                self.pos += 1;
                Ok(CExpr::Lit(Literal::Param(p)))
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(CExpr::Lit(Literal::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(CExpr::Lit(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(CExpr::Lit(Literal::Str(s)))
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The centralized ACloud program exactly as listed in Sec. 4.2.
    pub const ACLOUD_SNIPPET: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
        d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
        c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
    "#;

    #[test]
    fn parses_acloud_program() {
        let p = parse_program(ACLOUD_SNIPPET).unwrap();
        assert_eq!(p.rules.len(), 7);
        assert_eq!(p.vars.len(), 1);
        let goal = p.goal.as_ref().unwrap();
        assert_eq!(goal.kind, GoalKind::Minimize);
        assert_eq!(goal.var, "C");
        assert_eq!(goal.relation.name, "hostStdevCpu");
        assert_eq!(p.vars[0].solver_positions(), vec![2]);
        // d1 has an aggregate head and three body elements
        let d1 = p.rule("d1").unwrap();
        assert!(d1.head.has_aggregate());
        assert_eq!(d1.body.len(), 3);
        assert!(matches!(d1.body[2], BodyElem::Expr(_)));
        // c1 is a constraint rule
        assert_eq!(p.rule("c1").unwrap().arrow, RuleArrow::Constraint);
        assert_eq!(p.num_rules(), 9);
    }

    #[test]
    fn parses_location_specifiers_and_assignment() {
        let src = r#"
            r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.
        "#;
        let p = parse_program(src).unwrap();
        let r2 = &p.rules[0];
        assert_eq!(r2.head.location(), Some("Y"));
        assert!(r2.is_distributed());
        match &r2.body[2] {
            BodyElem::Assign(v, expr) => {
                assert_eq!(v, "R2");
                assert!(matches!(expr, CExpr::Neg(_)));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_reified_equivalence_and_abs() {
        let src = r#"
            d1 cost(X,Y,Z,C) <- assign(X,Y,C1), assign(X,Z,C2),
               Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
        "#;
        let p = parse_program(src).unwrap();
        let d1 = &p.rules[0];
        assert_eq!(d1.body.len(), 4);
        match &d1.body[3] {
            BodyElem::Expr(CExpr::Bin(COp::Eq, lhs, rhs)) => {
                assert!(lhs.is_comparison());
                match rhs.as_ref() {
                    CExpr::Bin(COp::Lt, abs, param) => {
                        assert!(matches!(abs.as_ref(), CExpr::Abs(_)));
                        // `F_mindiff` starts with an uppercase letter, so it
                        // lexes as a variable; the runtime resolves it as a
                        // named parameter because it is never bound by a
                        // body predicate.
                        assert!(matches!(param.as_ref(), CExpr::Var(p) if p == "F_mindiff"));
                    }
                    other => panic!("unexpected rhs {other:?}"),
                }
            }
            other => panic!("expected reified equivalence, got {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_sumabs_unique() {
        let src = r#"
            d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.
            d3 uniqueChannel(X,UNIQUE<C>) <- assign(X,Y,C).
        "#;
        let p = parse_program(src).unwrap();
        assert!(matches!(
            p.rules[0].head.args[1],
            Arg::Agg(AggFunc::SumAbs, _)
        ));
        assert!(matches!(
            p.rules[1].head.args[1],
            Arg::Agg(AggFunc::Unique, _)
        ));
    }

    #[test]
    fn parses_named_parameters_in_constraints() {
        let src = "c3 migrateCount(C) -> C<=max_migrates.";
        let p = parse_program(src).unwrap();
        match &p.rules[0].body[0] {
            BodyElem::Expr(CExpr::Bin(COp::Le, _, rhs)) => {
                assert!(
                    matches!(rhs.as_ref(), CExpr::Lit(Literal::Param(m)) if m == "max_migrates")
                );
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_mul_before_add() {
        let src = "d8 aggCost(X,C) <- a(X,C1), b(X,C2), C==C1+C2*2.";
        let p = parse_program(src).unwrap();
        match &p.rules[0].body[2] {
            BodyElem::Expr(CExpr::Bin(COp::Eq, _, rhs)) => match rhs.as_ref() {
                CExpr::Bin(COp::Add, _, mul) => {
                    assert!(matches!(mul.as_ref(), CExpr::Bin(COp::Mul, _, _)));
                }
                other => panic!("precedence broken: {other:?}"),
            },
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn satisfy_goal_and_empty_args() {
        let src = "goal satisfy X in feasible(X).\nr1 feasible(X) <- input(X), ok().";
        let p = parse_program(src).unwrap();
        assert_eq!(p.goal.as_ref().unwrap().kind, GoalKind::Satisfy);
        let r1 = &p.rules[0];
        match &r1.body[1] {
            BodyElem::Pred(pr) => assert!(pr.args.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_point_at_problem() {
        let err = parse_program("r1 foo(X) <- bar(X), .").unwrap_err();
        assert!(err.to_string().contains("expected"));
        let err2 = parse_program("goal shrink C in t(C).").unwrap_err();
        assert!(err2.message.contains("goal kind"));
        let err3 = parse_program("r1 foo(X) <= bar(X).").unwrap_err();
        assert!(err3.message.contains("'<-' or '->'"));
        let err4 = parse_program("goal minimize C in t(C). goal minimize D in u(D).").unwrap_err();
        assert!(err4.message.contains("multiple goal"));
    }

    #[test]
    fn multiple_var_decls_allowed() {
        let src = r#"
            var assign(X,Y,C) forall setLink(X,Y).
            var extra(X,V) forall nodes(X).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.vars.len(), 2);
        assert_eq!(p.vars[1].solver_positions(), vec![1]);
    }
}
