//! Geometric restart budgets for incomplete search.
//!
//! Both phases of the LNS driver ([`crate::lns`]) ration their effort with a
//! geometrically growing budget: the incumbent dive retries with a larger
//! node budget until a first solution appears, and every repair gets a fail
//! budget that grows while iterations keep coming back empty and snaps back
//! to the base once an improvement lands. The growth keeps stalled phases
//! from starving (the budget eventually covers whatever the neighborhood
//! needs, so the driver provably terminates when no other limit applies)
//! while the reset keeps productive phases cheap.
//!
//! The schedule is pure integer state evolved by IEEE-754 multiplications
//! with the same operands on every platform, so it is exactly reproducible —
//! a prerequisite for the LNS determinism guarantee.

/// A geometrically growing budget: starts at `base`, multiplied by `factor`
/// on every [`GeometricRestarts::grow`], snapped back by
/// [`GeometricRestarts::reset`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeometricRestarts {
    base: u64,
    factor: f64,
    current: u64,
    restarts: u64,
}

impl GeometricRestarts {
    /// Schedule starting at `base` (clamped to at least 1) and growing by
    /// `factor` (clamped to at least 1.0) per restart.
    pub fn new(base: u64, factor: f64) -> Self {
        let base = base.max(1);
        GeometricRestarts {
            base,
            factor: factor.max(1.0),
            current: base,
            restarts: 0,
        }
    }

    /// The budget of the current restart.
    pub fn budget(&self) -> u64 {
        self.current
    }

    /// Number of times the schedule has grown since the last reset.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Move to the next restart: the budget grows by the configured factor
    /// (and by at least 1, so a factor of 1.0 still makes progress).
    pub fn grow(&mut self) {
        let scaled = (self.current as f64 * self.factor).ceil() as u64;
        self.current = scaled.max(self.current + 1);
        self.restarts += 1;
    }

    /// Snap back to the base budget (called when an iteration succeeded).
    pub fn reset(&mut self) {
        self.current = self.base;
        self.restarts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_geometrically_and_resets() {
        let mut s = GeometricRestarts::new(64, 1.5);
        assert_eq!(s.budget(), 64);
        s.grow();
        assert_eq!(s.budget(), 96);
        s.grow();
        assert_eq!(s.budget(), 144);
        assert_eq!(s.restarts(), 2);
        s.reset();
        assert_eq!(s.budget(), 64);
        assert_eq!(s.restarts(), 0);
    }

    #[test]
    fn degenerate_inputs_still_progress() {
        let mut s = GeometricRestarts::new(0, 0.5);
        assert_eq!(s.budget(), 1, "base is clamped to 1");
        s.grow();
        assert!(s.budget() > 1, "factor below 1.0 must still grow");
        let before = s.budget();
        s.grow();
        assert!(s.budget() > before);
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut s = GeometricRestarts::new(10, 1.3);
            let mut seen = Vec::new();
            for _ in 0..20 {
                seen.push(s.budget());
                s.grow();
            }
            seen
        };
        assert_eq!(run(), run());
    }
}
