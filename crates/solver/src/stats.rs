//! Search statistics.
//!
//! The paper reports per-COP solving time, convergence behaviour and the
//! effect of `SOLVER_MAX_TIME`; these counters are the raw material for the
//! corresponding rows in `EXPERIMENTS.md`.

use std::time::Duration;

/// Counters accumulated during a search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of search-tree nodes explored.
    pub nodes: u64,
    /// Number of failed (inconsistent) nodes.
    pub fails: u64,
    /// Number of propagator executions.
    pub propagations: u64,
    /// Number of individual domain prunings.
    pub prunings: u64,
    /// Number of solutions found.
    pub solutions: u64,
    /// Maximum depth reached in the search tree.
    pub max_depth: u64,
    /// Number of destroy/repair iterations executed by the LNS driver
    /// (0 for exact searches).
    pub lns_iterations: u64,
    /// Number of LNS iterations whose repair found a strictly better
    /// incumbent (0 for exact searches).
    pub lns_improvements: u64,
    /// Wall-clock time spent searching, in microseconds.
    pub elapsed_micros: u64,
    /// True if the search stopped because of a limit (time, fails, solutions)
    /// rather than exhausting the tree.
    pub limit_reached: bool,
    /// True if a [`crate::SolveObserver`] cancelled the search cooperatively
    /// (implies `limit_reached`).
    pub cancelled: bool,
    /// True if a [`crate::SearchConfig::warm_start`] assignment seeded this
    /// search (the initial branch-and-bound bound for exact search, the
    /// initial incumbent for LNS).
    pub warm_start: bool,
}

impl SearchStats {
    /// Wall-clock search time.
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.elapsed_micros)
    }

    /// Merge another stats record into this one (used when a distributed
    /// execution runs many local COPs and we want aggregate totals).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.fails += other.fails;
        self.propagations += other.propagations;
        self.prunings += other.prunings;
        self.solutions += other.solutions;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.lns_iterations += other.lns_iterations;
        self.lns_improvements += other.lns_improvements;
        self.elapsed_micros += other.elapsed_micros;
        self.limit_reached |= other.limit_reached;
        self.cancelled |= other.cancelled;
        self.warm_start |= other.warm_start;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} fails={} props={} prunings={} solutions={} depth={}",
            self.nodes,
            self.fails,
            self.propagations,
            self.prunings,
            self.solutions,
            self.max_depth,
        )?;
        if self.lns_iterations > 0 {
            write!(
                f,
                " lns_iters={} lns_improved={}",
                self.lns_iterations, self.lns_improvements
            )?;
        }
        if self.warm_start {
            write!(f, " warm")?;
        }
        if self.cancelled {
            write!(f, " cancelled")?;
        }
        write!(
            f,
            " time={:?}{}",
            self.elapsed(),
            if self.limit_reached { " (limit)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            nodes: 10,
            fails: 2,
            max_depth: 5,
            ..Default::default()
        };
        let b = SearchStats {
            nodes: 7,
            fails: 1,
            max_depth: 9,
            limit_reached: true,
            elapsed_micros: 1500,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes, 17);
        assert_eq!(a.fails, 3);
        assert_eq!(a.max_depth, 9);
        assert!(a.limit_reached);
        assert_eq!(a.elapsed(), Duration::from_micros(1500));
    }

    #[test]
    fn display_mentions_limits() {
        let s = SearchStats {
            limit_reached: true,
            ..Default::default()
        };
        assert!(s.to_string().contains("limit"));
        let s2 = SearchStats::default();
        assert!(!s2.to_string().contains("limit"));
    }
}
