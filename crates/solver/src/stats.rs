//! Search statistics.
//!
//! The paper reports per-COP solving time, convergence behaviour and the
//! effect of `SOLVER_MAX_TIME`; these counters are the raw material for the
//! corresponding rows in `EXPERIMENTS.md`.

use std::time::Duration;

/// Counters accumulated during a search.
///
/// Not `Eq`: `gap` is an `f64`. It is never `NaN` (the gap formula divides
/// by `max(1, |primal|)`), so `PartialEq` behaves totally in practice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Number of search-tree nodes explored.
    pub nodes: u64,
    /// Number of failed (inconsistent) nodes.
    pub fails: u64,
    /// Number of propagator executions.
    pub propagations: u64,
    /// Number of individual domain prunings.
    pub prunings: u64,
    /// Number of solutions found.
    pub solutions: u64,
    /// Maximum depth reached in the search tree.
    pub max_depth: u64,
    /// Number of destroy/repair iterations executed by the LNS driver
    /// (0 for exact searches).
    pub lns_iterations: u64,
    /// Number of LNS iterations whose repair found a strictly better
    /// incumbent (0 for exact searches).
    pub lns_improvements: u64,
    /// Wall-clock time spent searching, in microseconds.
    pub elapsed_micros: u64,
    /// True if the search stopped because of a limit (time, fails, solutions)
    /// rather than exhausting the tree.
    pub limit_reached: bool,
    /// True if a [`crate::SolveObserver`] cancelled the search cooperatively
    /// (implies `limit_reached`).
    pub cancelled: bool,
    /// True if a [`crate::SearchConfig::warm_start`] assignment seeded this
    /// search (the initial branch-and-bound bound for exact search, the
    /// initial incumbent for LNS).
    pub warm_start: bool,
    /// Number of worker threads the search ran on (0 for the sequential
    /// engines; see [`crate::SearchConfig::workers`]).
    pub parallel_workers: u64,
    /// Number of independent subtrees the parallel exact engine split the
    /// search into (0 for sequential and LNS searches).
    pub subtrees: u64,
    /// Number of synchronized portfolio rounds the parallel LNS engine ran
    /// (0 for sequential and exact searches).
    pub portfolio_rounds: u64,
    /// Certified dual bound on the objective (lower bound for minimization,
    /// upper for maximization), when [`crate::SearchConfig::bound_mode`]
    /// enabled a [`crate::bounds`] engine. `None` with bounds off.
    pub dual_bound: Option<i64>,
    /// Relative optimality gap between the incumbent and `dual_bound` (see
    /// [`crate::bounds::optimality_gap`]). `None` until both an incumbent
    /// and a dual bound exist; `Some(0.0)` certifies optimality.
    pub gap: Option<f64>,
}

impl SearchStats {
    /// Wall-clock search time.
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.elapsed_micros)
    }

    /// Merge another stats record into this one. Used wherever many searches
    /// contribute to one aggregate figure: the parallel engines merge their
    /// per-worker counters in a fixed reduction order, the LNS driver merges
    /// dive and repair stats, and distributed executions merge per-node COP
    /// totals. Counters sum; depth and worker counts take the maximum; flags
    /// or together.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.fails += other.fails;
        self.propagations += other.propagations;
        self.prunings += other.prunings;
        self.solutions += other.solutions;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.lns_iterations += other.lns_iterations;
        self.lns_improvements += other.lns_improvements;
        self.elapsed_micros += other.elapsed_micros;
        self.limit_reached |= other.limit_reached;
        self.cancelled |= other.cancelled;
        self.warm_start |= other.warm_start;
        self.parallel_workers = self.parallel_workers.max(other.parallel_workers);
        self.subtrees += other.subtrees;
        self.portfolio_rounds += other.portfolio_rounds;
        // Bound fields are not counters: the most recent certified value
        // wins. Workers and LNS repairs carry `None`, so merging them into a
        // driver record preserves the driver's bound and gap.
        self.dual_bound = other.dual_bound.or(self.dual_bound);
        self.gap = other.gap.or(self.gap);
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} fails={} props={} prunings={} solutions={} depth={}",
            self.nodes,
            self.fails,
            self.propagations,
            self.prunings,
            self.solutions,
            self.max_depth,
        )?;
        if self.lns_iterations > 0 {
            write!(
                f,
                " lns_iters={} lns_improved={}",
                self.lns_iterations, self.lns_improvements
            )?;
        }
        if self.parallel_workers > 0 {
            write!(f, " workers={}", self.parallel_workers)?;
            if self.subtrees > 0 {
                write!(f, " subtrees={}", self.subtrees)?;
            }
            if self.portfolio_rounds > 0 {
                write!(f, " rounds={}", self.portfolio_rounds)?;
            }
        }
        if let Some(dual) = self.dual_bound {
            write!(f, " dual={dual}")?;
            if let Some(gap) = self.gap {
                write!(f, " gap={:.2}%", gap * 100.0)?;
            }
        }
        if self.warm_start {
            write!(f, " warm")?;
        }
        if self.cancelled {
            write!(f, " cancelled")?;
        }
        write!(
            f,
            " time={:?}{}",
            self.elapsed(),
            if self.limit_reached { " (limit)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            nodes: 10,
            fails: 2,
            max_depth: 5,
            ..Default::default()
        };
        let b = SearchStats {
            nodes: 7,
            fails: 1,
            max_depth: 9,
            limit_reached: true,
            elapsed_micros: 1500,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes, 17);
        assert_eq!(a.fails, 3);
        assert_eq!(a.max_depth, 9);
        assert!(a.limit_reached);
        assert_eq!(a.elapsed(), Duration::from_micros(1500));
    }

    /// Every field of `SearchStats` must participate in `merge`. The
    /// exhaustive destructuring below fails to compile when a field is added,
    /// and the assertions fail when a field is added to the struct but
    /// forgotten in `merge` (a non-zero source value must leave a trace in
    /// the merged record).
    #[test]
    fn merge_covers_every_field() {
        let source = SearchStats {
            nodes: 1,
            fails: 2,
            propagations: 3,
            prunings: 4,
            solutions: 5,
            max_depth: 6,
            lns_iterations: 7,
            lns_improvements: 8,
            elapsed_micros: 9,
            limit_reached: true,
            cancelled: true,
            warm_start: true,
            parallel_workers: 10,
            subtrees: 11,
            portfolio_rounds: 12,
            dual_bound: Some(13),
            gap: Some(0.25),
        };
        let mut merged = SearchStats::default();
        merged.merge(&source);
        // Exhaustive destructuring: adding a field without extending this
        // test (and `merge`) is a compile error here.
        let SearchStats {
            nodes,
            fails,
            propagations,
            prunings,
            solutions,
            max_depth,
            lns_iterations,
            lns_improvements,
            elapsed_micros,
            limit_reached,
            cancelled,
            warm_start,
            parallel_workers,
            subtrees,
            portfolio_rounds,
            dual_bound,
            gap,
        } = merged;
        assert_eq!(nodes, 1);
        assert_eq!(fails, 2);
        assert_eq!(propagations, 3);
        assert_eq!(prunings, 4);
        assert_eq!(solutions, 5);
        assert_eq!(max_depth, 6);
        assert_eq!(lns_iterations, 7);
        assert_eq!(lns_improvements, 8);
        assert_eq!(elapsed_micros, 9);
        assert!(limit_reached);
        assert!(cancelled);
        assert!(warm_start);
        assert_eq!(parallel_workers, 10);
        assert_eq!(subtrees, 11);
        assert_eq!(portfolio_rounds, 12);
        assert_eq!(dual_bound, Some(13));
        assert_eq!(gap, Some(0.25));
        // Merging into a populated record keeps every field monotone: the
        // merged Debug output must differ from the pre-merge one whenever
        // the source is non-trivial (catches "merge ignores field" bugs for
        // fields whose merged value coincides with the default).
        let mut twice = source.clone();
        twice.merge(&source);
        assert_ne!(format!("{source:?}"), format!("{twice:?}"));
        assert_eq!(twice.nodes, 2);
        assert_eq!(twice.parallel_workers, 10, "worker count merges by max");
        assert_eq!(twice.subtrees, 22);
        assert_eq!(twice.portfolio_rounds, 24);
    }

    #[test]
    fn merge_keeps_bound_fields_most_recent() {
        // A populated driver record merging a `None` worker record keeps its
        // bound; merging a newer certified record adopts the newer values.
        let mut driver = SearchStats {
            dual_bound: Some(40),
            gap: Some(0.5),
            ..Default::default()
        };
        driver.merge(&SearchStats::default());
        assert_eq!(driver.dual_bound, Some(40));
        assert_eq!(driver.gap, Some(0.5));
        driver.merge(&SearchStats {
            dual_bound: Some(45),
            gap: Some(0.1),
            ..Default::default()
        });
        assert_eq!(driver.dual_bound, Some(45));
        assert_eq!(driver.gap, Some(0.1));
    }

    #[test]
    fn display_shows_bound_and_gap() {
        let s = SearchStats {
            dual_bound: Some(95),
            gap: Some(0.05),
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("dual=95"));
        assert!(text.contains("gap=5.00%"));
        assert!(!SearchStats::default().to_string().contains("dual="));
    }

    #[test]
    fn display_mentions_limits() {
        let s = SearchStats {
            limit_reached: true,
            ..Default::default()
        };
        assert!(s.to_string().contains("limit"));
        let s2 = SearchStats::default();
        assert!(!s2.to_string().contains("limit"));
    }
}
