//! Linear expression builder.
//!
//! Colog selection expressions such as `C == V * Cpu` (where `Cpu` is a
//! constant from a regular table and `V` a solver variable) and aggregates
//! such as `SUM<C>` compile into linear expressions over solver variables.
//! [`LinExpr`] is the convenience type used by the Cologne runtime to
//! accumulate these terms before posting them into a [`crate::Model`].

use crate::model::VarId;

/// A linear expression `Σ coeff_i · var_i + constant`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// Terms of the expression. Multiple terms over the same variable are
    /// allowed and are merged by [`LinExpr::normalized`].
    pub terms: Vec<(i64, VarId)>,
    /// Constant offset.
    pub constant: i64,
}

impl LinExpr {
    /// The expression `0`.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The expression `1 · v`.
    pub fn var(v: VarId) -> Self {
        LinExpr {
            terms: vec![(1, v)],
            constant: 0,
        }
    }

    /// The expression `coeff · v`.
    pub fn scaled_var(coeff: i64, v: VarId) -> Self {
        LinExpr {
            terms: vec![(coeff, v)],
            constant: 0,
        }
    }

    /// Add a term in place.
    pub fn add_term(&mut self, coeff: i64, v: VarId) {
        self.terms.push((coeff, v));
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// Add another expression in place.
    pub fn add_expr(&mut self, other: &LinExpr) {
        self.terms.extend_from_slice(&other.terms);
        self.constant += other.constant;
    }

    /// Return `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_expr(other);
        out
    }

    /// Return `self - other`.
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for &(c, v) in &other.terms {
            out.terms.push((-c, v));
        }
        out.constant -= other.constant;
        out
    }

    /// Return `k · self`.
    pub fn scale(&self, k: i64) -> LinExpr {
        LinExpr {
            terms: self.terms.iter().map(|&(c, v)| (c * k, v)).collect(),
            constant: self.constant * k,
        }
    }

    /// True if the expression has no variable terms (after normalization).
    pub fn is_constant(&self) -> bool {
        self.normalized().terms.is_empty()
    }

    /// Merge duplicate variables and drop zero coefficients.
    pub fn normalized(&self) -> LinExpr {
        let mut merged: Vec<(i64, VarId)> = Vec::with_capacity(self.terms.len());
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|&(_, v)| v);
        for (c, v) in sorted {
            match merged.last_mut() {
                Some((mc, mv)) if *mv == v => *mc += c,
                _ => merged.push((c, v)),
            }
        }
        merged.retain(|&(c, _)| c != 0);
        LinExpr {
            terms: merged,
            constant: self.constant,
        }
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> Self {
        LinExpr::constant(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn build_and_normalize() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_var(0, 5);
        let mut e = LinExpr::var(x);
        e.add_term(2, y);
        e.add_term(3, x);
        e.add_constant(7);
        let n = e.normalized();
        assert_eq!(n.constant, 7);
        assert_eq!(n.terms.len(), 2);
        assert!(n.terms.contains(&(4, x)));
        assert!(n.terms.contains(&(2, y)));
    }

    #[test]
    fn arithmetic_combinators() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_var(0, 5);
        let a = LinExpr::var(x).plus(&LinExpr::scaled_var(2, y));
        let b = a.minus(&LinExpr::var(x));
        let n = b.normalized();
        assert_eq!(n.terms, vec![(2, y)]);
        let s = n.scale(-3);
        assert_eq!(s.terms, vec![(-6, y)]);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let e = LinExpr::var(x).minus(&LinExpr::var(x)).normalized();
        assert!(e.is_constant());
        assert_eq!(e.constant, 0);
    }

    #[test]
    fn conversions() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        let from_var: LinExpr = x.into();
        assert_eq!(from_var.terms, vec![(1, x)]);
        let from_const: LinExpr = 5i64.into();
        assert_eq!(from_const.constant, 5);
        assert!(from_const.is_constant());
    }
}
