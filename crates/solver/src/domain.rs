//! Integer variable domains.
//!
//! A [`Domain`] is a finite set of `i64` values represented as an inclusive
//! interval `[lo, hi]` together with a sorted list of interior *hole ranges*
//! (maximal runs of values strictly between `lo` and `hi` that have been
//! removed). This representation supports the two kinds of pruning the
//! Cologne propagators need: cheap bounds tightening (for linear arithmetic)
//! and individual value removal (for disequalities such as the primary-user
//! constraint `C != C2` in the wireless use case) — while staying compact for
//! sparse wide-range domains: `Domain::from_values(&[0, 1_000_000])` stores a
//! single hole range, not a million individual holes.
//!
//! Invariants maintained by every operation:
//!
//! * hole ranges lie strictly inside the bounds (`lo < s <= e < hi`), so the
//!   bounds themselves are always members;
//! * ranges are sorted, disjoint and non-adjacent (separated by at least one
//!   present value), so the representation of a value set is canonical and
//!   `PartialEq` on domains is set equality;
//! * `removed` caches the total number of values covered by the hole ranges,
//!   making [`Domain::size`] O(1) — which is what lets first-fail branching
//!   ([`crate::Branching::SmallestDomain`]) scan domain sizes cheaply at
//!   every search node.

/// A finite integer domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    lo: i64,
    hi: i64,
    /// Number of values covered by `holes` (cached for O(1) `size`).
    removed: u64,
    /// Maximal removed runs strictly inside `(lo, hi)`: sorted, disjoint,
    /// non-adjacent `(start, end)` inclusive ranges.
    holes: Vec<(i64, i64)>,
}

// The mutating operations signal "domain wiped out" with `Err(())`: the
// emptiness itself is the entire failure payload (propagators immediately
// translate it into a `Conflict`), so a dedicated error type would carry no
// information.
#[allow(clippy::result_unit_err)]
impl Domain {
    /// Create the interval domain `[lo, hi]`. Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty initial domain [{lo}, {hi}]");
        Domain {
            lo,
            hi,
            removed: 0,
            holes: Vec::new(),
        }
    }

    /// Create a singleton domain `{v}`.
    pub fn singleton(v: i64) -> Self {
        Domain {
            lo: v,
            hi: v,
            removed: 0,
            holes: Vec::new(),
        }
    }

    /// Create a domain from an explicit set of values. Panics if empty.
    ///
    /// Holes are built from the *gaps* between consecutive sorted values, so
    /// the cost is O(n log n) in the number of values — independent of how
    /// wide the value range is.
    pub fn from_values(values: &[i64]) -> Self {
        assert!(!values.is_empty(), "domain must contain at least one value");
        let mut sorted: Vec<i64> = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lo = sorted[0];
        let hi = *sorted.last().unwrap();
        let mut holes = Vec::new();
        let mut removed = 0u64;
        for w in sorted.windows(2) {
            if w[1] > w[0] + 1 {
                holes.push((w[0] + 1, w[1] - 1));
                removed += (w[1] - w[0] - 1) as u64;
            }
        }
        Domain {
            lo,
            hi,
            removed,
            holes,
        }
    }

    /// Smallest value in the domain.
    #[inline]
    pub fn min(&self) -> i64 {
        self.lo
    }

    /// Largest value in the domain.
    #[inline]
    pub fn max(&self) -> i64 {
        self.hi
    }

    /// Number of values in the domain (O(1): the hole count is cached).
    #[inline]
    pub fn size(&self) -> u64 {
        (self.hi - self.lo + 1) as u64 - self.removed
    }

    /// True if the domain contains exactly one value.
    #[inline]
    pub fn is_fixed(&self) -> bool {
        self.lo == self.hi
    }

    /// The single value of a fixed domain, or `None`.
    #[inline]
    pub fn fixed_value(&self) -> Option<i64> {
        if self.is_fixed() {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True if `v` belongs to the domain.
    pub fn contains(&self, v: i64) -> bool {
        if v < self.lo || v > self.hi {
            return false;
        }
        let idx = self.holes.partition_point(|&(s, _)| s <= v);
        idx == 0 || self.holes[idx - 1].1 < v
    }

    /// Iterate over all values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let starts = std::iter::once(self.lo).chain(self.holes.iter().map(|&(_, e)| e + 1));
        let ends = self
            .holes
            .iter()
            .map(|&(s, _)| s - 1)
            .chain(std::iter::once(self.hi));
        starts.zip(ends).flat_map(|(a, b)| a..=b)
    }

    fn wipe_out(&mut self) {
        self.holes.clear();
        self.removed = 0;
    }

    /// Remove every value `< bound`. Returns `true` if the domain changed,
    /// `Err(())` if it became empty.
    pub fn remove_below(&mut self, bound: i64) -> Result<bool, ()> {
        if bound <= self.lo {
            return Ok(false);
        }
        if bound > self.hi {
            self.lo = bound;
            self.wipe_out();
            return Err(());
        }
        let mut new_lo = bound;
        let mut drop = 0;
        for &(s, e) in &self.holes {
            if e < new_lo {
                // hole entirely below the new bound
                self.removed -= (e - s + 1) as u64;
                drop += 1;
            } else if s <= new_lo {
                // the new bound lands inside a hole: jump past it
                self.removed -= (e - s + 1) as u64;
                drop += 1;
                new_lo = e + 1;
                break;
            } else {
                break;
            }
        }
        self.holes.drain(..drop);
        self.lo = new_lo;
        debug_assert!(self.lo <= self.hi);
        Ok(true)
    }

    /// Remove every value `> bound`. Returns `true` if the domain changed,
    /// `Err(())` if it became empty.
    pub fn remove_above(&mut self, bound: i64) -> Result<bool, ()> {
        if bound >= self.hi {
            return Ok(false);
        }
        if bound < self.lo {
            self.hi = bound;
            self.wipe_out();
            return Err(());
        }
        let mut new_hi = bound;
        let mut keep = self.holes.len();
        for &(s, e) in self.holes.iter().rev() {
            if s > new_hi {
                self.removed -= (e - s + 1) as u64;
                keep -= 1;
            } else if e >= new_hi {
                self.removed -= (e - s + 1) as u64;
                keep -= 1;
                new_hi = s - 1;
                break;
            } else {
                break;
            }
        }
        self.holes.truncate(keep);
        self.hi = new_hi;
        debug_assert!(self.lo <= self.hi);
        Ok(true)
    }

    /// Remove a single value. Returns `true` if the domain changed,
    /// `Err(())` if it became empty.
    pub fn remove_value(&mut self, v: i64) -> Result<bool, ()> {
        if !self.contains(v) {
            return Ok(false);
        }
        if self.is_fixed() {
            return Err(());
        }
        if v == self.lo {
            self.lo += 1;
            // pull the bound over an adjoining hole (at most one: ranges are
            // maximal, so the next range cannot also start at the new bound)
            if let Some(&(s, e)) = self.holes.first() {
                if s == self.lo {
                    self.removed -= (e - s + 1) as u64;
                    self.lo = e + 1;
                    self.holes.remove(0);
                }
            }
        } else if v == self.hi {
            self.hi -= 1;
            if let Some(&(s, e)) = self.holes.last() {
                if e == self.hi {
                    self.removed -= (e - s + 1) as u64;
                    self.hi = s - 1;
                    self.holes.pop();
                }
            }
        } else {
            // interior removal: insert a unit hole, merging with neighbours
            let idx = self.holes.partition_point(|&(s, _)| s < v);
            let merge_prev = idx > 0 && self.holes[idx - 1].1 == v - 1;
            let merge_next = idx < self.holes.len() && self.holes[idx].0 == v + 1;
            match (merge_prev, merge_next) {
                (true, true) => {
                    self.holes[idx - 1].1 = self.holes[idx].1;
                    self.holes.remove(idx);
                }
                (true, false) => self.holes[idx - 1].1 = v,
                (false, true) => self.holes[idx].0 = v,
                (false, false) => self.holes.insert(idx, (v, v)),
            }
            self.removed += 1;
        }
        debug_assert!(self.lo <= self.hi);
        Ok(true)
    }

    /// Reduce the domain to the single value `v`. Returns `true` if the
    /// domain changed, `Err(())` if `v` is not a member.
    pub fn assign(&mut self, v: i64) -> Result<bool, ()> {
        if !self.contains(v) {
            return Err(());
        }
        if self.is_fixed() {
            return Ok(false);
        }
        self.lo = v;
        self.hi = v;
        self.wipe_out();
        Ok(true)
    }

    /// Intersect with the interval `[lo, hi]`.
    pub fn intersect_bounds(&mut self, lo: i64, hi: i64) -> Result<bool, ()> {
        let a = self.remove_below(lo)?;
        let b = self.remove_above(hi)?;
        Ok(a || b)
    }

    /// Median value of the current bounds, used for domain bisection.
    pub fn median(&self) -> i64 {
        // Midpoint of bounds; always a valid split point for bisection
        // (`<= mid` / `> mid`) even if it happens to be a hole.
        self.lo + (self.hi - self.lo) / 2
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fixed() {
            write!(f, "{{{}}}", self.lo)
        } else if self.holes.is_empty() {
            write!(f, "[{}, {}]", self.lo, self.hi)
        } else {
            write!(f, "[{}, {}]\\{{", self.lo, self.hi)?;
            for (i, &(s, e)) in self.holes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if s == e {
                    write!(f, "{s}")?;
                } else {
                    write!(f, "{s}..{e}")?;
                }
            }
            write!(f, "}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_interval_basics() {
        let d = Domain::new(-3, 4);
        assert_eq!(d.min(), -3);
        assert_eq!(d.max(), 4);
        assert_eq!(d.size(), 8);
        assert!(!d.is_fixed());
        assert!(d.contains(0));
        assert!(!d.contains(5));
    }

    #[test]
    #[should_panic]
    fn empty_interval_panics() {
        let _ = Domain::new(2, 1);
    }

    #[test]
    fn singleton_is_fixed() {
        let d = Domain::singleton(7);
        assert!(d.is_fixed());
        assert_eq!(d.fixed_value(), Some(7));
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn from_values_builds_holes() {
        let d = Domain::from_values(&[1, 3, 6, 3]);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 6);
        assert_eq!(d.size(), 3);
        assert!(d.contains(3));
        assert!(!d.contains(2));
        assert!(!d.contains(4));
        let values: Vec<i64> = d.iter().collect();
        assert_eq!(values, vec![1, 3, 6]);
    }

    #[test]
    fn from_values_sparse_wide_range_is_compact() {
        // Regression: the old representation pushed every missing integer in
        // [lo, hi] as an individual hole — O(range) memory/time. Gap-based
        // construction stores one range per gap.
        let d = Domain::from_values(&[0, 1_000_000]);
        assert_eq!(d.size(), 2);
        assert_eq!(d.holes.len(), 1);
        assert_eq!(d.holes[0], (1, 999_999));
        assert!(d.contains(0));
        assert!(d.contains(1_000_000));
        assert!(!d.contains(1));
        assert!(!d.contains(999_999));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 1_000_000]);

        let d2 = Domain::from_values(&[-5_000_000, 0, 7, 12_345_678]);
        assert_eq!(d2.size(), 4);
        assert_eq!(d2.holes.len(), 3);
        assert_eq!(
            d2.iter().collect::<Vec<_>>(),
            vec![-5_000_000, 0, 7, 12_345_678]
        );
    }

    #[test]
    fn sparse_domain_ops_preserve_compactness() {
        let mut d = Domain::from_values(&[0, 500, 1_000_000]);
        assert_eq!(d.remove_value(500), Ok(true));
        assert_eq!(d.size(), 2);
        assert_eq!(d.holes.len(), 1, "adjacent hole ranges must merge");
        assert_eq!(d.remove_below(1), Ok(true));
        assert_eq!(d.fixed_value(), Some(1_000_000));
    }

    #[test]
    fn remove_below_above() {
        let mut d = Domain::new(0, 10);
        assert_eq!(d.remove_below(3), Ok(true));
        assert_eq!(d.remove_above(7), Ok(true));
        assert_eq!(d.min(), 3);
        assert_eq!(d.max(), 7);
        assert_eq!(d.remove_below(3), Ok(false));
        assert!(d.remove_below(8).is_err());
    }

    #[test]
    fn bounds_land_inside_holes() {
        let mut d = Domain::new(0, 10);
        for v in [4, 5, 6] {
            d.remove_value(v).unwrap();
        }
        // removing below 5 must pull lo past the whole hole run to 7
        assert_eq!(d.remove_below(5), Ok(true));
        assert_eq!(d.min(), 7);
        assert_eq!(d.size(), 4);
        let mut d2 = Domain::new(0, 10);
        for v in [4, 5, 6] {
            d2.remove_value(v).unwrap();
        }
        assert_eq!(d2.remove_above(5), Ok(true));
        assert_eq!(d2.max(), 3);
        assert_eq!(d2.size(), 4);
    }

    #[test]
    fn remove_value_creates_hole_and_adjusts_bounds() {
        let mut d = Domain::new(0, 4);
        assert_eq!(d.remove_value(2), Ok(true));
        assert!(!d.contains(2));
        assert_eq!(d.size(), 4);
        // removing the bound shifts it over existing holes
        assert_eq!(d.remove_value(0), Ok(true));
        assert_eq!(d.min(), 1);
        assert_eq!(d.remove_value(1), Ok(true));
        assert_eq!(d.min(), 3); // 2 was a hole, skipped
        assert_eq!(d.remove_value(4), Ok(true));
        assert!(d.is_fixed());
        assert_eq!(d.fixed_value(), Some(3));
        assert!(d.remove_value(3).is_err());
    }

    #[test]
    fn assign_behaviour() {
        let mut d = Domain::new(0, 9);
        assert_eq!(d.assign(5), Ok(true));
        assert_eq!(d.fixed_value(), Some(5));
        assert_eq!(d.assign(5), Ok(false));
        let mut d2 = Domain::from_values(&[1, 3, 5]);
        assert!(d2.assign(2).is_err());
    }

    #[test]
    fn intersect_bounds_combines() {
        let mut d = Domain::new(0, 100);
        assert_eq!(d.intersect_bounds(10, 20), Ok(true));
        assert_eq!(d.min(), 10);
        assert_eq!(d.max(), 20);
        assert!(d.intersect_bounds(30, 40).is_err());
    }

    #[test]
    fn median_is_within_bounds() {
        let d = Domain::new(-10, 11);
        let m = d.median();
        assert!(m >= d.min() && m <= d.max());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Domain::singleton(3).to_string(), "{3}");
        assert_eq!(Domain::new(1, 4).to_string(), "[1, 4]");
        let mut d = Domain::new(0, 9);
        d.remove_value(3).unwrap();
        d.remove_value(5).unwrap();
        d.remove_value(6).unwrap();
        assert_eq!(d.to_string(), "[0, 9]\\{3, 5..6}");
    }

    #[test]
    fn iter_skips_holes_after_bound_updates() {
        let mut d = Domain::new(0, 6);
        d.remove_value(3).unwrap();
        d.remove_below(1).unwrap();
        d.remove_above(5).unwrap();
        let values: Vec<i64> = d.iter().collect();
        assert_eq!(values, vec![1, 2, 4, 5]);
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn size_stays_consistent_with_iter() {
        let mut d = Domain::new(-5, 15);
        for v in [0, 1, 2, 7, 9, 8, -5, 15, 14] {
            let _ = d.remove_value(v);
        }
        assert_eq!(d.size() as usize, d.iter().count());
        d.remove_below(-1).unwrap();
        assert_eq!(d.size() as usize, d.iter().count());
        d.remove_above(10).unwrap();
        assert_eq!(d.size() as usize, d.iter().count());
    }
}
