//! Integer variable domains.
//!
//! A [`Domain`] is a finite set of `i64` values represented as an inclusive
//! interval `[lo, hi]` together with an explicit sorted list of interior
//! "holes" (values strictly between `lo` and `hi` that have been removed).
//! This representation supports the two kinds of pruning the Cologne
//! propagators need: cheap bounds tightening (for linear arithmetic) and
//! individual value removal (for disequalities such as the primary-user
//! constraint `C != C2` in the wireless use case).

/// A finite integer domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    lo: i64,
    hi: i64,
    /// Values strictly inside `(lo, hi)` that are excluded, kept sorted.
    holes: Vec<i64>,
}

// The mutating operations signal "domain wiped out" with `Err(())`: the
// emptiness itself is the entire failure payload (propagators immediately
// translate it into a `Conflict`), so a dedicated error type would carry no
// information.
#[allow(clippy::result_unit_err)]
impl Domain {
    /// Create the interval domain `[lo, hi]`. Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty initial domain [{lo}, {hi}]");
        Domain {
            lo,
            hi,
            holes: Vec::new(),
        }
    }

    /// Create a singleton domain `{v}`.
    pub fn singleton(v: i64) -> Self {
        Domain {
            lo: v,
            hi: v,
            holes: Vec::new(),
        }
    }

    /// Create a domain from an explicit set of values. Panics if empty.
    pub fn from_values(values: &[i64]) -> Self {
        assert!(!values.is_empty(), "domain must contain at least one value");
        let mut sorted: Vec<i64> = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lo = sorted[0];
        let hi = *sorted.last().unwrap();
        let mut holes = Vec::new();
        let mut expect = lo;
        for &v in &sorted {
            while expect < v {
                holes.push(expect);
                expect += 1;
            }
            expect = v + 1;
        }
        Domain { lo, hi, holes }
    }

    /// Smallest value in the domain.
    #[inline]
    pub fn min(&self) -> i64 {
        self.lo
    }

    /// Largest value in the domain.
    #[inline]
    pub fn max(&self) -> i64 {
        self.hi
    }

    /// Number of values in the domain.
    #[inline]
    pub fn size(&self) -> u64 {
        (self.hi - self.lo + 1) as u64 - self.holes.len() as u64
    }

    /// True if the domain contains exactly one value.
    #[inline]
    pub fn is_fixed(&self) -> bool {
        self.lo == self.hi
    }

    /// The single value of a fixed domain, or `None`.
    #[inline]
    pub fn fixed_value(&self) -> Option<i64> {
        if self.is_fixed() {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True if `v` belongs to the domain.
    pub fn contains(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi && self.holes.binary_search(&v).is_err()
    }

    /// Iterate over all values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (self.lo..=self.hi).filter(move |v| self.holes.binary_search(v).is_err())
    }

    fn normalize(&mut self) {
        // Pull lo up / hi down over holes so bounds are always members.
        loop {
            if self.lo > self.hi {
                return;
            }
            if let Ok(idx) = self.holes.binary_search(&self.lo) {
                self.holes.remove(idx);
                self.lo += 1;
            } else {
                break;
            }
        }
        loop {
            if self.lo > self.hi {
                return;
            }
            if let Ok(idx) = self.holes.binary_search(&self.hi) {
                self.holes.remove(idx);
                self.hi -= 1;
            } else {
                break;
            }
        }
        // Drop holes that fell outside the bounds.
        self.holes.retain(|&h| h > self.lo && h < self.hi);
    }

    /// Remove every value `< bound`. Returns `true` if the domain changed,
    /// `Err(())` if it became empty.
    pub fn remove_below(&mut self, bound: i64) -> Result<bool, ()> {
        if bound <= self.lo {
            return Ok(false);
        }
        self.lo = bound;
        self.normalize();
        if self.lo > self.hi {
            Err(())
        } else {
            Ok(true)
        }
    }

    /// Remove every value `> bound`. Returns `true` if the domain changed,
    /// `Err(())` if it became empty.
    pub fn remove_above(&mut self, bound: i64) -> Result<bool, ()> {
        if bound >= self.hi {
            return Ok(false);
        }
        self.hi = bound;
        self.normalize();
        if self.lo > self.hi {
            Err(())
        } else {
            Ok(true)
        }
    }

    /// Remove a single value. Returns `true` if the domain changed,
    /// `Err(())` if it became empty.
    pub fn remove_value(&mut self, v: i64) -> Result<bool, ()> {
        if !self.contains(v) {
            return Ok(false);
        }
        if self.is_fixed() {
            return Err(());
        }
        if v == self.lo {
            self.lo += 1;
            self.normalize();
        } else if v == self.hi {
            self.hi -= 1;
            self.normalize();
        } else {
            let idx = self.holes.binary_search(&v).unwrap_err();
            self.holes.insert(idx, v);
        }
        if self.lo > self.hi {
            Err(())
        } else {
            Ok(true)
        }
    }

    /// Reduce the domain to the single value `v`. Returns `true` if the
    /// domain changed, `Err(())` if `v` is not a member.
    pub fn assign(&mut self, v: i64) -> Result<bool, ()> {
        if !self.contains(v) {
            return Err(());
        }
        if self.is_fixed() {
            return Ok(false);
        }
        self.lo = v;
        self.hi = v;
        self.holes.clear();
        Ok(true)
    }

    /// Intersect with the interval `[lo, hi]`.
    pub fn intersect_bounds(&mut self, lo: i64, hi: i64) -> Result<bool, ()> {
        let a = self.remove_below(lo)?;
        let b = self.remove_above(hi)?;
        Ok(a || b)
    }

    /// Median value of the current bounds, used for domain bisection.
    pub fn median(&self) -> i64 {
        // Midpoint of bounds; always a valid split point for bisection
        // (`<= mid` / `> mid`) even if it happens to be a hole.
        self.lo + (self.hi - self.lo) / 2
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fixed() {
            write!(f, "{{{}}}", self.lo)
        } else if self.holes.is_empty() {
            write!(f, "[{}, {}]", self.lo, self.hi)
        } else {
            write!(f, "[{}, {}]\\{:?}", self.lo, self.hi, self.holes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_interval_basics() {
        let d = Domain::new(-3, 4);
        assert_eq!(d.min(), -3);
        assert_eq!(d.max(), 4);
        assert_eq!(d.size(), 8);
        assert!(!d.is_fixed());
        assert!(d.contains(0));
        assert!(!d.contains(5));
    }

    #[test]
    #[should_panic]
    fn empty_interval_panics() {
        let _ = Domain::new(2, 1);
    }

    #[test]
    fn singleton_is_fixed() {
        let d = Domain::singleton(7);
        assert!(d.is_fixed());
        assert_eq!(d.fixed_value(), Some(7));
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn from_values_builds_holes() {
        let d = Domain::from_values(&[1, 3, 6, 3]);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 6);
        assert_eq!(d.size(), 3);
        assert!(d.contains(3));
        assert!(!d.contains(2));
        assert!(!d.contains(4));
        let values: Vec<i64> = d.iter().collect();
        assert_eq!(values, vec![1, 3, 6]);
    }

    #[test]
    fn remove_below_above() {
        let mut d = Domain::new(0, 10);
        assert_eq!(d.remove_below(3), Ok(true));
        assert_eq!(d.remove_above(7), Ok(true));
        assert_eq!(d.min(), 3);
        assert_eq!(d.max(), 7);
        assert_eq!(d.remove_below(3), Ok(false));
        assert!(d.remove_below(8).is_err());
    }

    #[test]
    fn remove_value_creates_hole_and_adjusts_bounds() {
        let mut d = Domain::new(0, 4);
        assert_eq!(d.remove_value(2), Ok(true));
        assert!(!d.contains(2));
        assert_eq!(d.size(), 4);
        // removing the bound shifts it over existing holes
        assert_eq!(d.remove_value(0), Ok(true));
        assert_eq!(d.min(), 1);
        assert_eq!(d.remove_value(1), Ok(true));
        assert_eq!(d.min(), 3); // 2 was a hole, skipped
        assert_eq!(d.remove_value(4), Ok(true));
        assert!(d.is_fixed());
        assert_eq!(d.fixed_value(), Some(3));
        assert!(d.remove_value(3).is_err());
    }

    #[test]
    fn assign_behaviour() {
        let mut d = Domain::new(0, 9);
        assert_eq!(d.assign(5), Ok(true));
        assert_eq!(d.fixed_value(), Some(5));
        assert_eq!(d.assign(5), Ok(false));
        let mut d2 = Domain::from_values(&[1, 3, 5]);
        assert!(d2.assign(2).is_err());
    }

    #[test]
    fn intersect_bounds_combines() {
        let mut d = Domain::new(0, 100);
        assert_eq!(d.intersect_bounds(10, 20), Ok(true));
        assert_eq!(d.min(), 10);
        assert_eq!(d.max(), 20);
        assert!(d.intersect_bounds(30, 40).is_err());
    }

    #[test]
    fn median_is_within_bounds() {
        let d = Domain::new(-10, 11);
        let m = d.median();
        assert!(m >= d.min() && m <= d.max());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Domain::singleton(3).to_string(), "{3}");
        assert_eq!(Domain::new(1, 4).to_string(), "[1, 4]");
    }

    #[test]
    fn iter_skips_holes_after_bound_updates() {
        let mut d = Domain::new(0, 6);
        d.remove_value(3).unwrap();
        d.remove_below(1).unwrap();
        d.remove_above(5).unwrap();
        let values: Vec<i64> = d.iter().collect();
        assert_eq!(values, vec![1, 2, 4, 5]);
        assert_eq!(d.size(), 4);
    }
}
