//! The constraint model: variables, propagators and the propagation engine.
//!
//! # Propagation-queue semantics
//!
//! Propagation runs to a fixpoint on a dedup'd pending set of propagators
//! (a [`PropQueue`]): whenever a domain changes, every propagator subscribed
//! to that variable is enqueued (at most once — the queue dedups) and the
//! loop pops pending propagators FIFO until the set drains or a conflict is
//! found. The queue is *seeded* either with every propagator (root
//! propagation, or after the branch-and-bound objective bound tightens) or
//! with only the propagators watching a just-branched variable
//! (`Model::props_watching`, private), so a branching decision never rescans
//! unrelated constraints. All propagation state — the queue itself and the
//! trail-backed domain [`Store`] it mutates — is owned by the caller (a
//! [`crate::SearchSpace`]) and reused across nodes and invocations; the
//! engine performs no per-node allocation.
//!
//! Two classic run-count optimizations sit on top of the plain fixpoint
//! loop, both preserving the fixpoint exactly (bounds-consistent propagators
//! are monotone, so the fixpoint is unique regardless of scheduling):
//!
//! * **Entailment**: a propagator returning [`PropStatus::Entailed`]
//!   is skipped until the search backtracks above the node that marked it
//!   (the mark is trailed on the [`Store`]). An entailed constraint can
//!   neither prune nor conflict on any descendant, so the skips are free.
//! * **Idempotence**: a propagator whose single `prune` call reaches its own
//!   fixpoint ([`crate::Propagator::idempotent`]) is not re-enqueued by its
//!   own prunings — on linear-heavy models roughly half of all propagator
//!   runs used to be exactly such no-op self-wakeups.

use crate::domain::Domain;
use crate::expr::LinExpr;
use crate::propagator::{Conflict, PropStatus, PropagatorContext};
use crate::propagators::{
    AbsVal, LinearEq, LinearLe, LinearNe, MaxOfArray, MinOfArray, MulVar, NValues, ReifLinearEq,
    ReifLinearLe, Square,
};
use crate::search::{self, Objective, SearchConfig, SearchOutcome, SearchSpace};
use crate::stats::SearchStats;
use crate::store::{PropQueue, Store};
use crate::Propagator;

/// Handle to an integer decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// Index of the variable inside the model's storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a `VarId` from a raw index (used by the engine and tests).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        VarId(i as u32)
    }
}

/// A constraint optimization model.
///
/// Mirrors the role of a Gecode `Space` in the paper: the Cologne runtime
/// creates one `Model` per COP invocation, posts variables and constraints
/// derived from the Colog program, then runs branch-and-bound search.
pub struct Model {
    domains: Vec<Domain>,
    names: Vec<Option<String>>,
    propagators: Vec<Box<dyn Propagator>>,
    /// var index -> propagator indices subscribed to it
    subscriptions: Vec<Vec<usize>>,
    /// Variables marked as *decision* variables ([`Model::mark_decision`]):
    /// the neighborhood pool of the LNS mode. Empty means "no marking" —
    /// LNS then treats every root-unfixed variable as a decision variable.
    decisions: Vec<VarId>,
    /// Mathematically proven objective floors interval propagation cannot
    /// derive (var index → lower bound). Recorded by composite constructors
    /// — today [`Model::scaled_variance_var`], whose `n·Σx² − (Σx)²` is
    /// nonnegative by Cauchy–Schwarz while its interval bound goes deeply
    /// negative — and consulted by the dual-bound engines to clamp
    /// relaxation bounds (see [`crate::bounds`]).
    semantic_floors: std::collections::BTreeMap<usize, i64>,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Create an empty model.
    pub fn new() -> Self {
        Model {
            domains: Vec::new(),
            names: Vec::new(),
            propagators: Vec::new(),
            subscriptions: Vec::new(),
            decisions: Vec::new(),
            semantic_floors: std::collections::BTreeMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Number of posted propagators.
    pub fn num_propagators(&self) -> usize {
        self.propagators.len()
    }

    /// Clear all variables and propagators while keeping the backing
    /// allocations (domain/name/propagator vectors and the per-variable
    /// subscription lists), so the arena is recycled across repeated COP
    /// invocations instead of being reallocated from scratch.
    pub fn reset(&mut self) {
        self.domains.clear();
        self.names.clear();
        self.propagators.clear();
        self.decisions.clear();
        for subs in &mut self.subscriptions {
            subs.clear();
        }
    }

    fn push_var_storage(&mut self, domain: Domain, name: Option<String>) -> VarId {
        let id = VarId(self.domains.len() as u32);
        self.domains.push(domain);
        self.names.push(name);
        // After a reset, cleared subscription slots from the previous
        // generation are reused in place.
        if self.subscriptions.len() < self.domains.len() {
            self.subscriptions.push(Vec::new());
        }
        id
    }

    /// Create a new variable with domain `[lo, hi]`.
    pub fn new_var(&mut self, lo: i64, hi: i64) -> VarId {
        self.new_named_var(lo, hi, None)
    }

    /// Create a new variable with an explicit name (useful for debugging and
    /// for mapping Colog solver attributes back to tuples).
    pub fn new_named_var(&mut self, lo: i64, hi: i64, name: Option<String>) -> VarId {
        self.push_var_storage(Domain::new(lo, hi), name)
    }

    /// Create a 0/1 boolean variable.
    pub fn new_bool(&mut self) -> VarId {
        self.new_var(0, 1)
    }

    /// Create a variable constrained to an explicit value set.
    pub fn new_var_from_values(&mut self, values: &[i64]) -> VarId {
        self.push_var_storage(Domain::from_values(values), None)
    }

    /// Create a variable already fixed to `v`.
    pub fn new_const(&mut self, v: i64) -> VarId {
        self.new_var(v, v)
    }

    /// Name of a variable, if set.
    pub fn var_name(&self, v: VarId) -> Option<&str> {
        self.names[v.index()].as_deref()
    }

    /// Mark `v` as a *decision* variable: part of the neighborhood pool the
    /// LNS mode destroys and repairs. Auxiliary variables (linear-expression
    /// results, reified booleans, aggregate values) are functionally
    /// determined by the decisions and should stay unmarked — freezing them
    /// alongside their decisions would pin the very quantities a repair must
    /// be free to change. A model with no marked variables falls back to
    /// treating every root-unfixed variable as a decision.
    pub fn mark_decision(&mut self, v: VarId) {
        self.decisions.push(v);
    }

    /// Variables marked with [`Model::mark_decision`], in marking order.
    pub fn decision_vars(&self) -> &[VarId] {
        &self.decisions
    }

    /// Current (root) domain of a variable.
    pub fn domain(&self, v: VarId) -> &Domain {
        &self.domains[v.index()]
    }

    /// Root domains of every variable, indexed by [`VarId`]. This is the
    /// domain slice external [`crate::bounds::DualBound`] callers hand to an
    /// engine when they have not propagated a tighter root themselves.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Indices of the propagators subscribed to the variable at `var_idx`
    /// (used by the search to seed the propagation queue after a branching
    /// decision without rescanning every propagator's dependencies).
    pub(crate) fn props_watching(&self, var_idx: usize) -> &[usize] {
        &self.subscriptions[var_idx]
    }

    /// The posted propagators. Exposed so callers (tests, validators) can
    /// re-check a complete assignment against every constraint.
    pub fn propagators(&self) -> &[Box<dyn Propagator>] {
        &self.propagators
    }

    /// Post a propagator.
    pub fn post<P: Propagator + 'static>(&mut self, p: P) {
        let idx = self.propagators.len();
        for v in p.dependencies() {
            assert!(
                v.index() < self.domains.len(),
                "propagator references unknown variable {v:?}"
            );
            self.subscriptions[v.index()].push(idx);
        }
        self.propagators.push(Box::new(p));
    }

    // ----- convenience constraint posting ---------------------------------

    /// `Σ terms <= bound`
    pub fn linear_le(&mut self, terms: &[(i64, VarId)], bound: i64) {
        self.post(LinearLe::new(terms.to_vec(), bound));
    }

    /// `Σ terms >= bound`
    pub fn linear_ge(&mut self, terms: &[(i64, VarId)], bound: i64) {
        let neg: Vec<(i64, VarId)> = terms.iter().map(|&(c, v)| (-c, v)).collect();
        self.post(LinearLe::new(neg, -bound));
    }

    /// `Σ terms == bound`
    pub fn linear_eq(&mut self, terms: &[(i64, VarId)], bound: i64) {
        self.post(LinearEq::new(terms.to_vec(), bound));
    }

    /// `Σ terms != bound`
    pub fn linear_ne(&mut self, terms: &[(i64, VarId)], bound: i64) {
        self.post(LinearNe::new(terms.to_vec(), bound));
    }

    /// `b <=> (Σ terms <= bound)`
    pub fn reif_linear_le(&mut self, b: VarId, terms: &[(i64, VarId)], bound: i64) {
        self.post(ReifLinearLe::new(b, terms.to_vec(), bound));
    }

    /// `b <=> (Σ terms == bound)`
    pub fn reif_linear_eq(&mut self, b: VarId, terms: &[(i64, VarId)], bound: i64) {
        self.post(ReifLinearEq::new(b, terms.to_vec(), bound));
    }

    /// Returns a fresh variable constrained to equal the linear expression
    /// `Σ terms + constant`.
    pub fn linear_var(&mut self, terms: &[(i64, VarId)], constant: i64) -> VarId {
        let mut lo = constant;
        let mut hi = constant;
        for &(c, v) in terms {
            let (dl, dh) = (self.domain(v).min(), self.domain(v).max());
            if c >= 0 {
                lo += c * dl;
                hi += c * dh;
            } else {
                lo += c * dh;
                hi += c * dl;
            }
        }
        let z = self.new_var(lo, hi);
        // z - Σ terms == constant
        let mut eq_terms = vec![(1i64, z)];
        for &(c, v) in terms {
            eq_terms.push((-c, v));
        }
        self.linear_eq(&eq_terms, constant);
        z
    }

    /// Returns a fresh variable constrained to equal `expr`.
    pub fn expr_var(&mut self, expr: &LinExpr) -> VarId {
        let n = expr.normalized();
        self.linear_var(&n.terms, n.constant)
    }

    /// Returns a fresh variable `z == |x|`.
    pub fn abs_var(&mut self, x: VarId) -> VarId {
        let (l, h) = (self.domain(x).min(), self.domain(x).max());
        let hi = l.abs().max(h.abs());
        let z = self.new_var(0, hi);
        self.post(AbsVal::new(z, x));
        z
    }

    /// Returns a fresh variable `z == x * y`.
    pub fn mul_var(&mut self, x: VarId, y: VarId) -> VarId {
        let (xl, xu) = (self.domain(x).min(), self.domain(x).max());
        let (yl, yu) = (self.domain(y).min(), self.domain(y).max());
        let cands = [xl * yl, xl * yu, xu * yl, xu * yu];
        let z = self.new_var(*cands.iter().min().unwrap(), *cands.iter().max().unwrap());
        self.post(MulVar::new(z, x, y));
        z
    }

    /// Returns a fresh variable `z == x²`.
    pub fn square_var(&mut self, x: VarId) -> VarId {
        let (l, h) = (self.domain(x).min(), self.domain(x).max());
        let hi = (l * l).max(h * h);
        let lo = if l <= 0 && h >= 0 {
            0
        } else {
            (l * l).min(h * h)
        };
        let z = self.new_var(lo, hi);
        self.post(Square::new(z, x));
        z
    }

    /// Returns a fresh variable equal to `Σ |x_i|` (the `SUMABS` aggregate).
    pub fn sum_abs_var(&mut self, xs: &[VarId]) -> VarId {
        let abs_vars: Vec<VarId> = xs.iter().map(|&x| self.abs_var(x)).collect();
        let terms: Vec<(i64, VarId)> = abs_vars.into_iter().map(|v| (1, v)).collect();
        self.linear_var(&terms, 0)
    }

    /// Returns a fresh variable equal to the number of distinct values among
    /// `xs` (the `UNIQUE` aggregate).
    pub fn nvalues_var(&mut self, xs: &[VarId]) -> VarId {
        let n = self.new_var(1, xs.len() as i64);
        self.post(NValues::new(n, xs.to_vec()));
        n
    }

    /// Returns a fresh variable equal to `max(xs)`.
    pub fn max_var(&mut self, xs: &[VarId]) -> VarId {
        let lo = xs.iter().map(|&x| self.domain(x).min()).max().unwrap();
        let hi = xs.iter().map(|&x| self.domain(x).max()).max().unwrap();
        let z = self.new_var(lo.min(hi), hi);
        self.post(MaxOfArray::new(z, xs.to_vec()));
        z
    }

    /// Returns a fresh variable equal to `min(xs)`.
    pub fn min_var(&mut self, xs: &[VarId]) -> VarId {
        let lo = xs.iter().map(|&x| self.domain(x).min()).min().unwrap();
        let hi = xs.iter().map(|&x| self.domain(x).max()).min().unwrap();
        let z = self.new_var(lo, hi.max(lo));
        self.post(MinOfArray::new(z, xs.to_vec()));
        z
    }

    /// Returns a fresh variable equal to the scaled variance
    /// `k·Σ x_i² − (Σ x_i)²` where `k = xs.len()`.
    ///
    /// Minimizing this integer expression is equivalent to minimizing the
    /// standard deviation of `xs`; it is how the Colog `STDEV` goal of the
    /// ACloud program (rule `d2`) is lowered onto an integer solver.
    pub fn scaled_variance_var(&mut self, xs: &[VarId]) -> VarId {
        assert!(!xs.is_empty());
        let n = xs.len() as i64;
        let squares: Vec<VarId> = xs.iter().map(|&x| self.square_var(x)).collect();
        let sum = self.linear_var(&xs.iter().map(|&x| (1, x)).collect::<Vec<_>>(), 0);
        let sum_sq = self.square_var(sum);
        let mut terms: Vec<(i64, VarId)> = squares.into_iter().map(|v| (n, v)).collect();
        terms.push((-1, sum_sq));
        let z = self.linear_var(&terms, 0);
        // n·Σx² ≥ (Σx)² by Cauchy–Schwarz: the scaled variance is
        // nonnegative even though its interval bound is deeply negative.
        self.semantic_floors.insert(z.index(), 0);
        z
    }

    /// A proven lower bound on a composite variable that interval
    /// propagation cannot derive (see the `semantic_floors` field), used by
    /// the [`crate::bounds`] engines to clamp relaxation bounds.
    pub fn semantic_floor(&self, v: VarId) -> Option<i64> {
        self.semantic_floors.get(&v.index()).copied()
    }

    // ----- propagation -----------------------------------------------------

    /// Run the propagation fixpoint on a trail-backed store.
    ///
    /// The queue is seeded with every propagator (`seed: None`) or with an
    /// explicit set of propagator indices, then drained to a fixpoint. On a
    /// conflict the queue is emptied before returning, so it is always clean
    /// for the next propagation. Prunings performed before the conflict stay
    /// on the store's trail and are undone by the caller's backtrack.
    pub(crate) fn propagate_in(
        &self,
        store: &mut Store,
        queue: &mut PropQueue,
        stats: &mut SearchStats,
        seed: Option<&[usize]>,
    ) -> Result<(), Conflict> {
        queue.ensure_capacity(self.propagators.len());
        store.ensure_entailed_capacity(self.propagators.len());
        match seed {
            None => {
                for p in 0..self.propagators.len() {
                    queue.enqueue(p);
                }
            }
            Some(s) => {
                for &p in s {
                    queue.enqueue(p);
                }
            }
        }
        while let Some(pidx) = queue.pop() {
            // An entailed propagator cannot prune or conflict anywhere below
            // the node that marked it; skip until backtrack clears the mark.
            if store.is_entailed(pidx) {
                continue;
            }
            stats.propagations += 1;
            // Temporarily detach the changed-variable scratch so the context
            // can borrow it alongside the queue's other fields.
            let mut changed = std::mem::take(&mut queue.changed);
            changed.clear();
            let result = {
                let mut ctx = PropagatorContext::new(store, &mut changed, &mut stats.prunings);
                self.propagators[pidx].prune(&mut ctx)
            };
            match result {
                Ok(status) => {
                    if status == PropStatus::Entailed {
                        store.mark_entailed(pidx);
                    }
                    // A propagator whose single run reaches its own fixpoint
                    // (and an entailed one, which can never prune again on
                    // this subtree) skips the wakeup its own prunings would
                    // otherwise trigger.
                    let skip_self =
                        status == PropStatus::Entailed || self.propagators[pidx].idempotent();
                    for v in changed.drain(..) {
                        for &dep in &self.subscriptions[v.index()] {
                            if !(skip_self && dep == pidx) {
                                queue.enqueue(dep);
                            }
                        }
                    }
                    queue.changed = changed;
                }
                Err(conflict) => {
                    changed.clear();
                    queue.changed = changed;
                    queue.clear();
                    return Err(conflict);
                }
            }
        }
        Ok(())
    }

    /// Propagate directly on the model's root domains (used by tests and to
    /// detect root infeasibility before search).
    pub fn propagate_root(&mut self) -> Result<(), Conflict> {
        let mut stats = SearchStats::default();
        let mut store = Store::from_domains(std::mem::take(&mut self.domains));
        let mut queue = PropQueue::new();
        let result = self.propagate_in(&mut store, &mut queue, &mut stats, None);
        self.domains = store.into_domains();
        result
    }

    // ----- search entry points ---------------------------------------------

    /// Run a search for `objective`, reusing the caller's [`SearchSpace`]
    /// (trail-backed store, propagation queue and decision stack) across
    /// invocations. This is the repeated-invocation hot path; the
    /// convenience wrappers below allocate a fresh space per call.
    pub fn solve_in(
        &self,
        objective: Objective,
        config: &SearchConfig,
        space: &mut SearchSpace,
    ) -> SearchOutcome {
        search::solve_in(self, objective, config, space)
    }

    /// Minimize the variable `obj` under the model's constraints.
    pub fn minimize(&self, obj: VarId, config: &SearchConfig) -> SearchOutcome {
        search::solve(self, Objective::Minimize(obj), config)
    }

    /// [`Model::minimize`] with a caller-provided reusable [`SearchSpace`].
    pub fn minimize_in(
        &self,
        obj: VarId,
        config: &SearchConfig,
        space: &mut SearchSpace,
    ) -> SearchOutcome {
        self.solve_in(Objective::Minimize(obj), config, space)
    }

    /// Maximize the variable `obj` under the model's constraints.
    pub fn maximize(&self, obj: VarId, config: &SearchConfig) -> SearchOutcome {
        search::solve(self, Objective::Maximize(obj), config)
    }

    /// [`Model::maximize`] with a caller-provided reusable [`SearchSpace`].
    pub fn maximize_in(
        &self,
        obj: VarId,
        config: &SearchConfig,
        space: &mut SearchSpace,
    ) -> SearchOutcome {
        self.solve_in(Objective::Maximize(obj), config, space)
    }

    /// Find one solution satisfying the constraints (the `goal satisfy` form).
    pub fn satisfy(&self, config: &SearchConfig) -> SearchOutcome {
        let mut space = SearchSpace::new();
        self.satisfy_in(config, &mut space)
    }

    /// [`Model::satisfy`] with a caller-provided reusable [`SearchSpace`].
    pub fn satisfy_in(&self, config: &SearchConfig, space: &mut SearchSpace) -> SearchOutcome {
        let cfg = SearchConfig {
            max_solutions: Some(config.max_solutions.unwrap_or(1)),
            ..config.clone()
        };
        self.solve_in(Objective::Satisfy, &cfg, space)
    }

    /// Enumerate solutions (bounded by `config.max_solutions` if set).
    pub fn solve_all(&self, config: &SearchConfig) -> SearchOutcome {
        search::solve(self, Objective::Satisfy, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchConfig;

    #[test]
    fn var_creation_and_lookup() {
        let mut m = Model::new();
        let a = m.new_named_var(0, 5, Some("a".into()));
        let b = m.new_bool();
        let c = m.new_const(42);
        let d = m.new_var_from_values(&[2, 4, 8]);
        assert_eq!(m.num_vars(), 4);
        assert_eq!(m.var_name(a), Some("a"));
        assert_eq!(m.var_name(b), None);
        assert_eq!(m.domain(c).fixed_value(), Some(42));
        assert_eq!(m.domain(d).size(), 3);
    }

    #[test]
    fn linear_var_bounds_are_tight() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        let y = m.new_var(-2, 2);
        let z = m.linear_var(&[(2, x), (-3, y)], 1);
        assert_eq!(m.domain(z).min(), 1 - 6);
        assert_eq!(m.domain(z).max(), 1 + 6 + 6);
    }

    #[test]
    fn expr_var_matches_linear_var() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        let e = LinExpr::scaled_var(2, x).plus(&LinExpr::constant(5));
        let z = m.expr_var(&e);
        m.propagate_root().unwrap();
        assert_eq!(m.domain(z).min(), 5);
        assert_eq!(m.domain(z).max(), 11);
    }

    #[test]
    fn scaled_variance_minimized_by_balanced_assignment() {
        // Two hosts, total load 10 split x + y = 10; variance minimal at 5/5.
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let y = m.new_var(0, 10);
        m.linear_eq(&[(1, x), (1, y)], 10);
        let var = m.scaled_variance_var(&[x, y]);
        let out = m.minimize(var, &SearchConfig::default());
        let best = out.best.unwrap();
        assert_eq!(best.value(x), 5);
        assert_eq!(best.value(y), 5);
        assert_eq!(best.value(var), 0);
    }

    #[test]
    fn satisfy_returns_single_solution() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        let y = m.new_var(0, 3);
        m.linear_eq(&[(1, x), (1, y)], 3);
        let out = m.satisfy(&SearchConfig::default());
        assert_eq!(out.solutions.len(), 1);
        let s = &out.solutions[0];
        assert_eq!(s.value(x) + s.value(y), 3);
    }

    #[test]
    fn solve_all_enumerates_everything() {
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        let y = m.new_var(0, 2);
        m.linear_le(&[(1, x), (1, y)], 2);
        let out = m.solve_all(&SearchConfig::default());
        // pairs with x+y<=2: (0,0)(0,1)(0,2)(1,0)(1,1)(2,0) = 6
        assert_eq!(out.solutions.len(), 6);
        assert!(out.complete);
    }

    #[test]
    fn root_infeasible_detected() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        m.linear_ge(&[(1, x)], 5);
        assert!(m.propagate_root().is_err());
        let out = m.satisfy(&SearchConfig::default());
        assert!(out.solutions.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    #[should_panic]
    fn posting_unknown_variable_panics() {
        let mut m = Model::new();
        let mut other = Model::new();
        let _x = m.new_var(0, 1);
        let y = other.new_var(0, 1);
        let z = other.new_var(0, 1);
        let _ = (y, z);
        // y/z do not exist in m (index out of bounds)
        m.linear_le(&[(1, VarId::from_index(5))], 1);
    }

    #[test]
    fn reset_recycles_arena_and_rebuilds_identically() {
        let build = |m: &mut Model| {
            let x = m.new_var(0, 9);
            let y = m.new_var(0, 9);
            m.linear_eq(&[(1, x), (1, y)], 9);
            m.linear_var(&[(3, x), (1, y)], 0)
        };
        let mut fresh = Model::new();
        let obj_fresh = build(&mut fresh);
        let expected = fresh
            .minimize(obj_fresh, &SearchConfig::default())
            .best_objective;

        let mut recycled = Model::new();
        let _ = build(&mut recycled);
        recycled.reset();
        assert_eq!(recycled.num_vars(), 0);
        assert_eq!(recycled.num_propagators(), 0);
        let obj = build(&mut recycled);
        assert_eq!(recycled.num_vars(), 3);
        let out = recycled.minimize(obj, &SearchConfig::default());
        assert_eq!(out.best_objective, expected);
        assert!(out.complete);
    }

    #[test]
    fn max_min_helper_vars() {
        let mut m = Model::new();
        let a = m.new_var(1, 3);
        let b = m.new_var(2, 5);
        let mx = m.max_var(&[a, b]);
        let mn = m.min_var(&[a, b]);
        m.propagate_root().unwrap();
        assert!(m.domain(mx).min() >= 2);
        assert!(m.domain(mn).max() <= 3);
    }

    #[test]
    fn sum_abs_var_over_mixed_signs() {
        let mut m = Model::new();
        let a = m.new_var(-3, -3);
        let b = m.new_var(4, 4);
        let s = m.sum_abs_var(&[a, b]);
        m.propagate_root().unwrap();
        assert_eq!(m.domain(s).fixed_value(), Some(7));
    }
}
