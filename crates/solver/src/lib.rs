//! # cologne-solver
//!
//! A finite-domain integer constraint solver with branch-and-bound optimization.
//!
//! This crate is the reproduction's substitute for the Gecode constraint
//! development environment used by the Cologne paper (Liu et al., VLDB 2012).
//! Cologne only relies on a small, well-defined slice of Gecode:
//!
//! * finite-domain integer variables,
//! * arithmetic and reified constraints generated from Colog selection and
//!   aggregation expressions (Sec. 5.3–5.4 of the paper),
//! * depth-first search with branch-and-bound for `goal minimize`/`maximize`,
//!   and plain satisfaction search for `goal satisfy`,
//! * a configurable time limit (`SOLVER_MAX_TIME` in the paper).
//!
//! All of that is implemented here from scratch with no third-party
//! dependencies.
//!
//! ## Quick example
//!
//! ```
//! use cologne_solver::{Model, SearchConfig};
//!
//! // minimize x + y  subject to  x + y >= 5, x in 0..10, y in 0..10
//! let mut m = Model::new();
//! let x = m.new_var(0, 10);
//! let y = m.new_var(0, 10);
//! m.linear_ge(&[(1, x), (1, y)], 5);
//! let obj = m.linear_var(&[(1, x), (1, y)], 0);
//! let outcome = m.minimize(obj, &SearchConfig::default());
//! let best = outcome.best.expect("feasible");
//! assert_eq!(best.value(obj), 5);
//! ```

pub mod bounds;
pub mod domain;
pub mod expr;
pub mod lns;
pub mod model;
pub mod observe;
pub mod parallel;
pub mod propagator;
pub mod propagators;
pub mod restart;
pub mod search;
pub mod stats;
pub mod store;

pub use bounds::{
    compute_root_bound, optimality_gap, BoundCertificate, BoundMode, DualBound, LinearRelaxation,
    RelaxedMerge,
};
pub use domain::Domain;
pub use expr::LinExpr;
pub use lns::{DestroyStrategy, LnsConfig, SolverMode};
pub use model::{Model, VarId};
pub use observe::{EventLog, SolveEvent, SolveObserver, PROGRESS_NODE_INTERVAL};
pub use propagator::{LinearView, PropStatus, Propagator, PropagatorContext};
pub use restart::GeometricRestarts;
pub use search::{
    complete_hints, solve_in_observed, solve_reference, Assignment, Branching, Objective,
    SearchConfig, SearchOutcome, SearchSpace, ValueChoice, DEFAULT_SPLIT_THRESHOLD,
};
pub use stats::SearchStats;
pub use store::{PropQueue, Store};

/// Errors reported while building or solving a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// A constraint references a variable that does not belong to the model.
    UnknownVariable(VarId),
    /// A variable was created with an empty domain (`lo > hi`).
    EmptyDomain { lo: i64, hi: i64 },
    /// The model was proven infeasible at the root (before search started).
    RootInfeasible,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::UnknownVariable(v) => write!(f, "unknown variable {v:?}"),
            SolverError::EmptyDomain { lo, hi } => {
                write!(f, "empty initial domain [{lo}, {hi}]")
            }
            SolverError::RootInfeasible => write!(f, "model is infeasible at the root node"),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn doc_example_holds() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let y = m.new_var(0, 10);
        m.linear_ge(&[(1, x), (1, y)], 5);
        let obj = m.linear_var(&[(1, x), (1, y)], 0);
        let outcome = m.minimize(obj, &SearchConfig::default());
        assert_eq!(outcome.best.unwrap().value(obj), 5);
    }

    #[test]
    fn error_display_is_informative() {
        let e = SolverError::EmptyDomain { lo: 3, hi: 1 };
        assert!(e.to_string().contains("[3, 1]"));
    }
}
