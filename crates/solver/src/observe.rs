//! Streaming solve events: the [`SolveObserver`] trait and the bounded
//! [`EventLog`] adapter.
//!
//! Long solves — node-budgeted exact branch-and-bound and above all LNS runs
//! — were historically fire-and-forget: the caller learned nothing until the
//! final [`crate::SearchOutcome`] came back. A [`SolveObserver`] threaded
//! into [`crate::search::solve_in_observed`] receives the interesting
//! moments as they happen:
//!
//! * [`SolveObserver::on_incumbent`] — every improving solution (or every
//!   solution, for satisfaction searches);
//! * [`SolveObserver::on_restart`] — a geometric budget growth after a
//!   stalled LNS dive or repair;
//! * [`SolveObserver::on_lns_iteration`] — one destroy/repair iteration
//!   finished;
//! * [`SolveObserver::on_node_budget`] — a node or fail budget was
//!   exhausted;
//! * [`SolveObserver::on_progress`] — a periodic heartbeat every
//!   [`PROGRESS_NODE_INTERVAL`] search nodes with a [`SearchStats`]
//!   snapshot.
//!
//! Every method returns a [`ControlFlow`]: [`ControlFlow::Break`] requests
//! **cooperative cancellation** — the search stops as if a limit had been
//! hit, keeps the best incumbent found so far, and marks
//! [`SearchStats::cancelled`]. Because events are emitted at deterministic
//! points (solution discovery, node counts, iteration boundaries), two runs
//! of the same seeded, node-limited search observe identical event
//! sequences.

use std::ops::ControlFlow;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use crate::search::Assignment;
use crate::stats::SearchStats;

/// Emit [`SolveObserver::on_progress`] every this many search nodes.
pub const PROGRESS_NODE_INTERVAL: u64 = 4096;

/// Receiver of streaming solve events; every hook defaults to a no-op that
/// continues the search. Return [`ControlFlow::Break`] from any hook to
/// cancel the search cooperatively.
pub trait SolveObserver {
    /// A new best solution was recorded. `objective` is its objective value
    /// (`None` for satisfaction searches).
    fn on_incumbent(&mut self, objective: Option<i64>, best: &Assignment) -> ControlFlow<()> {
        let _ = (objective, best);
        ControlFlow::Continue(())
    }

    /// A stalled LNS dive or repair grew its budget geometrically.
    /// `restarts` counts the growths so far; `next_budget` is the budget the
    /// next attempt runs under.
    fn on_restart(&mut self, restarts: u64, next_budget: u64) -> ControlFlow<()> {
        let _ = (restarts, next_budget);
        ControlFlow::Continue(())
    }

    /// One LNS destroy/repair iteration finished. `improved` is true when
    /// the repair found a strictly better incumbent; `best_objective` is the
    /// incumbent objective after the iteration.
    fn on_lns_iteration(
        &mut self,
        iteration: u64,
        improved: bool,
        best_objective: Option<i64>,
    ) -> ControlFlow<()> {
        let _ = (iteration, improved, best_objective);
        ControlFlow::Continue(())
    }

    /// A node or fail budget was exhausted (the search is stopping).
    fn on_node_budget(&mut self, stats: &SearchStats) -> ControlFlow<()> {
        let _ = stats;
        ControlFlow::Continue(())
    }

    /// Periodic heartbeat with a statistics snapshot (every
    /// [`PROGRESS_NODE_INTERVAL`] nodes).
    fn on_progress(&mut self, stats: &SearchStats) -> ControlFlow<()> {
        let _ = stats;
        ControlFlow::Continue(())
    }
}

/// Run one observer hook against an optional observer slot, translating
/// [`ControlFlow::Break`] into `true` (cancel requested).
pub(crate) fn notify(
    observer: &mut Option<&mut dyn SolveObserver>,
    hook: impl FnOnce(&mut dyn SolveObserver) -> ControlFlow<()>,
) -> bool {
    match observer.as_deref_mut() {
        Some(obs) => hook(obs).is_break(),
        None => false,
    }
}

/// One recorded solve event (the [`EventLog`] materialization of the
/// [`SolveObserver`] hooks).
///
/// Not `Eq`: [`SolveEvent::Progress`] carries the live optimality gap as an
/// `f64` (never `NaN`, so `PartialEq` behaves totally in practice).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveEvent {
    /// A new best solution; see [`SolveObserver::on_incumbent`].
    Incumbent {
        /// Objective value of the incumbent (`None` for satisfaction).
        objective: Option<i64>,
    },
    /// A geometric budget growth; see [`SolveObserver::on_restart`].
    Restart {
        /// Number of growths so far.
        restarts: u64,
        /// Budget of the next attempt.
        next_budget: u64,
    },
    /// One LNS iteration finished; see [`SolveObserver::on_lns_iteration`].
    LnsIteration {
        /// Iteration number (1-based).
        iteration: u64,
        /// True when the repair improved the incumbent.
        improved: bool,
        /// Incumbent objective after the iteration.
        best_objective: Option<i64>,
    },
    /// A node/fail budget was exhausted; see
    /// [`SolveObserver::on_node_budget`].
    NodeBudget {
        /// Nodes explored when the budget tripped.
        nodes: u64,
        /// Failures recorded when the budget tripped.
        fails: u64,
    },
    /// Periodic heartbeat; see [`SolveObserver::on_progress`].
    Progress {
        /// Nodes explored so far.
        nodes: u64,
        /// Failures so far.
        fails: u64,
        /// Solutions recorded so far.
        solutions: u64,
        /// Certified dual bound, when [`crate::SearchConfig::bound_mode`]
        /// enabled one (see [`SearchStats::dual_bound`]).
        dual_bound: Option<i64>,
        /// Live optimality gap (see [`SearchStats::gap`]).
        gap: Option<f64>,
    },
}

/// A bounded-channel [`SolveObserver`]: events are pushed into a
/// [`sync_channel`] of fixed capacity (excess events are counted and
/// dropped, never blocking the search) and read back with
/// [`EventLog::drain`]. Optionally cancels the search after a number of
/// incumbents — the cooperative-cancellation building block used by tests
/// and examples.
pub struct EventLog {
    tx: SyncSender<SolveEvent>,
    rx: Receiver<SolveEvent>,
    dropped: u64,
    incumbents: u64,
    cancel_after: Option<u64>,
}

impl EventLog {
    /// An event log holding at most `capacity` undrained events.
    pub fn bounded(capacity: usize) -> Self {
        let (tx, rx) = sync_channel(capacity.max(1));
        EventLog {
            tx,
            rx,
            dropped: 0,
            incumbents: 0,
            cancel_after: None,
        }
    }

    /// Request cancellation after `n` incumbents have been observed.
    pub fn cancel_after_incumbents(mut self, n: u64) -> Self {
        self.cancel_after = Some(n);
        self
    }

    /// Number of events dropped because the channel was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of incumbents observed so far.
    pub fn incumbents(&self) -> u64 {
        self.incumbents
    }

    /// Drain every buffered event, in emission order.
    pub fn drain(&mut self) -> Vec<SolveEvent> {
        let mut out = Vec::new();
        while let Ok(ev) = self.rx.try_recv() {
            out.push(ev);
        }
        out
    }

    fn push(&mut self, event: SolveEvent) {
        match self.tx.try_send(event) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped += 1;
            }
        }
    }
}

impl SolveObserver for EventLog {
    fn on_incumbent(&mut self, objective: Option<i64>, _best: &Assignment) -> ControlFlow<()> {
        self.incumbents += 1;
        self.push(SolveEvent::Incumbent { objective });
        match self.cancel_after {
            Some(n) if self.incumbents >= n => ControlFlow::Break(()),
            _ => ControlFlow::Continue(()),
        }
    }

    fn on_restart(&mut self, restarts: u64, next_budget: u64) -> ControlFlow<()> {
        self.push(SolveEvent::Restart {
            restarts,
            next_budget,
        });
        ControlFlow::Continue(())
    }

    fn on_lns_iteration(
        &mut self,
        iteration: u64,
        improved: bool,
        best_objective: Option<i64>,
    ) -> ControlFlow<()> {
        self.push(SolveEvent::LnsIteration {
            iteration,
            improved,
            best_objective,
        });
        ControlFlow::Continue(())
    }

    fn on_node_budget(&mut self, stats: &SearchStats) -> ControlFlow<()> {
        self.push(SolveEvent::NodeBudget {
            nodes: stats.nodes,
            fails: stats.fails,
        });
        ControlFlow::Continue(())
    }

    fn on_progress(&mut self, stats: &SearchStats) -> ControlFlow<()> {
        self.push(SolveEvent::Progress {
            nodes: stats.nodes,
            fails: stats.fails,
            solutions: stats.solutions,
            dual_bound: stats.dual_bound,
            gap: stats.gap,
        });
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{solve_in_observed, Objective, SearchConfig, SearchSpace};
    use crate::Model;

    fn staircase_model() -> (Model, crate::VarId) {
        // Input-order minimization walks x = 0, 1, 2, ... while the
        // objective 6 - x improves at every leaf: a guaranteed stream of
        // improving incumbents.
        let mut m = Model::new();
        let x = m.new_var(0, 6);
        let obj = m.linear_var(&[(-1, x)], 6);
        (m, obj)
    }

    #[test]
    fn event_log_records_incumbent_stream() {
        let (m, obj) = staircase_model();
        let mut log = EventLog::bounded(256);
        let mut space = SearchSpace::new();
        let out = solve_in_observed(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut space,
            Some(&mut log),
        );
        assert!(out.complete);
        let events = log.drain();
        let incumbents: Vec<Option<i64>> = events
            .iter()
            .filter_map(|e| match e {
                SolveEvent::Incumbent { objective } => Some(*objective),
                _ => None,
            })
            .collect();
        assert_eq!(incumbents.len() as u64, out.stats.solutions);
        assert_eq!(*incumbents.last().unwrap(), out.best_objective);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn cancellation_after_first_incumbent() {
        let (m, obj) = staircase_model();
        let mut log = EventLog::bounded(256).cancel_after_incumbents(1);
        let mut space = SearchSpace::new();
        let out = solve_in_observed(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut space,
            Some(&mut log),
        );
        assert!(!out.complete, "cancelled search must not claim a proof");
        assert!(out.stats.cancelled);
        assert_eq!(out.solutions.len(), 1, "stopped after the first incumbent");
        assert!(out.best.is_some());
        // the uncancelled run keeps improving past the first incumbent
        let full = m.minimize(obj, &SearchConfig::default());
        assert!(full.stats.solutions > 1);
    }

    #[test]
    fn node_budget_event_fires() {
        let (m, obj) = staircase_model();
        let mut log = EventLog::bounded(64);
        let mut space = SearchSpace::new();
        let cfg = SearchConfig {
            node_limit: Some(3),
            ..Default::default()
        };
        let out = solve_in_observed(
            &m,
            Objective::Minimize(obj),
            &cfg,
            &mut space,
            Some(&mut log),
        );
        assert!(!out.complete);
        assert!(log
            .drain()
            .iter()
            .any(|e| matches!(e, SolveEvent::NodeBudget { .. })));
    }

    #[test]
    fn bounded_channel_drops_instead_of_blocking() {
        let (m, obj) = staircase_model();
        let mut log = EventLog::bounded(1);
        let mut space = SearchSpace::new();
        let _ = solve_in_observed(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut space,
            Some(&mut log),
        );
        assert!(log.dropped() > 0, "a 1-slot channel must overflow");
        assert_eq!(log.drain().len(), 1);
    }

    #[test]
    fn observed_and_unobserved_runs_agree() {
        let (m, obj) = staircase_model();
        let plain = m.minimize(obj, &SearchConfig::default());
        let mut log = EventLog::bounded(256);
        let mut space = SearchSpace::new();
        let observed = solve_in_observed(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut space,
            Some(&mut log),
        );
        assert_eq!(observed.best_objective, plain.best_objective);
        assert_eq!(observed.solutions, plain.solutions);
        assert_eq!(observed.stats.nodes, plain.stats.nodes);
        assert_eq!(observed.stats.fails, plain.stats.fails);
    }
}
