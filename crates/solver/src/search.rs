//! Depth-first search with branch-and-bound on a trail-based store.
//!
//! This mirrors the "standard branch-and-bound searching approach" the paper
//! attributes to Gecode (Sec. 5.1): depth-first exploration, constraint
//! propagation at every node, and — for `minimize`/`maximize` goals — a
//! bound that is tightened every time an improving solution is found.
//! `SOLVER_MAX_TIME` from the paper maps to [`SearchConfig::time_limit`].
//!
//! # State management: trail instead of copy-on-branch
//!
//! The searcher keeps **one** mutable [`Store`] of domains for the whole
//! search. Entering a branch opens a decision level
//! ([`Store::push_choice`]), applies the branching decision and propagates;
//! leaving it restores every touched domain from the trail
//! ([`Store::backtrack`]) in O(changes). Nothing on the per-node path clones
//! the domain vector. The decision tree itself is walked with an explicit
//! stack of `Frame`s rather than recursion, so arbitrarily deep searches
//! (e.g. Follow-the-Sun value enumeration over wide migration domains)
//! cannot overflow the call stack, and all limit checks happen in one place
//! (`Searcher::enter_node`).
//!
//! Invariants tying the pieces together:
//!
//! * every decision frame below the root owns exactly one open trail level —
//!   the one pushed when the branch that created it was applied; popping the
//!   frame backtracks that level;
//! * before branch `i+1` of a frame is tried, the store is in exactly the
//!   state the frame was created in (its node state);
//! * branch-and-bound objective tightening happens at *node entry*, inside
//!   the node's own trail level, so it is undone with the node.
//!
//! All search allocations (store, trail, propagation queue, decision stack,
//! branch-value arena) live in a [`SearchSpace`] that callers can reuse
//! across repeated solver invocations.
//!
//! [`solve_reference`] retains the previous copy-on-branch implementation
//! (cloning the whole store at every branch). It exists to pin the trail
//! searcher's behaviour: both must produce identical incumbents, solution
//! sets and fail counts on every model.

use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use crate::bounds::{self, BoundCertificate, BoundMode};
use crate::domain::Domain;
use crate::lns::SolverMode;
use crate::model::{Model, VarId};
use crate::observe::{notify, SolveObserver, PROGRESS_NODE_INTERVAL};
use crate::stats::SearchStats;
use crate::store::{PropQueue, Store};

/// Variable-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Branching {
    /// Branch on variables in creation order (Gecode's `INT_VAR_NONE`).
    #[default]
    InputOrder,
    /// Branch on the unfixed variable with the smallest domain first
    /// (first-fail, Gecode's `INT_VAR_SIZE_MIN`). Domain sizes are O(1)
    /// lookups on the store, so this scan is cheap even on large models.
    SmallestDomain,
    /// Branch on the unfixed variable with the largest domain first.
    LargestDomain,
}

/// Value-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueChoice {
    /// Try the smallest value first (Gecode's `INT_VAL_MIN`).
    #[default]
    Min,
    /// Try the largest value first.
    Max,
    /// Split the domain at its median (domain bisection).
    Split,
    /// Try the value with the smallest absolute magnitude first (ties break
    /// toward the negative value); bisection branches descend into the half
    /// nearer to zero. On cost models built from absolute values — the
    /// `SUMABS` migration objectives of the paper's Follow-the-Sun COP,
    /// where `migVm = 0` means "don't migrate" — this reaches a cheap
    /// incumbent almost immediately, so branch-and-bound prunes with a tight
    /// bound from the start instead of improving through a long chain of
    /// expensive incumbents.
    ClosestToZero,
}

/// Reorder a frame's enumeration values (produced in ascending domain
/// order) according to the configured value choice.
fn order_values(choice: ValueChoice, values: &mut [i64]) {
    match choice {
        ValueChoice::Min | ValueChoice::Split => {}
        ValueChoice::Max => values.reverse(),
        ValueChoice::ClosestToZero => values.sort_by_key(|&v| (v.unsigned_abs(), v)),
    }
}

/// Which half a bisection branch explores first: `true` tries `> mid`
/// before `<= mid`.
fn split_hi_first(choice: ValueChoice, mid: i64) -> bool {
    match choice {
        ValueChoice::Max => true,
        // The half nearer zero: `<= mid` contains zero (or is uniformly
        // closer to it) exactly when the median is non-negative.
        ValueChoice::ClosestToZero => mid < 0,
        ValueChoice::Min | ValueChoice::Split => false,
    }
}

/// What the search should optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the given variable.
    Minimize(VarId),
    /// Maximize the given variable.
    Maximize(VarId),
    /// Just find satisfying assignments.
    Satisfy,
}

/// Domain size above which [`ValueChoice::Min`]/[`ValueChoice::Max`] fall
/// back to domain bisection, unless [`SearchConfig::split_threshold`]
/// overrides it.
pub const DEFAULT_SPLIT_THRESHOLD: u64 = 16;

/// Search configuration; the defaults match the paper's setup (input-order
/// branching, minimum-value-first, no limits).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Exploration mode: exact branch-and-bound (the default), or large
    /// neighborhood search ([`SolverMode::Lns`]) for instances exact search
    /// cannot close. LNS applies to optimization objectives only;
    /// satisfaction goals always run exact.
    pub mode: SolverMode,
    /// Variable selection heuristic.
    pub branching: Branching,
    /// Value selection heuristic.
    pub value_choice: ValueChoice,
    /// Domain size above which value enumeration switches to domain
    /// bisection even when [`SearchConfig::value_choice`] is `Min`/`Max`.
    ///
    /// Enumerating a huge domain value-by-value makes the branching factor
    /// of a single node explode, so by default domains larger than
    /// [`DEFAULT_SPLIT_THRESHOLD`] are bisected instead. Set to `None` to
    /// always honor the configured `value_choice` exactly, or pick
    /// [`ValueChoice::Split`] to bisect unconditionally. (This used to be a
    /// hidden constant that silently overrode the configured value choice.)
    pub split_threshold: Option<u64>,
    /// Wall-clock limit for the whole search (the paper's `SOLVER_MAX_TIME`).
    pub time_limit: Option<Duration>,
    /// Stop after this many failures.
    pub fail_limit: Option<u64>,
    /// Stop after this many solutions (for `Satisfy`, collect at most this
    /// many; for optimization, stop improving after this many incumbents).
    pub max_solutions: Option<usize>,
    /// Stop after this many search nodes.
    pub node_limit: Option<u64>,
    /// A known feasible assignment that seeds the search — the incremental
    /// re-optimization hook: the Cologne pipeline carries the previous
    /// invocation's best assignment (completed against the new model by
    /// [`complete_hints`]) across solver invocations.
    ///
    /// For exact optimization the warm assignment's objective value becomes
    /// the initial branch-and-bound bound, applied *non-strictly* (solutions
    /// equal to the warm objective are still accepted): the search explores
    /// the same tree as a cold run minus the subtrees that cannot match the
    /// warm objective, so with a static branching order it records the same
    /// final incumbent as the cold run while skipping most of the
    /// incumbent-discovery work. The warm assignment itself is returned only
    /// when a limit stops the search before it finds any solution. For LNS
    /// the warm assignment replaces the initial exact incumbent dive. An
    /// assignment that does not cover the model or violates a constraint is
    /// ignored (the search falls back to a cold start); `Satisfy` searches
    /// ignore warm starts entirely.
    pub warm_start: Option<Assignment>,
    /// Number of worker threads for the parallel engines of
    /// [`crate::parallel`]. `None` (the default) or `Some(1)` runs the
    /// sequential searchers, bit-identical to previous releases. With two or
    /// more workers, exact searches split the top decision levels into
    /// independent subtrees drained by scoped worker threads sharing an
    /// incumbent bound, and LNS runs a multi-seed portfolio sharing
    /// incumbents at round boundaries. The reported result (objective, best
    /// assignment, incumbent sequence) stays identical to the sequential
    /// search; see the module docs of [`crate::parallel`] for the exact
    /// determinism contract and its node-count caveat.
    pub workers: Option<NonZeroUsize>,
    /// Stop as soon as the certified optimality gap drops *strictly below*
    /// this threshold (requires [`SearchConfig::bound_mode`] ≠
    /// [`BoundMode::Off`], otherwise no gap ever exists and the limit is
    /// inert). The comparison is strict, so `Some(0.0)` never stops a search
    /// early — the gap is never negative — and such a run explores exactly
    /// the tree an unlimited run explores. Gap checks happen only at the
    /// points where budget limits are already checked, so gap-limited runs
    /// remain rerun-deterministic.
    pub gap_limit: Option<f64>,
    /// Which dual-bound engine (if any) runs at the frozen root; see
    /// [`crate::bounds`]. The default [`BoundMode::Off`] computes nothing and
    /// keeps every search byte-identical to previous releases.
    pub bound_mode: BoundMode,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            mode: SolverMode::default(),
            branching: Branching::default(),
            value_choice: ValueChoice::default(),
            split_threshold: Some(DEFAULT_SPLIT_THRESHOLD),
            time_limit: None,
            fail_limit: None,
            max_solutions: None,
            node_limit: None,
            warm_start: None,
            workers: None,
            gap_limit: None,
            bound_mode: BoundMode::default(),
        }
    }
}

impl SearchConfig {
    /// Convenience constructor with only a time limit, mirroring the paper's
    /// "we limit each solver's COP execution time to 10 seconds".
    pub fn with_time_limit(limit: Duration) -> Self {
        SearchConfig {
            time_limit: Some(limit),
            ..Default::default()
        }
    }
}

/// A complete assignment of values to all model variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    pub(crate) values: Vec<i64>,
}

impl Assignment {
    pub(crate) fn from_domains(domains: &[Domain]) -> Self {
        Assignment {
            values: domains.iter().map(|d| d.min()).collect(),
        }
    }

    /// Value assigned to `v`.
    pub fn value(&self, v: VarId) -> i64 {
        self.values[v.index()]
    }

    /// Values of a slice of variables.
    pub fn values_of(&self, vars: &[VarId]) -> Vec<i64> {
        vars.iter().map(|&v| self.value(v)).collect()
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best assignment found (for optimization), or the first solution (for
    /// satisfaction). `None` if no solution was found.
    pub best: Option<Assignment>,
    /// Objective value of `best`, when optimizing.
    pub best_objective: Option<i64>,
    /// All solutions collected (for `Satisfy`; for optimization this is the
    /// sequence of improving incumbents).
    pub solutions: Vec<Assignment>,
    /// Search statistics.
    pub stats: SearchStats,
    /// True if the search space was fully explored (the result is proven
    /// optimal / complete), false if a limit stopped it early.
    pub complete: bool,
    /// The dual-bound certificate computed at the frozen root, when
    /// [`SearchConfig::bound_mode`] enabled one (see [`crate::bounds`]).
    /// A gap-terminated search documents its solution quality here.
    pub certificate: Option<BoundCertificate>,
}

/// How the two branches of a decision frame are generated.
#[derive(Debug, Clone, Copy)]
enum BranchKind {
    /// Branch `i` assigns the `i`-th value of the frame's arena slice.
    Values,
    /// Domain bisection at `mid`: one branch keeps `<= mid`, the other
    /// `> mid`; `hi_first` tries the upper half first ([`ValueChoice::Max`]
    /// always; [`ValueChoice::ClosestToZero`] when the upper half is the one
    /// nearer zero).
    Split { mid: i64, hi_first: bool },
}

/// One concrete branching decision. `pub(crate)` because the parallel
/// frontier enumerator ([`crate::parallel`]) records the decision path of
/// each subtree as a sequence of these ops and replays them on worker-local
/// stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BranchOp {
    Assign(i64),
    Le(i64),
    Gt(i64),
}

/// Apply one branching decision to `store` — the single definition shared by
/// the sequential driver and the parallel subtree replay, so the two cannot
/// drift apart.
pub(crate) fn apply_branch(store: &mut Store, var_idx: usize, op: BranchOp) -> Result<bool, ()> {
    match op {
        BranchOp::Assign(v) => store.assign(var_idx, v),
        BranchOp::Le(mid) => store.remove_above(var_idx, mid),
        BranchOp::Gt(mid) => store.remove_below(var_idx, mid + 1),
    }
}

/// Mirror of the searcher's per-node branching logic as a pure function of
/// the configuration and the current (propagated) domains: the variable the
/// node branches on and the ordered branch decisions it would try, or `None`
/// when every variable is fixed (the node is a solution leaf).
///
/// The parallel frontier enumerator uses this to expand a node into subtree
/// seeds; it must stay in lock-step with `Searcher::enter_node` /
/// `Frame::branch_op` so that the enumerated frontier is exactly the set of
/// branches the sequential search would try, in the same order.
pub(crate) fn node_branches(
    config: &SearchConfig,
    domains: &[Domain],
) -> Option<(usize, Vec<BranchOp>)> {
    let var_idx = select_var_with(config.branching, domains)?;
    let domain = &domains[var_idx];
    let ops = if use_split_with(config, domain.size()) {
        let mid = domain.median();
        if split_hi_first(config.value_choice, mid) {
            vec![BranchOp::Gt(mid), BranchOp::Le(mid)]
        } else {
            vec![BranchOp::Le(mid), BranchOp::Gt(mid)]
        }
    } else {
        let mut values: Vec<i64> = domain.iter().collect();
        order_values(config.value_choice, &mut values);
        values.into_iter().map(BranchOp::Assign).collect()
    };
    Some((var_idx, ops))
}

/// Variable selection as a free function (shared by the searcher and the
/// parallel frontier enumerator).
fn select_var_with(branching: Branching, domains: &[Domain]) -> Option<usize> {
    let unfixed = domains.iter().enumerate().filter(|(_, d)| !d.is_fixed());
    match branching {
        Branching::InputOrder => unfixed.map(|(i, _)| i).next(),
        Branching::SmallestDomain => unfixed.min_by_key(|(_, d)| d.size()).map(|(i, _)| i),
        Branching::LargestDomain => unfixed.max_by_key(|(_, d)| d.size()).map(|(i, _)| i),
    }
}

/// Should a node with this domain size bisect instead of enumerating values?
fn use_split_with(config: &SearchConfig, size: u64) -> bool {
    let forced = matches!(config.value_choice, ValueChoice::Split);
    (forced || config.split_threshold.is_some_and(|t| size > t)) && size > 2
}

/// The initial branch-and-bound bound seeded by a warm assignment's
/// objective value: applied *non-strictly* (offset by one) so solutions
/// matching the warm objective are still recorded. `None` for `Satisfy`.
pub(crate) fn warm_bound_seed(objective: Objective, value: i64) -> Option<i64> {
    match objective {
        Objective::Minimize(_) => Some(value.saturating_add(1)),
        Objective::Maximize(_) => Some(value.saturating_sub(1)),
        Objective::Satisfy => None,
    }
}

/// One open node of the explicit decision stack.
///
/// A frame is created when its node survives entry (limits, bounding,
/// propagation) with at least one unfixed variable. Every frame except the
/// root owns the trail level pushed by the branch that reached it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    /// Index of the variable this node branches on.
    var_idx: usize,
    /// Next branch to try.
    next: usize,
    /// Total number of branches.
    num_branches: usize,
    /// Start of this frame's slice of the branch-value arena.
    values_start: usize,
    kind: BranchKind,
}

impl Frame {
    fn branch_op(&self, i: usize, values: &[i64]) -> BranchOp {
        match self.kind {
            BranchKind::Values => BranchOp::Assign(values[self.values_start + i]),
            BranchKind::Split { mid, hi_first } => {
                if (i == 0) == hi_first {
                    BranchOp::Gt(mid)
                } else {
                    BranchOp::Le(mid)
                }
            }
        }
    }
}

/// Reusable search state: the trail-backed domain [`Store`], the propagation
/// [`PropQueue`], the explicit decision stack and the branch-value arena.
///
/// Holding one `SearchSpace` across repeated solver invocations (as the
/// Cologne grounding scratch does) means the hot `invokeSolver` path performs
/// no per-invocation search allocations beyond what the model itself needs.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    pub(crate) store: Store,
    pub(crate) queue: PropQueue,
    pub(crate) frames: Vec<Frame>,
    /// Pending branch values of every open frame, stacked contiguously; a
    /// frame's slice starts at its `values_start` and is truncated away when
    /// the frame is popped.
    pub(crate) values: Vec<i64>,
    /// Worker-private spaces for the parallel engines ([`crate::parallel`]),
    /// lazily grown to the configured worker count and retained across
    /// invocations so repeated parallel solves reuse their trails, queues and
    /// arenas the same way sequential solves reuse this space. Empty unless
    /// [`SearchConfig::workers`] ever enabled parallelism.
    pub(crate) pool: Vec<SearchSpace>,
}

impl SearchSpace {
    /// Fresh empty space.
    pub fn new() -> Self {
        SearchSpace::default()
    }
}

struct Searcher<'m, 'o, 'p> {
    model: &'m Model,
    objective: Objective,
    config: SearchConfig,
    stats: SearchStats,
    start: Instant,
    best: Option<Assignment>,
    best_objective: Option<i64>,
    solutions: Vec<Assignment>,
    stopped: bool,
    /// Dual-bound certificate computed at this search's frozen root, when
    /// [`SearchConfig::bound_mode`] enabled an engine.
    certificate: Option<BoundCertificate>,
    /// Objective value of the best *feasible* assignment known — the warm
    /// start's value or the latest incumbent's. Tracked separately from
    /// `best_objective`, which warm seeding offsets by one to keep the
    /// branch-and-bound bound non-strict; the gap must measure a real
    /// solution, not the offset bound.
    primal: Option<i64>,
    /// Streaming event sink slot; `ControlFlow::Break` from any hook cancels
    /// the search cooperatively (see [`crate::observe`]). Held as a slot
    /// reference so nested searches (LNS dives and repairs) can share one
    /// observer without fighting the trait object's invariant lifetime.
    observer: &'o mut Option<&'p mut dyn SolveObserver>,
    /// Coupling to a parallel-search coordinator, when this searcher runs as
    /// a subtree worker (see [`crate::parallel`]): cooperative cancellation,
    /// the shared node budget, the shared incumbent-bound slots. `None` on
    /// every sequential path.
    link: Option<&'m crate::parallel::SearchLink<'m>>,
}

/// Run a search over `model` with the given objective.
pub fn solve(model: &Model, objective: Objective, config: &SearchConfig) -> SearchOutcome {
    let mut space = SearchSpace::new();
    solve_in(model, objective, config, &mut space)
}

/// Run a search over `model`, reusing the caller's [`SearchSpace`].
///
/// Dispatches on [`SearchConfig::mode`]: optimization objectives under
/// [`SolverMode::Lns`] run the destroy/repair driver of [`crate::lns`];
/// everything else (the default) runs exact branch-and-bound.
pub fn solve_in(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    space: &mut SearchSpace,
) -> SearchOutcome {
    solve_in_observed(model, objective, config, space, None)
}

/// [`solve_in`] with a streaming [`SolveObserver`]: incumbents, restarts,
/// LNS iterations, budget exhaustion and periodic progress are reported as
/// they happen, and the observer can cancel the search cooperatively by
/// returning [`std::ops::ControlFlow::Break`] (the outcome then carries the
/// best incumbent found and [`SearchStats::cancelled`]).
pub fn solve_in_observed(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    space: &mut SearchSpace,
    observer: Option<&mut dyn SolveObserver>,
) -> SearchOutcome {
    let mut observer = observer;
    let workers = crate::parallel::worker_count(config);
    if let SolverMode::Lns(lns) = &config.mode {
        if !matches!(objective, Objective::Satisfy) {
            let lns = lns.clone();
            if workers > 1 {
                return crate::parallel::solve_lns_portfolio(
                    model,
                    objective,
                    config,
                    &lns,
                    workers,
                    space,
                    &mut observer,
                );
            }
            return crate::lns::solve_lns(model, objective, config, &lns, space, &mut observer);
        }
    }
    if workers > 1 {
        return crate::parallel::solve_exact_parallel(
            model,
            objective,
            config,
            workers,
            space,
            &mut observer,
        );
    }
    solve_exact_in(model, objective, config, space, &mut observer)
}

/// The exact branch-and-bound search (ignores [`SearchConfig::mode`]); the
/// LNS driver calls this for its incumbent dives.
pub(crate) fn solve_exact_in(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    space: &mut SearchSpace,
    observer: &mut Option<&mut dyn SolveObserver>,
) -> SearchOutcome {
    let mut searcher = Searcher::new(model, objective, config.clone(), observer);
    let warm = validated_warm(model, objective, config);
    if let Some((_, value)) = &warm {
        searcher.seed_warm_bound(*value);
    }
    space.store.reset_from(model.domains());
    space.frames.clear();
    space.values.clear();
    let root_ok = model
        .propagate_in(
            &mut space.store,
            &mut space.queue,
            &mut searcher.stats,
            None,
        )
        .is_ok();
    if root_ok {
        // The root fixpoint is this search's frozen root; the dual bound is
        // computed against exactly these domains and stays valid for every
        // node below. `BoundMode::Off` (the default) computes nothing.
        searcher.install_certificate(bounds::compute_root_bound(
            model,
            objective,
            config,
            space.store.domains(),
        ));
        searcher.run(space);
    }
    finish_with_warm(searcher, warm)
}

/// Validate a configured warm start against the model: `Some((assignment,
/// objective value))` when it is usable, `None` otherwise (no warm start
/// configured, satisfaction objective, or an assignment that does not cover
/// the model / falls outside a root domain / violates a propagator).
pub(crate) fn validated_warm(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
) -> Option<(Assignment, i64)> {
    let (Objective::Minimize(o) | Objective::Maximize(o)) = objective else {
        return None;
    };
    let warm = config.warm_start.as_ref()?;
    if !warm_start_valid(model, warm) {
        return None;
    }
    Some((warm.clone(), warm.value(o)))
}

/// True when `warm` is a complete, feasible assignment of `model`: it covers
/// every variable, every value lies inside the variable's root domain, and
/// every propagator accepts the assignment.
pub(crate) fn warm_start_valid(model: &Model, warm: &Assignment) -> bool {
    if warm.len() != model.num_vars() || warm.is_empty() {
        return false;
    }
    let domains = model.domains();
    if (0..model.num_vars()).any(|i| !domains[i].contains(warm.value(VarId::from_index(i)))) {
        return false;
    }
    model
        .propagators()
        .iter()
        .all(|p| p.check(&|v| warm.value(v)))
}

/// Common tail of the exact searchers: when a limit stopped the search
/// before any solution appeared but a valid warm assignment exists, report
/// the warm assignment (it is feasible by validation) instead of "no
/// solution found".
fn finish_with_warm(
    searcher: Searcher<'_, '_, '_>,
    warm: Option<(Assignment, i64)>,
) -> SearchOutcome {
    let mut outcome = searcher.finish();
    if outcome.best.is_none() {
        if let Some((assignment, value)) = warm {
            outcome.best_objective = Some(value);
            outcome.best = Some(assignment);
        }
    }
    outcome
}

/// Complete a *partial* warm-start hint set into a full feasible assignment
/// of `model` — the bridge between two solver invocations whose models
/// differ structurally (the incremental re-optimization path).
///
/// The caller maps whatever survived from the previous solution onto the new
/// model's variables (`hints`); this probe fixes those variables (abandoning
/// the attempt on any conflict), then runs a small fail-bounded first-fail
/// exact search over the remaining variables, minimizing/maximizing
/// `objective` below the hints. The best completion found becomes the
/// [`SearchConfig::warm_start`] assignment of the subsequent full search.
/// Returns `None` when the hints are empty or inconsistent, or when the
/// bounded completion search finds no leaf within `fail_limit` failures —
/// the caller then falls back to a cold start.
pub fn complete_hints(
    model: &Model,
    objective: Objective,
    hints: &[(VarId, i64)],
    space: &mut SearchSpace,
    fail_limit: u64,
) -> Option<Assignment> {
    if hints.is_empty() || model.num_vars() == 0 {
        return None;
    }
    let mut stats = SearchStats::default();
    space.store.reset_from(model.domains());
    space.frames.clear();
    space.values.clear();
    if model
        .propagate_in(&mut space.store, &mut space.queue, &mut stats, None)
        .is_err()
    {
        return None;
    }
    space.store.push_choice();
    let mut consistent = true;
    // (The completion probe runs unobserved: its incumbents are warm-start
    // candidates, not solutions of the caller's search.)
    for &(var, value) in hints {
        let idx = var.index();
        match space.store.assign(idx, value) {
            Err(()) => {
                consistent = false;
                break;
            }
            Ok(true) => {
                if model
                    .propagate_in(
                        &mut space.store,
                        &mut space.queue,
                        &mut stats,
                        Some(model.props_watching(idx)),
                    )
                    .is_err()
                {
                    consistent = false;
                    break;
                }
            }
            Ok(false) => {}
        }
    }
    let best = if consistent {
        let probe_cfg = SearchConfig {
            mode: SolverMode::Exact,
            branching: Branching::SmallestDomain,
            fail_limit: Some(fail_limit),
            ..Default::default()
        };
        resolve_subtree(model, objective, &probe_cfg, space, None, &mut None).best
    } else {
        None
    };
    while space.store.level() > 0 {
        space.store.backtrack();
    }
    space.frames.clear();
    space.values.clear();
    best
}

/// The retained copy-on-branch reference implementation: recursive DFS that
/// clones the entire domain store at every branch and keeps the pre-trail
/// bounding semantics — after an incumbent exists, every node tightens the
/// objective bound and re-propagates seeded with *all* propagators, whether
/// or not the bound moved.
///
/// It shares the propagation engine, heuristics and limit handling with the
/// trail-based searcher, so the two must return identical incumbents,
/// solution sets, node counts and fail counts on every model (only
/// propagation/pruning counters may differ) — the equivalence property and
/// integration tests assert exactly that. Because the trail searcher instead
/// skips the no-op bounding propagation and seeds only the objective's
/// watchers, those tests also pin the argument that the seeding optimization
/// reaches the same fixpoint. Keep this for those tests (and as executable
/// documentation of the search semantics); it is not a production path.
pub fn solve_reference(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
) -> SearchOutcome {
    let mut no_observer: Option<&mut dyn SolveObserver> = None;
    let mut searcher = Searcher::new(model, objective, config.clone(), &mut no_observer);
    let warm = validated_warm(model, objective, config);
    if let Some((_, value)) = &warm {
        searcher.seed_warm_bound(*value);
    }
    let mut store = Store::from_domains(model.domains().to_vec());
    let mut queue = PropQueue::new();
    let root_ok = model
        .propagate_in(&mut store, &mut queue, &mut searcher.stats, None)
        .is_ok();
    if root_ok {
        searcher.dfs_cloning(store, &mut queue, 0);
    }
    finish_with_warm(searcher, warm)
}

/// Run a bounded exact search *below the current store state* — the repair
/// step of the LNS driver.
///
/// Contract with the caller ([`crate::lns::solve_lns`]):
///
/// * the caller has opened a trail level (the "freeze" level), applied its
///   partial assignment plus the improving objective bound, and propagated
///   the store to a fixpoint;
/// * `incumbent` is the objective value of the caller's incumbent, seeded as
///   the searcher's branch-and-bound bound so every solution this search
///   records is a strict improvement;
/// * on return, the store holds whatever trail levels an early stop left
///   open *above* the freeze level; the caller unwinds them (and the freeze
///   level itself) with [`Store::backtrack`] — that unwind *is* the destroy
///   step of the next LNS iteration.
pub(crate) fn resolve_subtree(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    space: &mut SearchSpace,
    incumbent: Option<i64>,
    observer: &mut Option<&mut dyn SolveObserver>,
) -> SearchOutcome {
    debug_assert!(
        space.store.level() > 0,
        "resolve_subtree requires an open freeze level"
    );
    let mut searcher = Searcher::new(model, objective, config.clone(), observer);
    searcher.best_objective = incumbent;
    space.frames.clear();
    space.values.clear();
    searcher.run(space);
    searcher.finish()
}

/// [`resolve_subtree`] for a parallel subtree worker: unobserved (the
/// [`SolveObserver`] is not `Send`, so events are sequenced on the
/// coordinator thread from the merged result instead), coupled to the
/// coordinator through `link` for cancellation, the shared node budget and
/// entry-bound invalidation (`incumbent` is the worker's speculative entry
/// bound; the coordinator validates it against the sequential bound).
pub(crate) fn resolve_subtree_linked(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    space: &mut SearchSpace,
    incumbent: Option<i64>,
    link: &crate::parallel::SearchLink<'_>,
) -> SearchOutcome {
    debug_assert!(
        space.store.level() > 0,
        "resolve_subtree_linked requires an open subtree level"
    );
    let mut no_observer: Option<&mut dyn SolveObserver> = None;
    let mut searcher = Searcher::new(model, objective, config.clone(), &mut no_observer);
    searcher.link = Some(link);
    searcher.best_objective = incumbent;
    space.frames.clear();
    space.values.clear();
    searcher.run(space);
    searcher.finish()
}

impl<'m, 'o, 'p> Searcher<'m, 'o, 'p> {
    fn new(
        model: &'m Model,
        objective: Objective,
        config: SearchConfig,
        observer: &'o mut Option<&'p mut dyn SolveObserver>,
    ) -> Self {
        Searcher {
            model,
            objective,
            config,
            stats: SearchStats::default(),
            start: Instant::now(),
            best: None,
            best_objective: None,
            solutions: Vec::new(),
            stopped: false,
            certificate: None,
            primal: None,
            observer,
            link: None,
        }
    }

    /// Seed the branch-and-bound bound from a warm assignment's objective
    /// value. The bound is applied *non-strictly* (offset by one) so that
    /// solutions matching the warm objective are still found and recorded —
    /// this keeps the final incumbent identical to a cold run's under a
    /// static branching order (see [`SearchConfig::warm_start`]).
    fn seed_warm_bound(&mut self, value: i64) {
        let Some(seed) = warm_bound_seed(self.objective, value) else {
            return;
        };
        self.best_objective = Some(seed);
        // The warm assignment is feasible by validation, so its objective
        // value is a sound primal for the optimality gap.
        self.primal = Some(value);
        self.stats.warm_start = true;
    }

    /// Install a certified dual bound computed at the (propagated) root this
    /// search runs below: record it in the stats and refresh the live gap
    /// against whatever primal is already known (a warm-start value).
    fn install_certificate(&mut self, certificate: Option<BoundCertificate>) {
        let Some(certificate) = certificate else {
            return;
        };
        self.stats.dual_bound = Some(certificate.dual_bound);
        self.certificate = Some(certificate);
        self.refresh_gap();
    }

    /// Recompute [`SearchStats::gap`] from the current primal and dual
    /// bound. A no-op until both exist, so with [`BoundMode::Off`] the gap
    /// stays `None` forever.
    fn refresh_gap(&mut self) {
        if let (Some(primal), Some(dual)) = (self.primal, self.stats.dual_bound) {
            self.stats.gap = Some(bounds::optimality_gap(self.objective, primal, dual));
        }
    }

    fn finish(self) -> SearchOutcome {
        let mut stats = self.stats;
        stats.elapsed_micros = self.start.elapsed().as_micros() as u64;
        stats.limit_reached = self.stopped;
        SearchOutcome {
            best: self.best,
            best_objective: self.best_objective,
            solutions: self.solutions,
            stats,
            complete: !self.stopped,
            certificate: self.certificate,
        }
    }

    /// Mark the search cancelled by the observer: it stops like a limit hit,
    /// keeping whatever incumbent exists.
    fn cancel(&mut self) {
        self.stopped = true;
        self.stats.cancelled = true;
    }

    fn check_limits(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if let Some(link) = self.link {
            if link.cancelled() {
                self.cancel();
                return true;
            }
            // A published prefix incumbent has beaten this worker's entry
            // bound: the speculative run is doomed to fail validation, so
            // abandon it early (the coordinator redoes the subtree with the
            // exact sequential entry bound).
            if self.stats.nodes % 64 == 0 && link.invalidated() {
                self.stopped = true;
                return true;
            }
            if link.node_budget_exhausted() {
                self.stopped = true;
                return true;
            }
        }
        // Gap-driven termination: the gap only changes when the incumbent or
        // the dual bound does (both deterministic events), and it is checked
        // here — the same place every budget limit is checked — so a
        // gap-limited run is rerun-deterministic. Strict comparison: a zero
        // threshold never stops early (the gap is never negative).
        if let (Some(limit), Some(gap)) = (self.config.gap_limit, self.stats.gap) {
            if gap < limit {
                self.stopped = true;
                return true;
            }
        }
        if let Some(t) = self.config.time_limit {
            // Only check the clock periodically; Instant::elapsed is cheap but
            // not free on hot paths.
            if self.stats.nodes % 64 == 0 && self.start.elapsed() > t {
                self.stopped = true;
                return true;
            }
        }
        let budget_hit = self
            .config
            .fail_limit
            .is_some_and(|f| self.stats.fails >= f)
            || self
                .config
                .node_limit
                .is_some_and(|n| self.stats.nodes >= n);
        if budget_hit {
            self.stopped = true;
            if notify(&mut *self.observer, |o| o.on_node_budget(&self.stats)) {
                self.stats.cancelled = true;
            }
            return true;
        }
        false
    }

    fn solution_limit_hit(&self) -> bool {
        match self.config.max_solutions {
            Some(k) => self.solutions.len() >= k,
            None => false,
        }
    }

    fn select_var(&self, domains: &[Domain]) -> Option<usize> {
        select_var_with(self.config.branching, domains)
    }

    fn objective_bound_ok(&self, domains: &[Domain]) -> bool {
        match (self.objective, self.best_objective) {
            (Objective::Minimize(o), Some(best)) => domains[o.index()].min() < best,
            (Objective::Maximize(o), Some(best)) => domains[o.index()].max() > best,
            _ => true,
        }
    }

    fn record_solution(&mut self, domains: &[Domain]) {
        let assignment = Assignment::from_domains(domains);
        self.stats.solutions += 1;
        let objective_value = match self.objective {
            Objective::Satisfy => {
                self.best.get_or_insert_with(|| assignment.clone());
                None
            }
            Objective::Minimize(o) | Objective::Maximize(o) => {
                let value = assignment.value(o);
                self.best_objective = Some(value);
                self.best = Some(assignment.clone());
                self.primal = Some(value);
                self.refresh_gap();
                Some(value)
            }
        };
        if notify(&mut *self.observer, |o| {
            o.on_incumbent(objective_value, &assignment)
        }) {
            self.cancel();
        }
        self.solutions.push(assignment);
    }

    /// Should this node bisect the domain instead of enumerating values?
    fn use_split(&self, size: u64) -> bool {
        use_split_with(&self.config, size)
    }

    /// Tighten the objective domain with the incumbent bound at node entry.
    /// Returns whether the bound actually changed (and propagation is
    /// needed), or `Err` if the tightening wiped the objective domain.
    fn tighten_bound(&mut self, store: &mut Store) -> Result<bool, ()> {
        match (self.objective, self.best_objective) {
            (Objective::Minimize(o), Some(best)) => store.remove_above(o.index(), best - 1),
            (Objective::Maximize(o), Some(best)) => store.remove_below(o.index(), best + 1),
            _ => Ok(false),
        }
    }

    /// Propagation seed after the objective bound tightened: the store was at
    /// a fixpoint for *every* propagator at node entry and the tightening
    /// only changed the objective's domain, so seeding the queue with the
    /// objective's watchers reaches exactly the same fixpoint (and the same
    /// conflicts) as seeding with every propagator — without rescanning
    /// unrelated constraints at every bounded node.
    fn bound_seed(&self) -> &'m [usize] {
        match self.objective {
            Objective::Minimize(o) | Objective::Maximize(o) => self.model.props_watching(o.index()),
            Objective::Satisfy => &[],
        }
    }

    // ----- trail-based search (the production path) -------------------------

    /// Process node entry on the current store state: limit checks, the
    /// branch-and-bound objective bound, leaf detection and frame creation.
    /// Returns `true` iff a frame was pushed (the node has branches to try).
    fn enter_node(&mut self, space: &mut SearchSpace, depth: u64) -> bool {
        if self.check_limits() || self.solution_limit_hit() {
            return false;
        }
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if let Some(link) = self.link {
            link.count_node();
        }
        if self.stats.nodes % PROGRESS_NODE_INTERVAL == 0
            && notify(&mut *self.observer, |o| o.on_progress(&self.stats))
        {
            self.cancel();
            return false;
        }

        // Branch-and-bound: tighten the objective with the incumbent. The
        // tightening happens inside this node's trail level, so it is undone
        // together with the node. Propagation only runs when the bound
        // actually moved (the store was already at a fixpoint otherwise).
        match self.tighten_bound(&mut space.store) {
            Err(()) => {
                self.stats.fails += 1;
                return false;
            }
            Ok(true) => {
                let seed = self.bound_seed();
                if self
                    .model
                    .propagate_in(
                        &mut space.store,
                        &mut space.queue,
                        &mut self.stats,
                        Some(seed),
                    )
                    .is_err()
                {
                    self.stats.fails += 1;
                    return false;
                }
            }
            Ok(false) => {}
        }
        if !self.objective_bound_ok(space.store.domains()) {
            self.stats.fails += 1;
            return false;
        }

        let Some(var_idx) = self.select_var(space.store.domains()) else {
            self.record_solution(space.store.domains());
            return false;
        };

        let domain = space.store.domain(var_idx);
        let values_start = space.values.len();
        let frame = if self.use_split(domain.size()) {
            Frame {
                var_idx,
                next: 0,
                num_branches: 2,
                values_start,
                kind: BranchKind::Split {
                    mid: domain.median(),
                    hi_first: split_hi_first(self.config.value_choice, domain.median()),
                },
            }
        } else {
            space.values.extend(domain.iter());
            order_values(self.config.value_choice, &mut space.values[values_start..]);
            Frame {
                var_idx,
                next: 0,
                num_branches: space.values.len() - values_start,
                values_start,
                kind: BranchKind::Values,
            }
        };
        space.frames.push(frame);
        true
    }

    /// The explicit-stack DFS driver. Precondition: the store holds the
    /// propagated root state.
    fn run(&mut self, space: &mut SearchSpace) {
        if !self.enter_node(space, 0) {
            return;
        }
        while let Some(top) = space.frames.len().checked_sub(1) {
            if self.stopped || self.solution_limit_hit() {
                return;
            }
            let frame = space.frames[top];
            if frame.next >= frame.num_branches {
                // Node exhausted: drop its frame, its arena slice and (below
                // the root) the trail level of the branch that reached it.
                space.frames.pop();
                space.values.truncate(frame.values_start);
                if top > 0 {
                    space.store.backtrack();
                }
                continue;
            }
            space.frames[top].next += 1;

            space.store.push_choice();
            let op = frame.branch_op(frame.next, &space.values);
            if apply_branch(&mut space.store, frame.var_idx, op).is_err() {
                self.stats.fails += 1;
                space.store.backtrack();
                continue;
            }
            let seed = self.model.props_watching(frame.var_idx);
            if self
                .model
                .propagate_in(
                    &mut space.store,
                    &mut space.queue,
                    &mut self.stats,
                    Some(seed),
                )
                .is_err()
            {
                self.stats.fails += 1;
                space.store.backtrack();
                continue;
            }
            let child_depth = space.frames.len() as u64;
            if !self.enter_node(space, child_depth) {
                // The child failed, was a solution, or tripped a limit:
                // either way it opened no frame, so undo its branch level.
                space.store.backtrack();
            }
        }
    }

    // ----- copy-on-branch reference implementation ---------------------------

    /// Recursive DFS cloning the whole store at every branch (the
    /// pre-trail semantics, kept verbatim for equivalence testing).
    fn dfs_cloning(&mut self, mut store: Store, queue: &mut PropQueue, depth: u64) {
        if self.check_limits() || self.solution_limit_hit() {
            return;
        }
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        // Pre-trail bounding semantics: whenever an incumbent exists, tighten
        // and re-propagate with the full propagator set, even if the bound
        // did not move. The trail searcher optimizes both away; equivalence
        // tests comparing the two therefore validate that optimization.
        let bounding = matches!(
            (self.objective, self.best_objective),
            (Objective::Minimize(_), Some(_)) | (Objective::Maximize(_), Some(_))
        );
        if bounding {
            if self.tighten_bound(&mut store).is_err() {
                self.stats.fails += 1;
                return;
            }
            if self
                .model
                .propagate_in(&mut store, queue, &mut self.stats, None)
                .is_err()
            {
                self.stats.fails += 1;
                return;
            }
        }
        if !self.objective_bound_ok(store.domains()) {
            self.stats.fails += 1;
            return;
        }

        let var_idx = match self.select_var(store.domains()) {
            None => {
                self.record_solution(store.domains());
                return;
            }
            Some(i) => i,
        };

        let domain = store.domain(var_idx).clone();
        let model: &'m Model = self.model;
        let seed = model.props_watching(var_idx);
        if self.use_split(domain.size()) {
            let mid = domain.median();
            let hi_first = split_hi_first(self.config.value_choice, mid);
            for i in 0..2 {
                let mut branch = store.clone();
                let ok = if (i == 0) == hi_first {
                    branch.remove_below(var_idx, mid + 1)
                } else {
                    branch.remove_above(var_idx, mid)
                };
                if ok.is_err() {
                    self.stats.fails += 1;
                    continue;
                }
                if model
                    .propagate_in(&mut branch, queue, &mut self.stats, Some(seed))
                    .is_err()
                {
                    self.stats.fails += 1;
                    continue;
                }
                self.dfs_cloning(branch, queue, depth + 1);
                if self.stopped || self.solution_limit_hit() {
                    return;
                }
            }
        } else {
            let mut values: Vec<i64> = domain.iter().collect();
            order_values(self.config.value_choice, &mut values);
            for v in values {
                let mut branch = store.clone();
                if branch.assign(var_idx, v).is_err() {
                    self.stats.fails += 1;
                    continue;
                }
                if model
                    .propagate_in(&mut branch, queue, &mut self.stats, Some(seed))
                    .is_err()
                {
                    self.stats.fails += 1;
                    continue;
                }
                self.dfs_cloning(branch, queue, depth + 1);
                if self.stopped || self.solution_limit_hit() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn sum_model() -> (Model, VarId, VarId, VarId) {
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let y = m.new_var(0, 9);
        m.linear_eq(&[(1, x), (1, y)], 9);
        let obj = m.linear_var(&[(3, x), (1, y)], 0);
        (m, x, y, obj)
    }

    #[test]
    fn minimize_finds_optimum_and_proves_it() {
        let (m, x, y, obj) = sum_model();
        let out = m.minimize(obj, &SearchConfig::default());
        assert!(out.complete);
        let best = out.best.unwrap();
        assert_eq!(best.value(x), 0);
        assert_eq!(best.value(y), 9);
        assert_eq!(out.best_objective, Some(9));
    }

    #[test]
    fn maximize_finds_optimum() {
        let (m, x, y, obj) = sum_model();
        let out = m.maximize(obj, &SearchConfig::default());
        let best = out.best.unwrap();
        assert_eq!(best.value(x), 9);
        assert_eq!(best.value(y), 0);
        assert_eq!(out.best_objective, Some(27));
    }

    #[test]
    fn incumbents_improve_monotonically() {
        let (m, _, _, obj) = sum_model();
        let out = m.minimize(obj, &SearchConfig::default());
        let objs: Vec<i64> = out.solutions.iter().map(|s| s.value(obj)).collect();
        for w in objs.windows(2) {
            assert!(w[1] < w[0], "objective must strictly improve: {objs:?}");
        }
    }

    #[test]
    fn branching_heuristics_agree_on_optimum() {
        for branching in [
            Branching::InputOrder,
            Branching::SmallestDomain,
            Branching::LargestDomain,
        ] {
            for value_choice in [ValueChoice::Min, ValueChoice::Max, ValueChoice::Split] {
                let (m, _, _, obj) = sum_model();
                let cfg = SearchConfig {
                    branching,
                    value_choice,
                    ..Default::default()
                };
                let out = m.minimize(obj, &cfg);
                assert_eq!(
                    out.best_objective,
                    Some(9),
                    "{branching:?}/{value_choice:?}"
                );
            }
        }
    }

    #[test]
    fn node_limit_stops_search() {
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..20).map(|_| m.new_var(0, 5)).collect();
        let obj = m.linear_var(&xs.iter().map(|&x| (1, x)).collect::<Vec<_>>(), 0);
        let cfg = SearchConfig {
            node_limit: Some(5),
            ..Default::default()
        };
        let out = m.maximize(obj, &cfg);
        assert!(!out.complete);
        assert!(out.stats.nodes <= 6);
    }

    #[test]
    fn time_limit_is_respected() {
        // A large assignment space with an objective that improves rarely.
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..30).map(|_| m.new_var(0, 30)).collect();
        let obj = m.linear_var(&xs.iter().map(|&x| (1, x)).collect::<Vec<_>>(), 0);
        let cfg = SearchConfig::with_time_limit(Duration::from_millis(50));
        let start = Instant::now();
        let _ = m.maximize(obj, &cfg);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn satisfy_with_max_solutions() {
        let mut m = Model::new();
        let x = m.new_var(0, 100);
        let _ = x;
        let cfg = SearchConfig {
            max_solutions: Some(3),
            ..Default::default()
        };
        let out = m.solve_all(&cfg);
        assert_eq!(out.solutions.len(), 3);
    }

    #[test]
    fn infeasible_model_yields_no_solutions() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        let y = m.new_var(0, 1);
        m.linear_ge(&[(1, x), (1, y)], 5);
        let out = m.solve_all(&SearchConfig::default());
        assert!(out.solutions.is_empty());
        assert!(out.complete);
    }

    #[test]
    fn assignment_helpers() {
        let mut m = Model::new();
        let x = m.new_var(2, 2);
        let y = m.new_var(3, 3);
        let out = m.satisfy(&SearchConfig::default());
        let s = &out.solutions[0];
        assert_eq!(s.values_of(&[x, y]), vec![2, 3]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn solutions_satisfy_all_propagator_checks() {
        let mut m = Model::new();
        let x = m.new_var(0, 6);
        let y = m.new_var(0, 6);
        let b = m.new_bool();
        m.reif_linear_eq(b, &[(1, x), (-1, y)], 0);
        m.linear_le(&[(1, x), (1, y)], 7);
        let out = m.solve_all(&SearchConfig {
            max_solutions: Some(50),
            ..Default::default()
        });
        for s in &out.solutions {
            for p in m.propagators() {
                assert!(p.check(&|v| s.value(v)), "{} violated", p.name());
            }
        }
    }

    #[test]
    fn search_space_is_reusable_across_solves() {
        let mut space = SearchSpace::new();
        let (m, _, _, obj) = sum_model();
        let first = m.minimize_in(obj, &SearchConfig::default(), &mut space);
        let second = m.minimize_in(obj, &SearchConfig::default(), &mut space);
        assert_eq!(first.best_objective, second.best_objective);
        assert_eq!(first.stats.nodes, second.stats.nodes);
        assert_eq!(first.stats.fails, second.stats.fails);
        // and across different models / objectives
        let mut m2 = Model::new();
        let z = m2.new_var(0, 4);
        let out = m2.maximize_in(z, &SearchConfig::default(), &mut space);
        assert_eq!(out.best_objective, Some(4));
    }

    #[test]
    fn split_threshold_none_enumerates_exhaustively() {
        // With no split threshold, a Min search over a large domain must try
        // values in ascending order; the first satisfying leaf is the
        // minimum, so exactly one solution is needed.
        let mut m = Model::new();
        let x = m.new_var(0, 200);
        m.linear_ge(&[(1, x)], 150);
        let cfg = SearchConfig {
            split_threshold: None,
            max_solutions: Some(1),
            ..Default::default()
        };
        let out = m.solve_all(&cfg);
        assert_eq!(out.solutions[0].value(x), 150);
    }

    #[test]
    fn split_threshold_controls_bisection() {
        let mut m = Model::new();
        let x = m.new_var(0, 100);
        let obj = m.linear_var(&[(1, x)], 0);
        // Tiny threshold: everything bisects; still finds the optimum.
        let cfg = SearchConfig {
            split_threshold: Some(2),
            ..Default::default()
        };
        let out = m.minimize(obj, &cfg);
        assert_eq!(out.best_objective, Some(0));
    }

    #[test]
    fn deep_search_does_not_overflow_the_stack() {
        // 3000 chained variables forced to fix one by one: the explicit
        // decision stack must handle depth far beyond what recursion could.
        let mut m = Model::new();
        let n = 3000;
        let xs: Vec<VarId> = (0..n).map(|_| m.new_var(0, 1)).collect();
        for w in xs.windows(2) {
            // x_{i+1} >= x_i keeps the tree deep but narrow
            m.linear_le(&[(1, w[0]), (-1, w[1])], 0);
        }
        let out = m.solve_all(&SearchConfig {
            max_solutions: Some(1),
            ..Default::default()
        });
        assert_eq!(out.solutions.len(), 1);
        assert!(out.stats.max_depth >= 1000);
    }

    #[test]
    fn warm_start_finds_same_optimum_with_fewer_nodes() {
        let (m, _, _, obj) = sum_model();
        let cold = m.minimize(obj, &SearchConfig::default());
        let warm_cfg = SearchConfig {
            warm_start: cold.best.clone(),
            ..Default::default()
        };
        let warm = m.minimize(obj, &warm_cfg);
        assert!(warm.stats.warm_start);
        assert!(warm.complete);
        assert_eq!(warm.best_objective, cold.best_objective);
        assert_eq!(warm.best, cold.best, "warm must land on the cold incumbent");
        assert!(
            warm.stats.nodes <= cold.stats.nodes,
            "warm {} vs cold {}",
            warm.stats.nodes,
            cold.stats.nodes
        );
    }

    #[test]
    fn invalid_warm_start_is_ignored() {
        let (m, _, _, obj) = sum_model();
        // wrong coverage: a one-variable assignment for a four-variable model
        let bogus = Assignment { values: vec![0] };
        let cfg = SearchConfig {
            warm_start: Some(bogus),
            ..Default::default()
        };
        let out = m.minimize(obj, &cfg);
        assert!(!out.stats.warm_start);
        assert_eq!(out.best_objective, Some(9));
        // infeasible assignment: violates x + y == 9
        let cold = m.minimize(obj, &SearchConfig::default());
        let mut broken = cold.best.clone().unwrap();
        broken.values[0] += 1;
        let cfg = SearchConfig {
            warm_start: Some(broken),
            ..Default::default()
        };
        let out = m.minimize(obj, &cfg);
        assert!(!out.stats.warm_start);
        assert_eq!(out.best_objective, Some(9));
    }

    #[test]
    fn warm_assignment_survives_a_zero_budget() {
        let (m, _, _, obj) = sum_model();
        let cold = m.minimize(obj, &SearchConfig::default());
        let cfg = SearchConfig {
            warm_start: cold.best.clone(),
            node_limit: Some(0),
            ..Default::default()
        };
        let out = m.minimize(obj, &cfg);
        assert!(!out.complete);
        // the search explored nothing, but the warm incumbent is reported
        assert_eq!(out.best, cold.best);
        assert_eq!(out.best_objective, cold.best_objective);
    }

    #[test]
    fn warm_start_agrees_between_trail_and_reference_searchers() {
        let (m, _, _, obj) = sum_model();
        let cold = m.minimize(obj, &SearchConfig::default());
        let cfg = SearchConfig {
            warm_start: cold.best.clone(),
            ..Default::default()
        };
        let trail = solve(&m, Objective::Minimize(obj), &cfg);
        let reference = solve_reference(&m, Objective::Minimize(obj), &cfg);
        assert_eq!(trail.best_objective, reference.best_objective);
        assert_eq!(trail.solutions, reference.solutions);
        assert_eq!(trail.stats.nodes, reference.stats.nodes);
        assert_eq!(trail.stats.fails, reference.stats.fails);
    }

    #[test]
    fn complete_hints_extends_a_partial_assignment() {
        let (m, x, y, obj) = sum_model();
        let mut space = SearchSpace::new();
        // pin x = 3; propagation forces y = 6
        let warm = complete_hints(&m, Objective::Minimize(obj), &[(x, 3)], &mut space, 64)
            .expect("consistent hints complete");
        assert_eq!(warm.value(x), 3);
        assert_eq!(warm.value(y), 6);
        assert_eq!(warm.value(obj), 15);
        // the completion is a valid warm start for the full search
        let cfg = SearchConfig {
            warm_start: Some(warm),
            ..Default::default()
        };
        let out = m.minimize(obj, &cfg);
        assert!(out.stats.warm_start);
        assert_eq!(out.best_objective, Some(9));
    }

    #[test]
    fn complete_hints_rejects_conflicts_and_empty_hints() {
        let (m, x, y, obj) = sum_model();
        let mut space = SearchSpace::new();
        assert!(complete_hints(&m, Objective::Minimize(obj), &[], &mut space, 64).is_none());
        // x = 5 and y = 5 contradict x + y == 9
        assert!(complete_hints(
            &m,
            Objective::Minimize(obj),
            &[(x, 5), (y, 5)],
            &mut space,
            64
        )
        .is_none());
        // out-of-domain hint
        assert!(complete_hints(&m, Objective::Minimize(obj), &[(x, 42)], &mut space, 64).is_none());
    }

    #[test]
    fn reference_and_trail_searchers_agree() {
        for branching in [
            Branching::InputOrder,
            Branching::SmallestDomain,
            Branching::LargestDomain,
        ] {
            for value_choice in [ValueChoice::Min, ValueChoice::Max, ValueChoice::Split] {
                let (m, _, _, obj) = sum_model();
                let cfg = SearchConfig {
                    branching,
                    value_choice,
                    ..Default::default()
                };
                let trail = solve(&m, Objective::Minimize(obj), &cfg);
                let reference = solve_reference(&m, Objective::Minimize(obj), &cfg);
                let ctx = format!("{branching:?}/{value_choice:?}");
                assert_eq!(trail.best_objective, reference.best_objective, "{ctx}");
                assert_eq!(trail.solutions, reference.solutions, "{ctx}");
                assert_eq!(trail.stats.nodes, reference.stats.nodes, "{ctx}");
                assert_eq!(trail.stats.fails, reference.stats.fails, "{ctx}");
                assert_eq!(trail.stats.max_depth, reference.stats.max_depth, "{ctx}");
            }
        }
    }
}
