//! Depth-first search with branch-and-bound.
//!
//! This mirrors the "standard branch-and-bound searching approach" the paper
//! attributes to Gecode (Sec. 5.1): depth-first exploration, constraint
//! propagation at every node, and — for `minimize`/`maximize` goals — a
//! bound that is tightened every time an improving solution is found.
//! `SOLVER_MAX_TIME` from the paper maps to [`SearchConfig::time_limit`].

use std::time::{Duration, Instant};

use crate::domain::Domain;
use crate::model::{Model, VarId};
use crate::stats::SearchStats;

/// Variable-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Branching {
    /// Branch on variables in creation order (Gecode's `INT_VAR_NONE`).
    #[default]
    InputOrder,
    /// Branch on the unfixed variable with the smallest domain first
    /// (first-fail, Gecode's `INT_VAR_SIZE_MIN`).
    SmallestDomain,
    /// Branch on the unfixed variable with the largest domain first.
    LargestDomain,
}

/// Value-selection heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueChoice {
    /// Try the smallest value first (Gecode's `INT_VAL_MIN`).
    #[default]
    Min,
    /// Try the largest value first.
    Max,
    /// Split the domain at its median (domain bisection).
    Split,
}

/// What the search should optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the given variable.
    Minimize(VarId),
    /// Maximize the given variable.
    Maximize(VarId),
    /// Just find satisfying assignments.
    Satisfy,
}

/// Search configuration; the defaults match the paper's setup (input-order
/// branching, minimum-value-first, no limits).
#[derive(Debug, Clone, Default)]
pub struct SearchConfig {
    /// Variable selection heuristic.
    pub branching: Branching,
    /// Value selection heuristic.
    pub value_choice: ValueChoice,
    /// Wall-clock limit for the whole search (the paper's `SOLVER_MAX_TIME`).
    pub time_limit: Option<Duration>,
    /// Stop after this many failures.
    pub fail_limit: Option<u64>,
    /// Stop after this many solutions (for `Satisfy`, collect at most this
    /// many; for optimization, stop improving after this many incumbents).
    pub max_solutions: Option<usize>,
    /// Stop after this many search nodes.
    pub node_limit: Option<u64>,
}

impl SearchConfig {
    /// Convenience constructor with only a time limit, mirroring the paper's
    /// "we limit each solver's COP execution time to 10 seconds".
    pub fn with_time_limit(limit: Duration) -> Self {
        SearchConfig {
            time_limit: Some(limit),
            ..Default::default()
        }
    }
}

/// A complete assignment of values to all model variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<i64>,
}

impl Assignment {
    fn from_domains(domains: &[Domain]) -> Self {
        Assignment {
            values: domains.iter().map(|d| d.min()).collect(),
        }
    }

    /// Value assigned to `v`.
    pub fn value(&self, v: VarId) -> i64 {
        self.values[v.index()]
    }

    /// Values of a slice of variables.
    pub fn values_of(&self, vars: &[VarId]) -> Vec<i64> {
        vars.iter().map(|&v| self.value(v)).collect()
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best assignment found (for optimization), or the first solution (for
    /// satisfaction). `None` if no solution was found.
    pub best: Option<Assignment>,
    /// Objective value of `best`, when optimizing.
    pub best_objective: Option<i64>,
    /// All solutions collected (for `Satisfy`; for optimization this is the
    /// sequence of improving incumbents).
    pub solutions: Vec<Assignment>,
    /// Search statistics.
    pub stats: SearchStats,
    /// True if the search space was fully explored (the result is proven
    /// optimal / complete), false if a limit stopped it early.
    pub complete: bool,
}

struct Searcher<'m> {
    model: &'m Model,
    objective: Objective,
    config: SearchConfig,
    stats: SearchStats,
    start: Instant,
    best: Option<Assignment>,
    best_objective: Option<i64>,
    solutions: Vec<Assignment>,
    stopped: bool,
}

/// Run a search over `model` with the given objective.
pub fn solve(model: &Model, objective: Objective, config: &SearchConfig) -> SearchOutcome {
    let mut searcher = Searcher {
        model,
        objective,
        config: config.clone(),
        stats: SearchStats::default(),
        start: Instant::now(),
        best: None,
        best_objective: None,
        solutions: Vec::new(),
        stopped: false,
    };
    let mut domains: Vec<Domain> = model.domains().to_vec();
    let root_ok = model
        .propagate(&mut domains, &mut searcher.stats, None)
        .is_ok();
    if root_ok {
        searcher.dfs(domains, 0);
    }
    searcher.stats.elapsed_micros = searcher.start.elapsed().as_micros() as u64;
    searcher.stats.limit_reached = searcher.stopped;
    SearchOutcome {
        best: searcher.best,
        best_objective: searcher.best_objective,
        solutions: searcher.solutions,
        stats: searcher.stats,
        complete: !searcher.stopped,
    }
}

impl<'m> Searcher<'m> {
    fn check_limits(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if let Some(t) = self.config.time_limit {
            // Only check the clock periodically; Instant::elapsed is cheap but
            // not free on hot paths.
            if self.stats.nodes % 64 == 0 && self.start.elapsed() > t {
                self.stopped = true;
                return true;
            }
        }
        if let Some(f) = self.config.fail_limit {
            if self.stats.fails >= f {
                self.stopped = true;
                return true;
            }
        }
        if let Some(n) = self.config.node_limit {
            if self.stats.nodes >= n {
                self.stopped = true;
                return true;
            }
        }
        false
    }

    fn solution_limit_hit(&self) -> bool {
        match self.config.max_solutions {
            Some(k) => self.solutions.len() >= k,
            None => false,
        }
    }

    fn select_var(&self, domains: &[Domain]) -> Option<usize> {
        let unfixed = domains.iter().enumerate().filter(|(_, d)| !d.is_fixed());
        match self.config.branching {
            Branching::InputOrder => unfixed.map(|(i, _)| i).next(),
            Branching::SmallestDomain => unfixed.min_by_key(|(_, d)| d.size()).map(|(i, _)| i),
            Branching::LargestDomain => unfixed.max_by_key(|(_, d)| d.size()).map(|(i, _)| i),
        }
    }

    fn objective_bound_ok(&self, domains: &[Domain]) -> bool {
        match (self.objective, self.best_objective) {
            (Objective::Minimize(o), Some(best)) => domains[o.index()].min() < best,
            (Objective::Maximize(o), Some(best)) => domains[o.index()].max() > best,
            _ => true,
        }
    }

    fn record_solution(&mut self, domains: &[Domain]) {
        let assignment = Assignment::from_domains(domains);
        self.stats.solutions += 1;
        match self.objective {
            Objective::Satisfy => {
                self.best.get_or_insert_with(|| assignment.clone());
                self.solutions.push(assignment);
            }
            Objective::Minimize(o) | Objective::Maximize(o) => {
                let value = assignment.value(o);
                self.best_objective = Some(value);
                self.best = Some(assignment.clone());
                self.solutions.push(assignment);
            }
        }
    }

    fn dfs(&mut self, mut domains: Vec<Domain>, depth: u64) {
        if self.check_limits() || self.solution_limit_hit() {
            return;
        }
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        // Branch-and-bound: tighten the objective with the incumbent.
        match (self.objective, self.best_objective) {
            (Objective::Minimize(o), Some(best)) => {
                if domains[o.index()].remove_above(best - 1).is_err() {
                    self.stats.fails += 1;
                    return;
                }
                if self
                    .model
                    .propagate(&mut domains, &mut self.stats, None)
                    .is_err()
                {
                    self.stats.fails += 1;
                    return;
                }
            }
            (Objective::Maximize(o), Some(best)) => {
                if domains[o.index()].remove_below(best + 1).is_err() {
                    self.stats.fails += 1;
                    return;
                }
                if self
                    .model
                    .propagate(&mut domains, &mut self.stats, None)
                    .is_err()
                {
                    self.stats.fails += 1;
                    return;
                }
            }
            _ => {}
        }
        if !self.objective_bound_ok(&domains) {
            self.stats.fails += 1;
            return;
        }

        let var_idx = match self.select_var(&domains) {
            None => {
                self.record_solution(&domains);
                return;
            }
            Some(i) => i,
        };

        let domain = domains[var_idx].clone();
        // Borrow the seed list from the model's own lifetime (not through
        // `self`) so the `&mut self` recursion below stays legal.
        let model: &'m Model = self.model;
        let seed = model.props_watching(var_idx);
        let use_split =
            matches!(self.config.value_choice, ValueChoice::Split) || domain.size() > 16;
        if use_split && domain.size() > 2 {
            let mid = domain.median();
            // left: x <= mid, right: x > mid (order depends on value choice)
            let mut left = domains.clone();
            let mut right = domains;
            let branches: [(Vec<Domain>, bool); 2] = match self.config.value_choice {
                ValueChoice::Max => {
                    let r_ok = right[var_idx].remove_below(mid + 1).is_ok();
                    let l_ok = left[var_idx].remove_above(mid).is_ok();
                    [(right, r_ok), (left, l_ok)]
                }
                _ => {
                    let l_ok = left[var_idx].remove_above(mid).is_ok();
                    let r_ok = right[var_idx].remove_below(mid + 1).is_ok();
                    [(left, l_ok), (right, r_ok)]
                }
            };
            for (mut branch, ok) in branches {
                if !ok {
                    self.stats.fails += 1;
                    continue;
                }
                if self
                    .model
                    .propagate(&mut branch, &mut self.stats, Some(seed))
                    .is_err()
                {
                    self.stats.fails += 1;
                    continue;
                }
                self.dfs(branch, depth + 1);
                if self.stopped || self.solution_limit_hit() {
                    return;
                }
            }
        } else {
            let mut values: Vec<i64> = domain.iter().collect();
            if matches!(self.config.value_choice, ValueChoice::Max) {
                values.reverse();
            }
            for v in values {
                let mut branch = domains.clone();
                if branch[var_idx].assign(v).is_err() {
                    self.stats.fails += 1;
                    continue;
                }
                if self
                    .model
                    .propagate(&mut branch, &mut self.stats, Some(seed))
                    .is_err()
                {
                    self.stats.fails += 1;
                    continue;
                }
                self.dfs(branch, depth + 1);
                if self.stopped || self.solution_limit_hit() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn sum_model() -> (Model, VarId, VarId, VarId) {
        let mut m = Model::new();
        let x = m.new_var(0, 9);
        let y = m.new_var(0, 9);
        m.linear_eq(&[(1, x), (1, y)], 9);
        let obj = m.linear_var(&[(3, x), (1, y)], 0);
        (m, x, y, obj)
    }

    #[test]
    fn minimize_finds_optimum_and_proves_it() {
        let (m, x, y, obj) = sum_model();
        let out = m.minimize(obj, &SearchConfig::default());
        assert!(out.complete);
        let best = out.best.unwrap();
        assert_eq!(best.value(x), 0);
        assert_eq!(best.value(y), 9);
        assert_eq!(out.best_objective, Some(9));
    }

    #[test]
    fn maximize_finds_optimum() {
        let (m, x, y, obj) = sum_model();
        let out = m.maximize(obj, &SearchConfig::default());
        let best = out.best.unwrap();
        assert_eq!(best.value(x), 9);
        assert_eq!(best.value(y), 0);
        assert_eq!(out.best_objective, Some(27));
    }

    #[test]
    fn incumbents_improve_monotonically() {
        let (m, _, _, obj) = sum_model();
        let out = m.minimize(obj, &SearchConfig::default());
        let objs: Vec<i64> = out.solutions.iter().map(|s| s.value(obj)).collect();
        for w in objs.windows(2) {
            assert!(w[1] < w[0], "objective must strictly improve: {objs:?}");
        }
    }

    #[test]
    fn branching_heuristics_agree_on_optimum() {
        for branching in [
            Branching::InputOrder,
            Branching::SmallestDomain,
            Branching::LargestDomain,
        ] {
            for value_choice in [ValueChoice::Min, ValueChoice::Max, ValueChoice::Split] {
                let (m, _, _, obj) = sum_model();
                let cfg = SearchConfig {
                    branching,
                    value_choice,
                    ..Default::default()
                };
                let out = m.minimize(obj, &cfg);
                assert_eq!(
                    out.best_objective,
                    Some(9),
                    "{branching:?}/{value_choice:?}"
                );
            }
        }
    }

    #[test]
    fn node_limit_stops_search() {
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..20).map(|_| m.new_var(0, 5)).collect();
        let obj = m.linear_var(&xs.iter().map(|&x| (1, x)).collect::<Vec<_>>(), 0);
        let cfg = SearchConfig {
            node_limit: Some(5),
            ..Default::default()
        };
        let out = m.maximize(obj, &cfg);
        assert!(!out.complete);
        assert!(out.stats.nodes <= 6);
    }

    #[test]
    fn time_limit_is_respected() {
        // A large assignment space with an objective that improves rarely.
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..30).map(|_| m.new_var(0, 30)).collect();
        let obj = m.linear_var(&xs.iter().map(|&x| (1, x)).collect::<Vec<_>>(), 0);
        let cfg = SearchConfig::with_time_limit(Duration::from_millis(50));
        let start = Instant::now();
        let _ = m.maximize(obj, &cfg);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn satisfy_with_max_solutions() {
        let mut m = Model::new();
        let x = m.new_var(0, 100);
        let _ = x;
        let cfg = SearchConfig {
            max_solutions: Some(3),
            ..Default::default()
        };
        let out = m.solve_all(&cfg);
        assert_eq!(out.solutions.len(), 3);
    }

    #[test]
    fn infeasible_model_yields_no_solutions() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        let y = m.new_var(0, 1);
        m.linear_ge(&[(1, x), (1, y)], 5);
        let out = m.solve_all(&SearchConfig::default());
        assert!(out.solutions.is_empty());
        assert!(out.complete);
    }

    #[test]
    fn assignment_helpers() {
        let mut m = Model::new();
        let x = m.new_var(2, 2);
        let y = m.new_var(3, 3);
        let out = m.satisfy(&SearchConfig::default());
        let s = &out.solutions[0];
        assert_eq!(s.values_of(&[x, y]), vec![2, 3]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn solutions_satisfy_all_propagator_checks() {
        let mut m = Model::new();
        let x = m.new_var(0, 6);
        let y = m.new_var(0, 6);
        let b = m.new_bool();
        m.reif_linear_eq(b, &[(1, x), (-1, y)], 0);
        m.linear_le(&[(1, x), (1, y)], 7);
        let out = m.solve_all(&SearchConfig {
            max_solutions: Some(50),
            ..Default::default()
        });
        for s in &out.solutions {
            for p in m.propagators() {
                assert!(p.check(&|v| s.value(v)), "{} violated", p.name());
            }
        }
    }
}
