//! The ddo-style relaxed-merge engine.
//!
//! Expands a small breadth-first decision diagram from the propagated root
//! using the search's own branching heuristic. Each child is propagated;
//! infeasible children are dropped (they contain no solutions), and when a
//! layer grows wider than the width cap the worst nodes are *merged* into a
//! single interval-hull node — a superset of their union, hence a
//! relaxation. After the level cap the best objective bound over the
//! surviving nodes (plus any exact leaves met on the way) is a sound dual
//! bound: the layers at every step cover all solutions of the root.

use super::{BoundResult, DualBound};
use crate::domain::Domain;
use crate::model::Model;
use crate::search::{self, Objective, SearchConfig};
use crate::stats::SearchStats;
use crate::store::{PropQueue, Store};

/// Relaxed decision-diagram bound over the top decision levels (see the
/// module docs). The defaults keep the diagram deliberately tiny — the
/// bound must stay cheap next to the search it informs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelaxedMerge {
    /// Maximum nodes kept per layer; wider layers merge their worst nodes.
    pub max_width: usize,
    /// Number of decision levels to expand before reading off the bound.
    pub max_levels: usize,
}

impl Default for RelaxedMerge {
    fn default() -> Self {
        RelaxedMerge {
            max_width: 16,
            max_levels: 8,
        }
    }
}

impl DualBound for RelaxedMerge {
    fn name(&self) -> &'static str {
        "relaxed_merge"
    }

    fn compute(
        &self,
        model: &Model,
        objective: Objective,
        config: &SearchConfig,
        domains: &[Domain],
    ) -> Option<BoundResult> {
        let z = match objective {
            Objective::Minimize(v) | Objective::Maximize(v) => v,
            Objective::Satisfy => return None,
        };
        if self.max_width == 0 || self.max_levels == 0 {
            return None;
        }
        let minimize = matches!(objective, Objective::Minimize(_));
        let obj_of = |node: &[Domain]| {
            if minimize {
                node[z.index()].min()
            } else {
                node[z.index()].max()
            }
        };

        let mut queue = PropQueue::new();
        let mut scratch = SearchStats::default();
        let mut layer: Vec<Vec<Domain>> = vec![domains.to_vec()];
        // Bounds of nodes with every variable fixed: exact by construction.
        let mut leaf_bounds: Vec<i64> = Vec::new();
        let mut merged_nodes = 0usize;
        let mut levels = 0usize;

        for _ in 0..self.max_levels {
            if layer.is_empty() {
                break;
            }
            levels += 1;
            let mut next: Vec<Vec<Domain>> = Vec::new();
            for node in &layer {
                // The same branching the search would take, so the diagram
                // relaxes the actual tree rather than an arbitrary one.
                let Some((var_idx, ops)) = search::node_branches(config, node) else {
                    leaf_bounds.push(obj_of(node));
                    continue;
                };
                for op in ops {
                    let mut store = Store::from_domains(node.clone());
                    if search::apply_branch(&mut store, var_idx, op).is_err() {
                        continue;
                    }
                    // Full (unseeded) propagation: merged parents are not at
                    // fixpoint, so watcher seeding could miss tightenings.
                    if model
                        .propagate_in(&mut store, &mut queue, &mut scratch, None)
                        .is_err()
                    {
                        continue;
                    }
                    next.push(store.into_domains());
                }
            }
            if next.len() > self.max_width {
                // Deterministic merge: stable-sort by bound (best first,
                // ties keep expansion order), keep the best nodes exact and
                // hull the rest into one relaxed node.
                if minimize {
                    next.sort_by_key(|n| obj_of(n));
                } else {
                    next.sort_by_key(|n| std::cmp::Reverse(obj_of(n)));
                }
                let tail = next.split_off(self.max_width - 1);
                merged_nodes += tail.len();
                next.push(hull(&tail));
            }
            layer = next;
        }

        leaf_bounds.extend(layer.iter().map(|n| obj_of(n)));
        // No surviving node and no leaf: the whole root is infeasible; the
        // search will discover that itself — claim nothing here.
        let bound = if minimize {
            leaf_bounds.iter().copied().min()
        } else {
            leaf_bounds.iter().copied().max()
        }?;
        Some(BoundResult {
            bound,
            binding: vec![format!(
                "relaxed diagram: {levels} levels, width {}, {merged_nodes} merged nodes",
                self.max_width
            )],
        })
    }
}

/// Interval hull of a set of nodes: per variable, the enclosing interval.
/// A superset of the nodes' union (holes are deliberately forgotten), which
/// is exactly what makes the merge a relaxation.
fn hull(nodes: &[Vec<Domain>]) -> Vec<Domain> {
    let mut merged = nodes[0].clone();
    for node in &nodes[1..] {
        for (m, d) in merged.iter_mut().zip(node) {
            *m = Domain::new(m.min().min(d.min()), m.max().max(d.max()));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundMode;
    use crate::model::Model;
    use crate::search::SearchConfig;

    fn cfg() -> SearchConfig {
        SearchConfig {
            bound_mode: BoundMode::Relaxed,
            ..Default::default()
        }
    }

    #[test]
    fn tiny_model_is_solved_exactly_by_the_diagram() {
        // Four bools + objective fit entirely inside the default diagram,
        // so the relaxed bound equals the true optimum.
        let mut m = Model::new();
        let a = m.new_bool();
        let b = m.new_bool();
        m.linear_eq(&[(1, a), (1, b)], 1);
        let z = m.linear_var(&[(6, a), (4, b)], 0);
        let optimum = m
            .minimize(z, &SearchConfig::default())
            .best_objective
            .unwrap();
        let cert = crate::bounds::compute_at_root(&m, Objective::Minimize(z), &cfg()).unwrap();
        assert_eq!(cert.dual_bound, optimum);
        assert!(cert.binding[0].contains("relaxed diagram"));
    }

    #[test]
    fn width_one_still_sound_via_hull_merge() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.new_var(0, 3)).collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as i64 + 1, v))
            .collect();
        m.linear_le(&terms, 14);
        let z = m.linear_var(&terms, 0);
        let optimum = m
            .maximize(z, &SearchConfig::default())
            .best_objective
            .unwrap();
        let engine = RelaxedMerge {
            max_width: 1,
            max_levels: 3,
        };
        let bound = engine
            .compute(&m, Objective::Maximize(z), &cfg(), m.domains())
            .unwrap()
            .bound;
        assert!(
            bound >= optimum,
            "hull-merged bound {bound} below optimum {optimum}"
        );
    }

    #[test]
    fn zero_budget_engine_declines() {
        let mut m = Model::new();
        let z = m.new_var(0, 5);
        let engine = RelaxedMerge {
            max_width: 0,
            max_levels: 0,
        };
        assert!(engine
            .compute(&m, Objective::Minimize(z), &cfg(), m.domains())
            .is_none());
    }

    #[test]
    fn infeasible_root_children_yield_no_bound() {
        // x + y == 10 over two 0..2 domains: the root itself is infeasible,
        // so every child dies in propagation and the engine claims nothing.
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        let y = m.new_var(0, 2);
        m.linear_eq(&[(1, x), (1, y)], 10);
        let z = m.linear_var(&[(1, x), (1, y)], 0);
        // Hand the *unpropagated* root straight to the engine (compute_at_root
        // would already fail in propagation).
        let engine = RelaxedMerge::default();
        assert!(engine
            .compute(&m, Objective::Minimize(z), &cfg(), m.domains())
            .is_none());
    }
}
