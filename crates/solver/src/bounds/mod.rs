//! Dual (relaxation) bounds and certified optimality gaps.
//!
//! Branch-and-bound reports an incumbent, but an incumbent alone says
//! nothing about *quality*: a node-budgeted exact search or an LNS run ends
//! with "best found so far" and no proof of how far from optimal it landed.
//! This module closes that hole with cheap, **sound** dual bounds — a lower
//! bound on the objective for `minimize` goals, an upper bound for
//! `maximize` — computed once per propagated (frozen) root and threaded
//! through the search as a certified optimality gap.
//!
//! # Engines
//!
//! Two [`DualBound`] engines are provided, selectable per search through
//! [`crate::SearchConfig::bound_mode`]:
//!
//! * [`LinearRelaxation`] — drops integrality and relaxes the model to its
//!   linear skeleton: the objective-defining linear equality (recognized via
//!   [`crate::propagator::LinearView`]) is minimized over the propagated
//!   domain box, strengthened group-by-group over the *exactly-one* packing
//!   constraints (`Σ x_i == 1` over 0/1 variables) that dominate the
//!   ACloud and Follow-the-Sun groundings: exactly one member of each group
//!   is 1, so the group contributes at least its smallest objective
//!   coefficient instead of the naive per-variable interval minimum.
//! * [`RelaxedMerge`] — a ddo-style relaxed decision diagram over the top
//!   decision levels: the root is expanded breadth-first with the search's
//!   own branching heuristic, each layer is propagated, and layers wider
//!   than the width cap are *merged* by interval hull — a superset of the
//!   merged nodes' solution sets, hence a relaxation. The bound is the best
//!   objective bound over the final layer (plus any exact leaves met on the
//!   way).
//!
//! [`BoundMode::Auto`] runs both and keeps the tighter result.
//!
//! # Soundness contract
//!
//! Every engine guarantees `dual_bound <= true optimum` for minimization
//! (`>=` for maximization) on the model restricted to the domains it was
//! given. The engines only ever *relax* — drop constraints, widen merged
//! domains, take per-group minima that every feasible assignment dominates —
//! so no feasible solution is ever excluded. The property tests pin this
//! against the reference searcher's proven optimum on random models.
//!
//! On top of either engine, [`compute_root_bound`] clamps the certificate
//! with the model's *semantic floors* ([`Model::semantic_floor`]): proven
//! lower bounds on composite objective variables — the scaled variance of
//! `STDEV` goals is nonnegative by Cauchy–Schwarz — that interval
//! relaxation alone cannot see.
//!
//! # Determinism
//!
//! Bound computation is a pure function of the model, the objective, the
//! configuration and the propagated root domains. Gap-driven termination
//! ([`crate::SearchConfig::gap_limit`]) compares the *live* gap — updated
//! only when the incumbent or the bound changes, both deterministic events —
//! at exactly the points where budget limits are already checked, so a
//! gap-limited run is itself rerun-deterministic, and `gap_limit =
//! Some(0.0)` never terminates early (the comparison is strict:
//! `gap < limit`). With the default [`BoundMode::Off`] no bound is computed
//! and every search is byte-identical to previous releases.

mod linear;
mod relaxed;

pub use linear::LinearRelaxation;
pub use relaxed::RelaxedMerge;

use crate::domain::Domain;
use crate::model::Model;
use crate::search::{Objective, SearchConfig};
use crate::stats::SearchStats;
use crate::store::{PropQueue, Store};

/// Which dual-bound engine a search runs at its frozen root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// No bound computation (the default): every run is byte-identical to a
    /// build without the bounds subsystem.
    #[default]
    Off,
    /// The linear/packing relaxation ([`LinearRelaxation`]).
    Linear,
    /// The ddo-style relaxed-merge diagram ([`RelaxedMerge`]).
    Relaxed,
    /// Run both engines and keep the tighter bound (ties prefer the linear
    /// engine, whose certificate names concrete constraints).
    Auto,
}

/// A sound dual bound together with the constraints that pin it — the
/// explainability payload carried into the `SolveReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCertificate {
    /// Name of the engine that produced the bound
    /// (see [`DualBound::name`]).
    pub engine: String,
    /// The certified dual bound: a lower bound on the optimum for
    /// minimization, an upper bound for maximization.
    pub dual_bound: i64,
    /// Human-readable names of the binding constraints / relaxation
    /// decisions behind the bound, e.g. `linear_eq#12 (exactly-one)` for a
    /// packing group that tightened the linear relaxation.
    pub binding: Vec<String>,
}

impl std::fmt::Display for BoundCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} dual_bound={}", self.engine, self.dual_bound)?;
        if !self.binding.is_empty() {
            write!(f, " binding=[{}]", self.binding.join(", "))?;
        }
        Ok(())
    }
}

/// Raw result of one engine run: the bound plus the binding constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundResult {
    /// The dual bound (lower for minimize, upper for maximize).
    pub bound: i64,
    /// Names of the constraints that pin the bound.
    pub binding: Vec<String>,
}

/// A dual-bound engine: computes a sound relaxation bound on the objective
/// over the model restricted to the given (propagated) domains.
pub trait DualBound {
    /// Engine name recorded in the [`BoundCertificate`].
    fn name(&self) -> &'static str;

    /// Compute the bound, or `None` when the engine does not apply
    /// (satisfaction objectives, or a relaxation it cannot evaluate). The
    /// `domains` are the propagated frozen-root domains the search starts
    /// from; `config` supplies the branching heuristics diagram-based
    /// engines mirror.
    fn compute(
        &self,
        model: &Model,
        objective: Objective,
        config: &SearchConfig,
        domains: &[Domain],
    ) -> Option<BoundResult>;

    /// [`DualBound::compute`] packaged as a [`BoundCertificate`].
    fn certify(
        &self,
        model: &Model,
        objective: Objective,
        config: &SearchConfig,
        domains: &[Domain],
    ) -> Option<BoundCertificate> {
        let result = self.compute(model, objective, config, domains)?;
        Some(BoundCertificate {
            engine: self.name().to_string(),
            dual_bound: result.bound,
            binding: result.binding,
        })
    }
}

/// True when `candidate` is a strictly tighter dual bound than `current`:
/// larger for minimization (the lower bound climbs toward the optimum),
/// smaller for maximization.
fn tighter(objective: Objective, candidate: i64, current: i64) -> bool {
    match objective {
        Objective::Minimize(_) => candidate > current,
        Objective::Maximize(_) => candidate < current,
        Objective::Satisfy => false,
    }
}

/// Clamp a certificate with the model's semantic floor on the objective
/// (e.g. variance nonnegativity): a proven lower bound on the objective
/// variable is itself a sound dual bound for minimization, often far
/// tighter than what interval relaxation can see.
fn clamp_to_semantic_floor(model: &Model, objective: Objective, cert: &mut BoundCertificate) {
    if let Objective::Minimize(v) = objective {
        if let Some(floor) = model.semantic_floor(v) {
            if floor > cert.dual_bound {
                cert.dual_bound = floor;
                cert.binding
                    .push(format!("semantic floor (objective >= {floor})"));
            }
        }
    }
}

/// Run the configured engine(s) against an already-propagated root.
///
/// `domains` must be the fixpoint the search starts from (its frozen root);
/// the bound is recomputed whenever that root moves — each exact solve, each
/// LNS phase-2 freeze — because the caller re-enters through here.
pub fn compute_root_bound(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    domains: &[Domain],
) -> Option<BoundCertificate> {
    let mut cert = match config.bound_mode {
        BoundMode::Off => None,
        BoundMode::Linear => LinearRelaxation.certify(model, objective, config, domains),
        BoundMode::Relaxed => RelaxedMerge::default().certify(model, objective, config, domains),
        BoundMode::Auto => {
            let lin = LinearRelaxation.certify(model, objective, config, domains);
            let rel = RelaxedMerge::default().certify(model, objective, config, domains);
            match (lin, rel) {
                (Some(a), Some(b)) => {
                    // Ties keep the linear certificate (concrete constraint
                    // names beat diagram traces for explainability).
                    if tighter(objective, b.dual_bound, a.dual_bound) {
                        Some(b)
                    } else {
                        Some(a)
                    }
                }
                (a, b) => a.or(b),
            }
        }
    }?;
    clamp_to_semantic_floor(model, objective, &mut cert);
    Some(cert)
}

/// [`compute_root_bound`] for callers that have not propagated the root yet
/// (the parallel coordinators): propagates the model's root into a scratch
/// store first. Returns `None` on root infeasibility — the search itself
/// will discover and report that.
pub(crate) fn compute_at_root(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
) -> Option<BoundCertificate> {
    if config.bound_mode == BoundMode::Off {
        return None;
    }
    let mut store = Store::from_domains(model.domains().to_vec());
    let mut queue = PropQueue::new();
    let mut scratch = SearchStats::default();
    if model
        .propagate_in(&mut store, &mut queue, &mut scratch, None)
        .is_err()
    {
        return None;
    }
    compute_root_bound(model, objective, config, store.domains())
}

/// The relative optimality gap between an incumbent (`primal`) and a dual
/// bound: `max(0, distance) / max(1, |primal|)`, where the distance is
/// `primal - dual` for minimization and `dual - primal` for maximization.
/// `0.0` means the incumbent provably matches the bound; satisfaction
/// objectives have no gap and report `0.0`.
pub fn optimality_gap(objective: Objective, primal: i64, dual: i64) -> f64 {
    let distance = match objective {
        Objective::Minimize(_) => primal.saturating_sub(dual),
        Objective::Maximize(_) => dual.saturating_sub(primal),
        Objective::Satisfy => 0,
    };
    distance.max(0) as f64 / primal.abs().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::search::SearchConfig;

    fn assign_model() -> (Model, crate::model::VarId) {
        // Two items, each assigned to exactly one of two bins, with distinct
        // costs: minimize total cost. Optimum picks the cheap bin per item.
        let mut m = Model::new();
        let a0 = m.new_bool();
        let a1 = m.new_bool();
        let b0 = m.new_bool();
        let b1 = m.new_bool();
        m.linear_eq(&[(1, a0), (1, a1)], 1);
        m.linear_eq(&[(1, b0), (1, b1)], 1);
        let obj = m.linear_var(&[(3, a0), (5, a1), (2, b0), (7, b1)], 0);
        (m, obj)
    }

    #[test]
    fn off_mode_computes_nothing() {
        let (m, obj) = assign_model();
        let cfg = SearchConfig::default();
        assert_eq!(cfg.bound_mode, BoundMode::Off);
        assert!(compute_at_root(&m, Objective::Minimize(obj), &cfg).is_none());
    }

    #[test]
    fn all_engines_bound_the_packing_optimum() {
        let (m, obj) = assign_model();
        let optimum = m
            .minimize(obj, &SearchConfig::default())
            .best_objective
            .unwrap();
        assert_eq!(optimum, 5); // 3 + 2
        for mode in [BoundMode::Linear, BoundMode::Relaxed, BoundMode::Auto] {
            let cfg = SearchConfig {
                bound_mode: mode,
                ..Default::default()
            };
            let cert = compute_at_root(&m, Objective::Minimize(obj), &cfg)
                .unwrap_or_else(|| panic!("{mode:?} must produce a bound"));
            assert!(
                cert.dual_bound <= optimum,
                "{mode:?}: dual {} exceeds optimum {optimum}",
                cert.dual_bound
            );
        }
    }

    #[test]
    fn linear_engine_uses_exactly_one_groups() {
        let (m, obj) = assign_model();
        let cfg = SearchConfig {
            bound_mode: BoundMode::Linear,
            ..Default::default()
        };
        let cert = compute_at_root(&m, Objective::Minimize(obj), &cfg).unwrap();
        // The naive interval bound is 0 (every 0/1 variable can be 0); the
        // exactly-one groups force 3 + 2 = 5 — the true optimum here.
        assert_eq!(cert.dual_bound, 5);
        assert!(
            cert.binding.iter().any(|b| b.contains("exactly-one")),
            "binding must name the packing groups: {:?}",
            cert.binding
        );
    }

    #[test]
    fn auto_keeps_the_tighter_bound() {
        let (m, obj) = assign_model();
        let bound_of = |mode| {
            let cfg = SearchConfig {
                bound_mode: mode,
                ..Default::default()
            };
            compute_at_root(&m, Objective::Minimize(obj), &cfg)
                .unwrap()
                .dual_bound
        };
        let auto = bound_of(BoundMode::Auto);
        assert!(auto >= bound_of(BoundMode::Linear));
        assert!(auto >= bound_of(BoundMode::Relaxed));
    }

    #[test]
    fn maximization_bounds_from_above() {
        let (m, obj) = assign_model();
        let optimum = m
            .maximize(obj, &SearchConfig::default())
            .best_objective
            .unwrap();
        assert_eq!(optimum, 12); // 5 + 7
        for mode in [BoundMode::Linear, BoundMode::Relaxed, BoundMode::Auto] {
            let cfg = SearchConfig {
                bound_mode: mode,
                ..Default::default()
            };
            let cert = compute_at_root(&m, Objective::Maximize(obj), &cfg).unwrap();
            assert!(
                cert.dual_bound >= optimum,
                "{mode:?}: upper bound {} below optimum {optimum}",
                cert.dual_bound
            );
        }
    }

    #[test]
    fn gap_is_relative_and_clamped() {
        let o = Objective::Minimize(crate::model::VarId::from_index(0));
        assert_eq!(optimality_gap(o, 100, 95), 0.05);
        assert_eq!(optimality_gap(o, 100, 100), 0.0);
        // a dual above the incumbent (possible transiently under warm
        // starts) clamps to zero instead of going negative
        assert_eq!(optimality_gap(o, 100, 120), 0.0);
        // primal 0 divides by 1, not 0
        assert_eq!(optimality_gap(o, 0, -3), 3.0);
        let mx = Objective::Maximize(crate::model::VarId::from_index(0));
        assert_eq!(optimality_gap(mx, 95, 100), 100.0 * 0.05 / 95.0);
        assert_eq!(optimality_gap(o, 100, 0), 1.0);
    }

    #[test]
    fn certificate_display_names_engine_and_binding() {
        let cert = BoundCertificate {
            engine: "linear_relaxation".into(),
            dual_bound: 42,
            binding: vec!["linear_eq#1 (exactly-one)".into()],
        };
        let text = cert.to_string();
        assert!(text.contains("linear_relaxation"));
        assert!(text.contains("42"));
        assert!(text.contains("exactly-one"));
    }

    #[test]
    fn semantic_floor_clamps_variance_objectives() {
        // Balance 10 across two vars: the scaled variance n·Σx² − (Σx)² has
        // interval lower bound −(Σx)²_max, far below the true floor of 0.
        let mut m = Model::new();
        let a = m.new_var(0, 10);
        let b = m.new_var(0, 10);
        m.linear_eq(&[(1, a), (1, b)], 10);
        let z = m.scaled_variance_var(&[a, b]);
        assert_eq!(m.semantic_floor(z), Some(0));
        for mode in [BoundMode::Linear, BoundMode::Relaxed, BoundMode::Auto] {
            let cfg = SearchConfig {
                bound_mode: mode,
                ..Default::default()
            };
            let cert = compute_at_root(&m, Objective::Minimize(z), &cfg)
                .unwrap_or_else(|| panic!("{mode:?} must produce a bound"));
            assert!(
                cert.dual_bound >= 0,
                "{mode:?}: variance bound {} below the semantic floor",
                cert.dual_bound
            );
            assert_eq!(cert.dual_bound, 0, "{mode:?}: floor is tight here");
        }
    }

    #[test]
    fn satisfy_objectives_have_no_bound() {
        let (m, _) = assign_model();
        let cfg = SearchConfig {
            bound_mode: BoundMode::Auto,
            ..Default::default()
        };
        assert!(compute_at_root(&m, Objective::Satisfy, &cfg).is_none());
    }
}
