//! The linear/packing relaxation engine.
//!
//! Drops integrality and every non-linear constraint, keeping only the
//! objective-defining linear equality and the *exactly-one* packing groups
//! (`Σ x_i == 1` over 0/1 variables) that dominate the paper's groundings —
//! in ACloud every VM is placed on exactly one host, in Follow-the-Sun every
//! job runs in exactly one site. Over that skeleton the bound is computable
//! greedily: each packing group contributes the best objective coefficient
//! among its members that can still be selected, everything else contributes
//! its interval extremum.

use super::{BoundResult, DualBound};
use crate::domain::Domain;
use crate::model::{Model, VarId};
use crate::propagator::LinearView;
use crate::search::{Objective, SearchConfig};

/// Linear/packing relaxation bound (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearRelaxation;

impl DualBound for LinearRelaxation {
    fn name(&self) -> &'static str {
        "linear_relaxation"
    }

    fn compute(
        &self,
        model: &Model,
        objective: Objective,
        _config: &SearchConfig,
        domains: &[Domain],
    ) -> Option<BoundResult> {
        let z = match objective {
            Objective::Minimize(v) | Objective::Maximize(v) => v,
            Objective::Satisfy => return None,
        };
        let minimize = matches!(objective, Objective::Minimize(_));
        let zdom = &domains[z.index()];
        // The propagated objective domain is itself a sound interval
        // relaxation (bounds consistency); everything below only tries to
        // beat it.
        let base = if minimize { zdom.min() } else { zdom.max() };

        let Some((obj_idx, obj_terms, obj_const)) = objective_equality(model, z) else {
            return Some(BoundResult {
                bound: base,
                binding: vec!["objective domain (bounds consistency)".into()],
            });
        };

        // `z = obj_const + Σ c_i · v_i` with `c_i` the negated stored
        // coefficient (the lowering posts `z - Σ c_i v_i == obj_const`).
        // Summed per variable in i128 so repeated terms and extreme
        // coefficients cannot wrap.
        let mut coeff = vec![0i128; domains.len()];
        for &(c, v) in obj_terms {
            if v != z {
                coeff[v.index()] -= c as i128;
            }
        }

        let mut total: i128 = obj_const as i128;
        let mut used = vec![false; domains.len()];
        let mut binding = vec![format!(
            "{}#{obj_idx} (objective)",
            model.propagators()[obj_idx].name()
        )];

        // Exactly-one groups: exactly one member is selected, so the group
        // contributes *some* member's objective coefficient — at least the
        // best one among members whose domain still contains 1. That
        // dominates the naive per-variable interval sum for any coefficient
        // signs, because the naive sum also admits "select nothing".
        for (idx, p) in model.propagators().iter().enumerate() {
            if idx == obj_idx {
                continue;
            }
            let Some(LinearView::Eq { terms, bound: 1 }) = p.linear_view() else {
                continue;
            };
            if terms.len() < 2 || terms.iter().any(|&(c, _)| c != 1) {
                continue;
            }
            // Each variable strengthens at most one group; members must be
            // 0/1 so "exactly one is 1, the rest are 0" holds.
            if terms.iter().any(|&(_, v)| {
                let d = &domains[v.index()];
                used[v.index()] || v == z || d.min() < 0 || d.max() > 1
            }) {
                continue;
            }
            let mut best: Option<i128> = None;
            for &(_, v) in terms {
                if !domains[v.index()].contains(1) {
                    continue;
                }
                let c = coeff[v.index()];
                best = Some(match best {
                    None => c,
                    Some(b) if minimize => b.min(c),
                    Some(b) => b.max(c),
                });
            }
            // A group with no selectable member is a conflict propagation
            // will surface; it cannot strengthen anything here.
            let Some(contribution) = best else { continue };
            for &(_, v) in terms {
                used[v.index()] = true;
            }
            total += contribution;
            binding.push(format!("{}#{idx} (exactly-one)", p.name()));
        }

        // Everything outside the strengthened groups falls back to its
        // interval extremum — the plain linear relaxation.
        for &(c, v) in obj_terms {
            if v == z || used[v.index()] {
                continue;
            }
            let d = &domains[v.index()];
            let ci = -(c as i128);
            let (a, b) = (ci * d.min() as i128, ci * d.max() as i128);
            total += if minimize { a.min(b) } else { a.max(b) };
        }

        let bound = match i64::try_from(total) {
            Ok(s) if (minimize && s > base) || (!minimize && s < base) => s,
            // Strengthening lost to (or overflowed past) the propagated
            // domain bound — keep the tighter, already-sound base.
            _ => {
                binding = vec!["objective domain (bounds consistency)".into()];
                base
            }
        };
        Some(BoundResult { bound, binding })
    }
}

/// Find the equality that defines the objective variable: a linear `==`
/// whose terms mention `z` exactly once, with coefficient `+1` (the shape
/// `Model::linear_var` posts). Returns the propagator index, its terms and
/// its constant.
fn objective_equality(model: &Model, z: VarId) -> Option<(usize, &[(i64, VarId)], i64)> {
    for (idx, p) in model.propagators().iter().enumerate() {
        if let Some(LinearView::Eq { terms, bound }) = p.linear_view() {
            let mentions = terms.iter().filter(|&&(_, v)| v == z).count();
            if mentions == 1 && terms.iter().any(|&(c, v)| v == z && c == 1) {
                return Some((idx, terms, bound));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundMode;
    use crate::model::Model;
    use crate::search::SearchConfig;

    fn cfg() -> SearchConfig {
        SearchConfig {
            bound_mode: BoundMode::Linear,
            ..Default::default()
        }
    }

    #[test]
    fn falls_back_to_domain_bound_without_linear_objective() {
        // Objective variable constrained only by bounds: the engine has no
        // linear equality to relax and reports the propagated domain bound.
        let mut m = Model::new();
        let z = m.new_var(7, 20);
        let cert = crate::bounds::compute_at_root(&m, Objective::Minimize(z), &cfg()).unwrap();
        assert_eq!(cert.dual_bound, 7);
        assert_eq!(cert.binding, vec!["objective domain (bounds consistency)"]);
    }

    #[test]
    fn skips_groups_with_wide_member_domains() {
        // On the *unpropagated* root, x still ranges over 0..2, so the
        // exactly-one guard must reject the group (propagation would narrow
        // x to 0/1, which is why `compute_at_root` propagates first).
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        let y = m.new_bool();
        m.linear_eq(&[(1, x), (1, y)], 1);
        let z = m.linear_var(&[(4, x), (9, y)], 0);
        let optimum = m
            .minimize(z, &SearchConfig::default())
            .best_objective
            .unwrap();
        let raw = LinearRelaxation
            .compute(&m, Objective::Minimize(z), &cfg(), m.domains())
            .unwrap();
        assert!(raw.bound <= optimum);
        assert!(!raw.binding.iter().any(|b| b.contains("exactly-one")));
    }

    #[test]
    fn skips_groups_with_non_unit_coefficients() {
        // 3x + y + w == 1 is not an exactly-one group (coefficient 3); the
        // engine must not pretend it is, and its bound must stay sound.
        let mut m = Model::new();
        let x = m.new_bool();
        let y = m.new_bool();
        let w = m.new_bool();
        m.linear_eq(&[(3, x), (1, y), (1, w)], 1);
        let z = m.linear_var(&[(4, x), (9, y), (6, w)], 0);
        let optimum = m
            .minimize(z, &SearchConfig::default())
            .best_objective
            .unwrap();
        let cert = crate::bounds::compute_at_root(&m, Objective::Minimize(z), &cfg()).unwrap();
        assert!(cert.dual_bound <= optimum);
        assert!(!cert.binding.iter().any(|b| b.contains("exactly-one")));
    }

    #[test]
    fn negative_coefficients_stay_sound() {
        let mut m = Model::new();
        let a = m.new_bool();
        let b = m.new_bool();
        m.linear_eq(&[(1, a), (1, b)], 1);
        let z = m.linear_var(&[(-5, a), (3, b)], 10);
        for obj in [Objective::Minimize(z), Objective::Maximize(z)] {
            let out = match obj {
                Objective::Minimize(_) => m.minimize(z, &SearchConfig::default()),
                _ => m.maximize(z, &SearchConfig::default()),
            };
            let optimum = out.best_objective.unwrap();
            let cert = crate::bounds::compute_at_root(&m, obj, &cfg()).unwrap();
            match obj {
                Objective::Minimize(_) => assert!(cert.dual_bound <= optimum),
                _ => assert!(cert.dual_bound >= optimum),
            }
        }
    }

    #[test]
    fn fixed_member_pins_the_group_contribution() {
        let mut m = Model::new();
        let a = m.new_bool();
        let b = m.new_bool();
        m.linear_eq(&[(1, a), (1, b)], 1);
        let z = m.linear_var(&[(8, a), (2, b)], 0);
        // Force the expensive member: propagation fixes b = 0, so the only
        // selectable member is `a` and the group contributes 8, not min(8,2).
        m.linear_eq(&[(1, a)], 1);
        let cert = crate::bounds::compute_at_root(&m, Objective::Minimize(z), &cfg()).unwrap();
        assert_eq!(cert.dual_bound, 8);
    }
}
