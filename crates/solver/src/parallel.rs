//! Parallel search engines: spine-splitting exact branch-and-bound and a
//! multi-seed LNS portfolio, both behind [`SearchConfig::workers`].
//!
//! The paper's `invokeSolver` runs one COP per deployment node; PR 1's
//! parallelism is only *across* nodes, so a single large COP left every core
//! but one idle. This module parallelizes the search *inside* one COP while
//! keeping the reported result deterministic — identical to the sequential
//! engines, independent of thread timing.
//!
//! # Exact branch-and-bound: spine decomposition + speculate/validate
//!
//! `solve_exact_parallel` splits the search tree along its *leftmost
//! feasible spine*. The spine is the one region of the tree whose shape is
//! provably independent of the incumbent: sequential search reaches every
//! spine node before recording any solution (failed branches record
//! nothing), so each spine node's branch list is fixed by the warm-start
//! bound alone and can be precomputed. The untaken branches of the spine
//! nodes become independent *cells* — replayable decision paths — listed in
//! exactly the order sequential depth-first search completes them: the
//! deepest spine node's subtree first, then each spine level's remaining
//! branches from the bottom up.
//!
//! Splitting any deeper would be unsound for bound-dependent branching
//! heuristics (first-fail variable selection, domain bisection): inside a
//! cell, the sequential tree's shape depends on the incumbent bound at cell
//! entry, which is only known once every earlier cell has finished.
//!
//! ## The determinism contract
//!
//! The final incumbent chain (every recorded solution, in order), the best
//! assignment, the objective value and `complete` are **identical to the
//! sequential search**, for every branching/value heuristic, independent of
//! thread timing. The mechanism is speculate-validate-redo:
//!
//! * a worker picking up cell `i` snapshots its *entry bound* — the fold of
//!   the warm bound with the committed results of already-finished earlier
//!   cells — and searches the cell with that bound, exactly as the
//!   sequential searcher would;
//! * the coordinator consumes cells in sequential order, maintaining the
//!   true running bound. A speculative result is **accepted** only when its
//!   entry bound equals the sequential bound at that point (the search is
//!   then bit-for-bit what sequential would have done); otherwise the cell
//!   is **redone** on the coordinator thread with the exact bound. Workers
//!   abandon doomed speculations early: an improved committed prefix bound
//!   invalidates their entry snapshot and the searcher stops at the next
//!   poll.
//!
//! In the common case the first (deep, left) cells commit quickly and later
//! cells are picked up after the incumbent has stabilized, so speculation
//! validates and the search scales; redos are bounded by the number of
//! incumbent improvements that race a pickup.
//!
//! Observer events are sequenced on the coordinator thread from the merged
//! chain, so `on_incumbent` streams arrive in sequential order;
//! [`std::ops::ControlFlow::Break`] flips a shared cancellation flag that
//! stops every worker cooperatively.
//!
//! ## Caveats
//!
//! Only the *result* is deterministic. The merged `nodes`/`fails`/
//! `propagations`/`max_depth` counters cover the accepted runs and therefore
//! vary slightly with which speculations validated; rejected speculative
//! work shows up only in wall-clock time. [`SearchConfig::node_limit`] is
//! accounted against a shared atomic total across every run (best-effort:
//! results are only reproducible when the budget is not hit), and
//! [`SearchConfig::fail_limit`] applies per cell rather than globally.
//! `on_progress` heartbeats are not emitted in parallel mode.
//!
//! # LNS: multi-seed portfolio
//!
//! `solve_lns_portfolio` runs `N` copies of the sequential destroy/repair
//! driver in synchronized rounds. Each round, every worker starts from the
//! shared incumbent, runs a bounded slice of iterations with a distinct
//! derived seed (`splitmix64(seed ⊕ (round·N + worker + 1))`) and publishes
//! its result to a shared board; at the round boundary the coordinator
//! adopts the best published incumbent in a fixed reduction order (objective
//! value first, lowest worker index on ties) and hands it to every worker as
//! the next round's warm start. The shared node budget is accounted across
//! rounds, and consecutive unimproved rounds escalate the per-round
//! iteration slice geometrically so the portfolio can still prove
//! completeness through full-neighborhood exhaustion. Because adoption
//! happens only at round boundaries and every per-round input is derived
//! deterministically, a seeded portfolio run is **byte-identical across
//! reruns** (modulo wall-clock fields) as long as no time limit interferes.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::bounds::{self, BoundMode};
use crate::domain::Domain;
use crate::lns::LnsConfig;
use crate::model::Model;
use crate::observe::{notify, SolveObserver};
use crate::search::{
    apply_branch, node_branches, resolve_subtree_linked, solve_exact_in, validated_warm,
    warm_bound_seed, Assignment, BranchOp, Objective, SearchConfig, SearchOutcome, SearchSpace,
};
use crate::stats::SearchStats;

/// A cell worker's published result: the subtree outcome plus the entry
/// bound the speculative run observed (`None` = no incumbent yet).
type CellResult = Option<(SearchOutcome, Option<i64>)>;

/// Effective worker count of a configuration (1 = sequential).
pub(crate) fn worker_count(config: &SearchConfig) -> usize {
    config.workers.map_or(1, NonZeroUsize::get)
}

/// The splitmix64 finalizer — the portfolio's seed-derivation function.
/// Statistically independent streams from consecutive inputs, no state.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Below this node budget, parallel splitting cannot pay for itself and the
/// budget-overshoot semantics get murky; run sequentially instead.
const MIN_PARALLEL_NODE_BUDGET: u64 = 1024;

/// Stop shedding cells once the spine has produced this many per worker…
const CELLS_PER_WORKER: usize = 8;
/// …capped at this total.
const MAX_CELLS: usize = 128;
/// Hard cap on spine depth: each level sheds at least nothing (a
/// single-branch node), so degenerate chains must not descend forever.
const SPINE_MAX_LEVELS: usize = 64;

/// Baseline LNS iterations per worker per portfolio round. Every worker
/// invocation re-establishes the frozen-root fixpoint (roughly one
/// iteration's worth of propagation), so rounds must be long enough to
/// amortize that, yet short enough that incumbent adoption at the round
/// boundary still steers the portfolio.
const PORTFOLIO_ROUND_ITERATIONS: u64 = 8;

/// Optimization sense, precomputed from the [`Objective`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Min,
    Max,
    Satisfy,
}

impl Sense {
    fn of(objective: Objective) -> Sense {
        match objective {
            Objective::Minimize(_) => Sense::Min,
            Objective::Maximize(_) => Sense::Max,
            Objective::Satisfy => Sense::Satisfy,
        }
    }

    /// Is bound `a` strictly tighter than bound `b` under this sense?
    fn better(self, a: i64, b: i64) -> bool {
        match self {
            Sense::Min => a < b,
            Sense::Max => a > b,
            Sense::Satisfy => false,
        }
    }

    /// Slot value meaning "no bound contribution".
    fn sentinel(self) -> i64 {
        match self {
            Sense::Min | Sense::Satisfy => i64::MAX,
            Sense::Max => i64::MIN,
        }
    }
}

/// Shared state of one parallel exact search: cooperative cancellation, the
/// shared node budget, and the committed bound contribution of every cell.
pub(crate) struct ExactContext {
    cancel: AtomicBool,
    nodes: AtomicU64,
    node_limit: Option<u64>,
    /// `done[i]` flips once the coordinator has committed cell `i` (or, for
    /// solution items, from the start); `finals[i]` then holds the running
    /// sequential bound after that cell (sentinel = no contribution).
    done: Vec<AtomicBool>,
    finals: Vec<AtomicI64>,
    /// Warm-start bound seed (non-strict, offset by one), shared by every
    /// cell.
    base: Option<i64>,
    sense: Sense,
}

impl ExactContext {
    /// The bound derivable from the warm base and the *committed* cells
    /// strictly before `position`. Commits only ever tighten it, so a stale
    /// read is merely a weaker (still sound) bound; equality with the
    /// coordinator's running bound is what validates a speculation.
    fn fold_done_prefix(&self, position: usize) -> Option<i64> {
        let sentinel = self.sense.sentinel();
        let mut acc = self.base;
        for j in 0..position {
            if !self.done[j].load(Ordering::Acquire) {
                continue;
            }
            let v = self.finals[j].load(Ordering::Relaxed);
            if v == sentinel {
                continue;
            }
            acc = Some(match acc {
                Some(b) if !self.sense.better(v, b) => b,
                _ => v,
            });
        }
        acc
    }

    fn publish_final(&self, position: usize, value: Option<i64>) {
        if let Some(v) = value {
            self.finals[position].store(v, Ordering::Relaxed);
        }
        self.done[position].store(true, Ordering::Release);
    }

    fn node_budget_exhausted(&self) -> bool {
        self.node_limit
            .is_some_and(|n| self.nodes.load(Ordering::Relaxed) >= n)
    }
}

/// A worker searcher's handle onto the shared [`ExactContext`], fixed to the
/// cell it is searching and the entry bound it speculated on. The sequential
/// `Searcher` polls this (when present) for cancellation, the shared node
/// budget, and entry-bound invalidation.
pub(crate) struct SearchLink<'a> {
    ctx: &'a ExactContext,
    position: usize,
    entry: Option<i64>,
}

impl SearchLink<'_> {
    pub(crate) fn cancelled(&self) -> bool {
        self.ctx.cancel.load(Ordering::Relaxed)
    }

    pub(crate) fn count_node(&self) {
        if self.ctx.node_limit.is_some() {
            self.ctx.nodes.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn node_budget_exhausted(&self) -> bool {
        self.ctx.node_budget_exhausted()
    }

    /// True once the committed prefix bound has moved past this run's entry
    /// snapshot: the speculation can no longer validate, so the searcher
    /// stops early and leaves the redo to the coordinator.
    pub(crate) fn invalidated(&self) -> bool {
        self.ctx.fold_done_prefix(self.position) != self.entry
    }
}

/// One frontier item, in sequential DFS-completion order.
#[derive(Debug, Clone)]
enum Seed {
    /// An unexplored cell: the branching decisions that reach it from the
    /// root, replayable on any store holding the propagated root state.
    Subtree(Vec<(usize, BranchOp)>),
    /// The solution terminating the spine, held at its DFS position so the
    /// merge sees it exactly where the sequential search records it.
    Solution(Assignment),
}

/// Outcome of spine enumeration.
enum Frontier {
    /// Root propagation failed (or the warm bound closed the root): the
    /// search is trivially complete with no solutions.
    Closed(SearchStats),
    /// Not enough near-root branching to occupy multiple workers.
    Sequential,
    /// A cell list worth splitting.
    Items(Vec<Seed>, SearchStats),
}

/// Unwind every open trail level, restoring the propagated root state.
fn unwind(space: &mut SearchSpace) {
    while space.store.level() > 0 {
        space.store.backtrack();
    }
}

/// Replay a cell path on a store holding the propagated (and warm-bounded)
/// root state: one trail level per decision, propagation seeded with the
/// branched variable's watchers — exactly what the sequential driver does
/// branch by branch. `Err` means the path is infeasible; the caller unwinds.
fn replay_path(
    model: &Model,
    space: &mut SearchSpace,
    path: &[(usize, BranchOp)],
    stats: &mut SearchStats,
) -> Result<(), ()> {
    for &(var_idx, op) in path {
        space.store.push_choice();
        if apply_branch(&mut space.store, var_idx, op).is_err() {
            return Err(());
        }
        if model
            .propagate_in(
                &mut space.store,
                &mut space.queue,
                stats,
                Some(model.props_watching(var_idx)),
            )
            .is_err()
        {
            return Err(());
        }
    }
    Ok(())
}

/// Tighten the objective at the (level-0) root with the warm bound seed and
/// propagate, mirroring the sequential root node entry (`tighten_bound` with
/// `best = seed`).
fn tighten_root(
    model: &Model,
    objective: Objective,
    bound: i64,
    space: &mut SearchSpace,
    stats: &mut SearchStats,
) -> Result<(), ()> {
    let (Objective::Minimize(o) | Objective::Maximize(o)) = objective else {
        return Ok(());
    };
    let idx = o.index();
    let changed = match objective {
        Objective::Minimize(_) => space.store.remove_above(idx, bound - 1)?,
        _ => space.store.remove_below(idx, bound + 1)?,
    };
    if changed
        && model
            .propagate_in(
                &mut space.store,
                &mut space.queue,
                stats,
                Some(model.props_watching(idx)),
            )
            .is_err()
    {
        return Err(());
    }
    Ok(())
}

/// The sequential `objective_bound_ok` check against a fixed bound.
fn bound_ok(objective: Objective, bound: Option<i64>, domains: &[Domain]) -> bool {
    match (objective, bound) {
        (Objective::Minimize(o), Some(b)) => domains[o.index()].min() < b,
        (Objective::Maximize(o), Some(b)) => domains[o.index()].max() > b,
        _ => true,
    }
}

/// Walk the leftmost feasible spine of the search tree — the exact nodes
/// sequential search enters before any solution can exist — shedding each
/// spine node's untaken branches as cells. Returns the cells in sequential
/// DFS-completion order: the terminal item (the subtree below the deepest
/// spine node reached, or the spine's leaf solution) first, then each spine
/// level's remaining branches from the bottom up. Uses the caller's space;
/// leaves the store unwound to the (warm-bounded) root.
fn enumerate_spine(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    warm_seed: Option<i64>,
    space: &mut SearchSpace,
    target: usize,
) -> Frontier {
    let mut stats = SearchStats::default();
    space.store.reset_from(model.domains());
    space.frames.clear();
    space.values.clear();
    if model
        .propagate_in(&mut space.store, &mut space.queue, &mut stats, None)
        .is_err()
    {
        return Frontier::Closed(stats);
    }
    if let Some(bound) = warm_seed {
        if tighten_root(model, objective, bound, space, &mut stats).is_err() {
            stats.nodes += 1;
            stats.fails += 1;
            return Frontier::Closed(stats);
        }
    }

    let mut path: Vec<(usize, BranchOp)> = Vec::new();
    // Per spine level, the branches sequential search returns to after
    // finishing everything deeper.
    let mut levels: Vec<Vec<Seed>> = Vec::new();
    let mut terminal: Option<Seed> = None;
    let mut cells = 0usize;
    loop {
        if cells + 1 >= target || path.len() >= SPINE_MAX_LEVELS {
            // Deep enough: everything below the current spine node is the
            // terminal cell (its node entry is left to the worker).
            terminal = Some(Seed::Subtree(path.clone()));
            break;
        }
        // Sequential node entry for the spine node: count it, check the
        // (warm-only) bound, pick the branching. The warm tightening itself
        // is a no-op past the root.
        stats.nodes += 1;
        stats.max_depth = stats.max_depth.max(path.len() as u64);
        if !bound_ok(objective, warm_seed, space.store.domains()) {
            stats.fails += 1;
            break;
        }
        let Some((var_idx, ops)) = node_branches(config, space.store.domains()) else {
            terminal = Some(Seed::Solution(Assignment::from_domains(
                space.store.domains(),
            )));
            break;
        };
        let mut leftovers: Vec<Seed> = Vec::new();
        let mut descended = false;
        for op in ops {
            if descended {
                let mut cell = path.clone();
                cell.pop();
                cell.push((var_idx, op));
                leftovers.push(Seed::Subtree(cell));
                cells += 1;
                continue;
            }
            // Try this branch as the spine continuation; a failure here is a
            // failure sequential search counts at the same point.
            space.store.push_choice();
            if apply_branch(&mut space.store, var_idx, op).is_err()
                || model
                    .propagate_in(
                        &mut space.store,
                        &mut space.queue,
                        &mut stats,
                        Some(model.props_watching(var_idx)),
                    )
                    .is_err()
            {
                stats.fails += 1;
                space.store.backtrack();
                continue;
            }
            path.push((var_idx, op));
            descended = true;
        }
        levels.push(leftovers);
        if !descended {
            // Every branch of this spine node failed: the node is exhausted
            // and the shed cells above already cover the rest of the tree.
            break;
        }
    }
    unwind(space);

    let subtree_cells = cells + usize::from(matches!(terminal, Some(Seed::Subtree(_))));
    if subtree_cells < 2 {
        return Frontier::Sequential;
    }
    let items: Vec<Seed> = terminal
        .into_iter()
        .chain(levels.into_iter().rev().flatten())
        .collect();
    Frontier::Items(items, stats)
}

/// Search one cell: snapshot the entry bound, replay the path onto the
/// propagated warm-bounded root, then run the trail searcher linked to the
/// shared context. Returns the outcome together with the entry snapshot the
/// coordinator validates.
#[allow(clippy::too_many_arguments)]
fn run_position(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    ctx: &ExactContext,
    items: &[Seed],
    item_idx: usize,
    space: &mut SearchSpace,
    start: Instant,
) -> (SearchOutcome, Option<i64>) {
    let Seed::Subtree(path) = &items[item_idx] else {
        unreachable!("workers only drain subtree items");
    };
    let entry = ctx.fold_done_prefix(item_idx);
    let link = SearchLink {
        ctx,
        position: item_idx,
        entry,
    };
    let empty = |stats: SearchStats, complete: bool| SearchOutcome {
        best: None,
        best_objective: None,
        solutions: Vec::new(),
        stats,
        complete,
        certificate: None,
    };
    let mut pre = SearchStats::default();
    if link.cancelled() || link.node_budget_exhausted() {
        pre.limit_reached = true;
        pre.cancelled = link.cancelled();
        return (empty(pre, false), entry);
    }
    space.store.reset_from(model.domains());
    space.frames.clear();
    space.values.clear();
    if model
        .propagate_in(&mut space.store, &mut space.queue, &mut pre, None)
        .is_err()
    {
        // Unreachable in practice: enumeration propagated the same root.
        return (empty(pre, true), entry);
    }
    if let Some(seed) = ctx.base {
        if tighten_root(model, objective, seed, space, &mut pre).is_err() {
            return (empty(pre, true), entry);
        }
    }
    if replay_path(model, space, path, &mut pre).is_err() {
        // Unreachable likewise: enumeration verified the path on this state.
        unwind(space);
        return (empty(pre, true), entry);
    }
    let worker_cfg = SearchConfig {
        workers: None,
        warm_start: None,
        // The node budget is accounted globally through the link; the local
        // limit must not truncate the cell on its own.
        node_limit: None,
        // Optimization workers run uncapped: the merge truncates the chain.
        // Satisfaction solutions are never filtered, so the global cap
        // applies per cell directly.
        max_solutions: match objective {
            Objective::Satisfy => config.max_solutions,
            _ => None,
        },
        time_limit: config.time_limit.map(|t| t.saturating_sub(start.elapsed())),
        // The coordinator owns the certificate and all gap checks (at cell
        // commits, where the global incumbent lives); workers run bound-free.
        gap_limit: None,
        bound_mode: BoundMode::Off,
        ..config.clone()
    };
    let mut outcome = resolve_subtree_linked(model, objective, &worker_cfg, space, entry, &link);
    unwind(space);
    outcome.stats.max_depth = outcome.stats.max_depth.saturating_add(path.len() as u64);
    outcome.stats.merge(&pre);
    (outcome, entry)
}

/// Block until the worker result for cell slot `k` is published.
fn wait_result(
    results: &Mutex<Vec<CellResult>>,
    done: &Condvar,
    k: usize,
) -> (SearchOutcome, Option<i64>) {
    let mut guard = results.lock().expect("worker panicked holding results");
    loop {
        if let Some(r) = guard[k].take() {
            return r;
        }
        guard = done.wait(guard).expect("worker panicked holding results");
    }
}

/// The sequential strict-improvement recording, re-applied over the accepted
/// per-cell solution lists in sequential order: maintains the running bound
/// speculations are validated against, releases ordered `on_incumbent`
/// events, and turns an observer `Break` (or a hit solution cap) into
/// cooperative cancellation of every worker.
struct ChainMerge {
    sense: Sense,
    objective: Objective,
    bound: Option<i64>,
    cap: Option<usize>,
    chain: Vec<Assignment>,
    halted: bool,
}

impl ChainMerge {
    fn capped(&self) -> bool {
        self.cap.is_some_and(|k| self.chain.len() >= k)
    }

    fn offer(
        &mut self,
        a: &Assignment,
        observer: &mut Option<&mut dyn SolveObserver>,
        ctx: &ExactContext,
    ) {
        if self.halted || self.capped() {
            return;
        }
        let value = match self.objective {
            Objective::Minimize(o) | Objective::Maximize(o) => {
                let v = a.value(o);
                match self.bound {
                    Some(b) if !self.sense.better(v, b) => return,
                    _ => {}
                }
                self.bound = Some(v);
                Some(v)
            }
            Objective::Satisfy => None,
        };
        self.chain.push(a.clone());
        if notify(observer, |o| o.on_incumbent(value, a)) {
            self.halted = true;
            ctx.cancel.store(true, Ordering::Relaxed);
        } else if self.capped() {
            // Sequential stops at the solution cap; nothing recorded past
            // this point can enter the chain, so stop the workers too.
            ctx.cancel.store(true, Ordering::Relaxed);
        }
    }
}

/// Parallel exact branch-and-bound over `workers ≥ 2` scoped threads. See
/// the module docs for the determinism contract.
pub(crate) fn solve_exact_parallel(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    workers: usize,
    space: &mut SearchSpace,
    observer: &mut Option<&mut dyn SolveObserver>,
) -> SearchOutcome {
    debug_assert!(workers > 1);
    if model.num_vars() == 0
        || config
            .node_limit
            .is_some_and(|n| n <= MIN_PARALLEL_NODE_BUDGET)
    {
        return solve_exact_in(model, objective, config, space, observer);
    }
    let start = Instant::now();
    let warm = validated_warm(model, objective, config);
    let warm_seed = warm
        .as_ref()
        .and_then(|(_, value)| warm_bound_seed(objective, *value));
    let sense = Sense::of(objective);
    let target = (workers * CELLS_PER_WORKER).min(MAX_CELLS);
    // One certificate for the whole parallel search, computed on the
    // coordinator against the propagated root in a scratch store so the
    // merged propagation counters stay comparable to the sequential run.
    let certificate = bounds::compute_at_root(model, objective, config);

    let (items, mut stats) =
        match enumerate_spine(model, objective, config, warm_seed, space, target) {
            Frontier::Closed(mut stats) => {
                stats.warm_start = warm.is_some();
                stats.elapsed_micros = start.elapsed().as_micros() as u64;
                let (best, best_objective) = match warm {
                    Some((a, v)) => (Some(a), Some(v)),
                    None => (None, None),
                };
                stats.dual_bound = certificate.as_ref().map(|c| c.dual_bound);
                if let (Some(dual), Some(v)) = (stats.dual_bound, best_objective) {
                    stats.gap = Some(bounds::optimality_gap(objective, v, dual));
                }
                return SearchOutcome {
                    best,
                    best_objective,
                    solutions: Vec::new(),
                    stats,
                    complete: true,
                    certificate,
                };
            }
            Frontier::Sequential => {
                return solve_exact_in(model, objective, config, space, observer)
            }
            Frontier::Items(items, stats) => (items, stats),
        };

    stats.warm_start = warm.is_some();
    stats.parallel_workers = workers as u64;
    stats.dual_bound = certificate.as_ref().map(|c| c.dual_bound);
    if let (Some(dual), Some((_, v))) = (stats.dual_bound, warm.as_ref()) {
        // Mirror the sequential searcher: a validated warm assignment is a
        // real primal, so the gap is live before any cell finishes.
        stats.gap = Some(bounds::optimality_gap(objective, *v, dual));
    }
    let positions: Vec<usize> = items
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Seed::Subtree(_)).then_some(i))
        .collect();
    stats.subtrees = positions.len() as u64;

    let ctx = ExactContext {
        cancel: AtomicBool::new(false),
        nodes: AtomicU64::new(stats.nodes),
        node_limit: config.node_limit,
        done: (0..items.len()).map(|_| AtomicBool::new(false)).collect(),
        finals: (0..items.len())
            .map(|_| AtomicI64::new(sense.sentinel()))
            .collect(),
        base: warm_seed,
        sense,
    };
    // The spine solution (if any) is known upfront: commit it immediately so
    // cell speculations prune against it from the start.
    for (i, item) in items.iter().enumerate() {
        if let Seed::Solution(a) = item {
            let value = match objective {
                Objective::Minimize(o) | Objective::Maximize(o) => Some(a.value(o)),
                Objective::Satisfy => None,
            };
            ctx.publish_final(i, value);
        }
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<CellResult>> = Mutex::new(vec![None; positions.len()]);
    let slot_filled = Condvar::new();

    if space.pool.len() < workers {
        space.pool.resize_with(workers, SearchSpace::new);
    }
    let mut pool = std::mem::take(&mut space.pool);

    let mut merge = ChainMerge {
        sense,
        objective,
        bound: warm_seed,
        cap: config.max_solutions,
        chain: Vec::new(),
        halted: false,
    };
    let mut all_complete = true;
    // Set when the certified gap drops strictly below `gap_limit` at a cell
    // commit: remaining cells stop committing and the workers are signalled,
    // exactly like a budget stop (the run reports `limit_reached`, not
    // `cancelled`). Commit order is sequential, so the decision — and the
    // reported incumbent — is rerun-deterministic.
    let mut gap_stopped = false;

    std::thread::scope(|s| {
        for wspace in pool.iter_mut().take(workers) {
            let (ctx, items, positions, next, results, slot_filled) =
                (&ctx, &items, &positions, &next, &results, &slot_filled);
            s.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= positions.len() {
                    break;
                }
                let out = run_position(
                    model,
                    objective,
                    config,
                    ctx,
                    items,
                    positions[k],
                    wspace,
                    start,
                );
                let mut guard = results.lock().expect("coordinator never panics");
                guard[k] = Some(out);
                slot_filled.notify_all();
            });
        }
        // Coordinator: commit cells in sequential order. Even once halted or
        // capped, keep draining every slot (workers wind down on the cancel
        // flag and every slot must fill) without committing anything.
        let mut cursor = 0usize;
        for (idx, item) in items.iter().enumerate() {
            match item {
                Seed::Solution(a) => merge.offer(a, observer, &ctx),
                Seed::Subtree(_) => {
                    let (outcome, entry) = wait_result(&results, &slot_filled, cursor);
                    cursor += 1;
                    if merge.halted || merge.capped() || gap_stopped {
                        continue;
                    }
                    let accepted = if entry == merge.bound {
                        outcome
                    } else {
                        // The speculation raced an incumbent improvement:
                        // redo the cell with the exact sequential entry
                        // bound. Every earlier cell is committed, so the
                        // fresh snapshot equals the running bound and the
                        // redo cannot be invalidated.
                        let (redo, redo_entry) =
                            run_position(model, objective, config, &ctx, &items, idx, space, start);
                        debug_assert_eq!(redo_entry, merge.bound);
                        redo
                    };
                    all_complete &= accepted.complete;
                    stats.merge(&accepted.stats);
                    for a in &accepted.solutions {
                        merge.offer(a, observer, &ctx);
                    }
                    ctx.publish_final(idx, merge.bound);
                    if let (Some(limit), Some(cert)) = (config.gap_limit, certificate.as_ref()) {
                        // The primal must be a real solution: the committed
                        // chain's objective, or the warm value before any
                        // cell produced one (`merge.bound` alone would be
                        // the off-by-one warm *seed*).
                        let primal = if merge.chain.is_empty() {
                            warm.as_ref().map(|(_, v)| *v)
                        } else {
                            merge.bound
                        };
                        if primal.is_some_and(|p| {
                            bounds::optimality_gap(objective, p, cert.dual_bound) < limit
                        }) {
                            gap_stopped = true;
                            ctx.cancel.store(true, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    });
    space.pool = pool;

    let capped = merge.capped();
    let mut cancelled = merge.halted;
    let budget_tripped = ctx.node_budget_exhausted();
    if budget_tripped && notify(observer, |o| o.on_node_budget(&stats)) {
        cancelled = true;
    }
    stats.solutions = merge.chain.len() as u64;
    stats.cancelled = cancelled;
    // Mirror the sequential `finish`: a hit solution cap still reports a
    // complete search (the cap is not a `stopped` condition there). A gap
    // stop is a limit stop — the sequential searcher would also have stopped
    // without a full proof once the gap dropped below the threshold.
    let complete = !cancelled && (capped || all_complete) && !gap_stopped;
    stats.limit_reached = !complete;
    stats.elapsed_micros = start.elapsed().as_micros() as u64;

    let (mut best, mut best_objective) = match sense {
        Sense::Satisfy => (merge.chain.first().cloned(), None),
        Sense::Min | Sense::Max => (merge.chain.last().cloned(), merge.bound),
    };
    if best.is_none() {
        // No recorded solution: fall back to the warm assignment, exactly
        // like the sequential `finish_with_warm`.
        if let Some((a, v)) = warm {
            best = Some(a);
            best_objective = Some(v);
        } else {
            best_objective = None;
        }
    }
    if let (Some(cert), Some(v)) = (certificate.as_ref(), best_objective) {
        stats.gap = Some(bounds::optimality_gap(objective, v, cert.dual_bound));
    }
    SearchOutcome {
        best,
        best_objective,
        solutions: merge.chain,
        stats,
        complete,
        certificate,
    }
}

/// Multi-seed LNS portfolio over `workers ≥ 2` scoped threads in
/// synchronized rounds. See the module docs for semantics and the rerun
/// determinism guarantee.
pub(crate) fn solve_lns_portfolio(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    lns: &LnsConfig,
    workers: usize,
    space: &mut SearchSpace,
    observer: &mut Option<&mut dyn SolveObserver>,
) -> SearchOutcome {
    debug_assert!(workers > 1);
    debug_assert!(!matches!(objective, Objective::Satisfy));
    let start = Instant::now();
    let sense = Sense::of(objective);
    let warm = validated_warm(model, objective, config);
    let had_warm = warm.is_some();
    let mut incumbent: Option<(Assignment, i64)> = warm;
    let mut chain: Vec<Assignment> = Vec::new();
    let mut stats = SearchStats {
        parallel_workers: workers as u64,
        ..Default::default()
    };
    let mut cancelled = false;
    let mut complete = false;
    let mut limit = false;
    let mut stall: u32 = 0;

    if space.pool.len() < workers {
        space.pool.resize_with(workers, SearchSpace::new);
    }
    let mut pool = std::mem::take(&mut space.pool);

    // ----- construction: one first-leaf dive on the coordinator -------------
    //
    // Without a warm incumbent the sequential driver constructs its first
    // solution through geometrically restarted bounded dives, re-exploring
    // the same deterministic prefix on every restart. Sliced across
    // portfolio rounds that schedule can starve outright — no slice large
    // enough to reach the first leaf of a deep model — so the portfolio
    // instead dives once with the whole remaining budget, stopping at the
    // first solution, and hands it to every worker as the opening round's
    // shared incumbent.
    let mut halted_in_construction = incumbent.is_none() && {
        let dive_cfg = SearchConfig {
            mode: crate::lns::SolverMode::Exact,
            workers: None,
            warm_start: None,
            node_limit: config.node_limit,
            max_solutions: Some(1),
            // The portfolio coordinator owns the one certificate and the
            // round-boundary gap checks; the construction dive runs
            // bound-free like every worker.
            gap_limit: None,
            bound_mode: BoundMode::Off,
            ..config.clone()
        };
        let dive = solve_exact_in(model, objective, &dive_cfg, space, &mut *observer);
        chain.extend(dive.solutions.iter().cloned());
        let mut counters = dive.stats.clone();
        counters.solutions = 0;
        counters.elapsed_micros = 0;
        counters.limit_reached = false;
        counters.cancelled = false;
        counters.warm_start = false;
        stats.merge(&counters);
        cancelled = dive.stats.cancelled;
        if let (Some(a), Some(v)) = (dive.best, dive.best_objective) {
            incumbent = Some((a, v));
        }
        if dive.complete && incumbent.is_none() {
            // The dive exhausted the tree without a leaf: proven infeasible.
            // (With a solution, `complete` is ambiguous — the engine reports
            // a solution-capped stop as complete — so the portfolio keeps
            // improving and lets neighborhood exhaustion re-prove
            // optimality.)
            complete = true;
            true
        } else if incumbent.is_none() {
            // Budget exhausted before any incumbent appeared.
            limit = true;
            true
        } else {
            cancelled
        }
    };
    if config
        .max_solutions
        .is_some_and(|k| chain.len() >= k && !complete)
    {
        halted_in_construction = true;
    }

    // One root certificate for the whole portfolio, computed on the
    // coordinator in a scratch store (worker counters stay comparable).
    let certificate = bounds::compute_at_root(model, objective, config);
    stats.dual_bound = certificate.as_ref().map(|c| c.dual_bound);

    let mut round: u64 = 0;
    loop {
        // The construction phase may already have settled the outcome
        // (proved infeasibility, exhausted the budget feasible-solution-less,
        // satisfied `max_solutions`, or got cancelled): skip the rounds.
        if halted_in_construction {
            break;
        }
        // Gap-driven termination at the round boundary — the same
        // deterministic synchronization point where incumbents are adopted.
        // Strict comparison: `gap_limit = Some(0.0)` never stops a round.
        if let (Some(gap_limit), Some(dual)) = (config.gap_limit, stats.dual_bound) {
            if incumbent
                .as_ref()
                .is_some_and(|(_, v)| bounds::optimality_gap(objective, *v, dual) < gap_limit)
            {
                limit = true;
                break;
            }
        }
        if let Some(t) = config.time_limit {
            if start.elapsed() >= t {
                limit = true;
                break;
            }
        }
        if let Some(n) = config.node_limit {
            if stats.nodes >= n {
                limit = true;
                break;
            }
        }
        if let Some(mi) = lns.max_iterations {
            if stats.lns_iterations >= mi {
                limit = true;
                break;
            }
        }
        if let Some(ms) = config.max_solutions {
            if chain.len() >= ms {
                break;
            }
        }

        // Per-round budget slices. Consecutive unimproved rounds escalate
        // geometrically so a stalled portfolio still reaches the
        // full-neighborhood completeness proof of the sequential driver.
        let escalation = 1u64 << stall.min(16);
        let node_floor = lns
            .dive_node_limit
            .saturating_mul(2)
            .max(1_000)
            .saturating_mul(escalation);
        let node_slice = match config.node_limit {
            None => node_floor,
            Some(n) => node_floor
                .min((n - stats.nodes).div_ceil(workers as u64))
                .max(1),
        };
        let iter_slice = {
            let base = PORTFOLIO_ROUND_ITERATIONS.saturating_mul(escalation);
            match lns.max_iterations {
                None => base,
                Some(mi) => base.min(mi - stats.lns_iterations).max(1),
            }
        };

        let warm_assignment: Option<Assignment> = incumbent.as_ref().map(|(a, _)| a.clone());
        let fails_so_far = stats.fails;
        // The shared incumbent board: one slot per worker, adopted in fixed
        // worker order at the round boundary.
        let board: Mutex<Vec<Option<SearchOutcome>>> = Mutex::new(vec![None; workers]);
        std::thread::scope(|s| {
            for (w, wspace) in pool.iter_mut().take(workers).enumerate() {
                let (board, warm_assignment) = (&board, &warm_assignment);
                s.spawn(move || {
                    let worker_cfg = SearchConfig {
                        workers: None,
                        warm_start: warm_assignment.clone(),
                        node_limit: Some(node_slice),
                        fail_limit: config
                            .fail_limit
                            .map(|f| f.saturating_sub(fails_so_far).max(1)),
                        max_solutions: None,
                        time_limit: config.time_limit.map(|t| t.saturating_sub(start.elapsed())),
                        gap_limit: None,
                        bound_mode: BoundMode::Off,
                        ..config.clone()
                    };
                    let mut worker_lns = lns.clone();
                    worker_lns.seed =
                        splitmix64(lns.seed ^ (round.wrapping_mul(workers as u64) + w as u64 + 1));
                    worker_lns.max_iterations = Some(iter_slice);
                    let mut no_obs: Option<&mut dyn SolveObserver> = None;
                    let out = crate::lns::solve_lns(
                        model,
                        objective,
                        &worker_cfg,
                        &worker_lns,
                        wspace,
                        &mut no_obs,
                    );
                    board.lock().expect("coordinator never panics")[w] = Some(out);
                });
            }
        });
        round += 1;
        stats.portfolio_rounds += 1;

        let outcomes: Vec<SearchOutcome> = board
            .into_inner()
            .expect("worker panicked holding the board")
            .into_iter()
            .map(|o| o.expect("every worker publishes"))
            .collect();
        let consumed: u64 = outcomes.iter().map(|o| o.stats.nodes).sum();
        let mut adopted: Option<(&Assignment, i64)> = None;
        for out in &outcomes {
            // Fixed reduction order: scan in worker order, strict improvement
            // only, ties keep the earlier worker.
            if let (Some(a), Some(v)) = (&out.best, out.best_objective) {
                // `map_or(true, ..)` rather than `is_none_or`: the latter is
                // newer than the workspace MSRV.
                let beats_incumbent = incumbent
                    .as_ref()
                    .map_or(true, |(_, cur)| sense.better(v, *cur));
                let beats_candidate = adopted.map_or(true, |(_, cand)| sense.better(v, cand));
                if beats_incumbent && beats_candidate {
                    adopted = Some((a, v));
                }
            }
            if out.complete {
                complete = true;
            }
            // Merge worker counters deterministically (worker order), with
            // flags and result-shaped fields scrubbed: the coordinator owns
            // the incumbent chain and the final flag set.
            let mut counters = out.stats.clone();
            counters.solutions = 0;
            counters.elapsed_micros = 0;
            counters.limit_reached = false;
            counters.cancelled = false;
            counters.warm_start = false;
            stats.merge(&counters);
        }
        let improved = adopted.map(|(a, v)| (a.clone(), v));
        let improved_flag = improved.is_some();
        stall = if improved_flag { 0 } else { stall + 1 };
        if let Some((a, v)) = improved {
            chain.push(a.clone());
            incumbent = Some((a.clone(), v));
            if notify(observer, |o| o.on_incumbent(Some(v), &a)) {
                cancelled = true;
            }
        }
        if !cancelled
            && notify(observer, |o| {
                o.on_lns_iteration(
                    stats.lns_iterations,
                    improved_flag,
                    incumbent.as_ref().map(|(_, v)| *v),
                )
            })
        {
            cancelled = true;
        }
        if cancelled || complete {
            break;
        }
        if consumed == 0 && !improved_flag {
            // Degenerate: no worker could expend a single node — treat as an
            // exhausted budget rather than spinning.
            limit = true;
            break;
        }
    }
    space.pool = pool;

    stats.solutions = chain.len() as u64;
    stats.warm_start = had_warm;
    stats.cancelled = cancelled;
    stats.limit_reached = limit || cancelled;
    stats.elapsed_micros = start.elapsed().as_micros() as u64;
    let (best, best_objective) = match incumbent {
        Some((a, v)) => (Some(a), Some(v)),
        None => (None, None),
    };
    if let (Some(dual), Some(v)) = (stats.dual_bound, best_objective) {
        stats.gap = Some(bounds::optimality_gap(objective, v, dual));
    }
    SearchOutcome {
        best,
        best_objective,
        solutions: chain,
        stats,
        complete: complete && !cancelled,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lns::SolverMode;
    use crate::model::VarId;
    use crate::search::{solve_in, Branching, ValueChoice};
    use crate::Model;

    fn workers(n: usize) -> Option<NonZeroUsize> {
        NonZeroUsize::new(n)
    }

    /// A model with enough near-root branching to split: minimize a weighted
    /// sum over chained variables.
    fn chain_model(vars: usize, dom: i64) -> (Model, VarId) {
        let mut m = Model::new();
        let xs: Vec<VarId> = (0..vars).map(|_| m.new_var(0, dom)).collect();
        for w in xs.windows(2) {
            m.linear_le(&[(1, w[0]), (-1, w[1])], 1);
        }
        let terms: Vec<(i64, VarId)> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (1 + (i as i64 % 3), x))
            .collect();
        m.linear_ge(&terms, dom);
        let obj = m.linear_var(&terms, 0);
        (m, obj)
    }

    #[test]
    fn splitmix64_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // SplitMix64 reference value for seed 0 (Steele et al.).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn parallel_minimize_matches_sequential_chain() {
        let (m, obj) = chain_model(8, 6);
        let sequential = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut SearchSpace::new(),
        );
        for n in [2usize, 4] {
            let cfg = SearchConfig {
                workers: workers(n),
                ..Default::default()
            };
            let par = solve_in(&m, Objective::Minimize(obj), &cfg, &mut SearchSpace::new());
            assert_eq!(par.best_objective, sequential.best_objective, "workers={n}");
            assert_eq!(par.best, sequential.best, "workers={n}");
            assert_eq!(par.solutions, sequential.solutions, "workers={n}");
            assert_eq!(par.complete, sequential.complete, "workers={n}");
            assert_eq!(par.stats.solutions, sequential.stats.solutions);
            assert_eq!(par.stats.parallel_workers, n as u64);
            assert!(par.stats.subtrees >= 2);
        }
    }

    #[test]
    fn parallel_maximize_and_heuristics_match_sequential() {
        for branching in [Branching::InputOrder, Branching::SmallestDomain] {
            for value_choice in [ValueChoice::Min, ValueChoice::Max, ValueChoice::Split] {
                let (m, obj) = chain_model(7, 5);
                let base = SearchConfig {
                    branching,
                    value_choice,
                    ..Default::default()
                };
                let sequential =
                    solve_in(&m, Objective::Maximize(obj), &base, &mut SearchSpace::new());
                let cfg = SearchConfig {
                    workers: workers(4),
                    ..base
                };
                let par = solve_in(&m, Objective::Maximize(obj), &cfg, &mut SearchSpace::new());
                let ctx = format!("{branching:?}/{value_choice:?}");
                assert_eq!(par.best_objective, sequential.best_objective, "{ctx}");
                assert_eq!(par.best, sequential.best, "{ctx}");
                assert_eq!(par.solutions, sequential.solutions, "{ctx}");
            }
        }
    }

    #[test]
    fn parallel_satisfy_matches_sequential_solution_order() {
        let mut m = Model::new();
        let x = m.new_var(0, 5);
        let y = m.new_var(0, 5);
        m.linear_le(&[(1, x), (1, y)], 6);
        let sequential = solve_in(
            &m,
            Objective::Satisfy,
            &SearchConfig {
                max_solutions: Some(10),
                ..Default::default()
            },
            &mut SearchSpace::new(),
        );
        let par = solve_in(
            &m,
            Objective::Satisfy,
            &SearchConfig {
                max_solutions: Some(10),
                workers: workers(3),
                ..Default::default()
            },
            &mut SearchSpace::new(),
        );
        assert_eq!(par.solutions, sequential.solutions);
        assert_eq!(par.best, sequential.best);
    }

    #[test]
    fn parallel_solution_cap_matches_sequential() {
        let (m, obj) = chain_model(8, 6);
        let base = SearchConfig {
            max_solutions: Some(3),
            ..Default::default()
        };
        let sequential = solve_in(&m, Objective::Minimize(obj), &base, &mut SearchSpace::new());
        let par = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig {
                workers: workers(4),
                ..base
            },
            &mut SearchSpace::new(),
        );
        assert_eq!(par.solutions, sequential.solutions);
        assert_eq!(par.best, sequential.best);
        assert_eq!(par.best_objective, sequential.best_objective);
        assert_eq!(par.complete, sequential.complete);
    }

    #[test]
    fn workers_one_is_the_sequential_engine() {
        let (m, obj) = chain_model(6, 4);
        let sequential = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut SearchSpace::new(),
        );
        let one = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig {
                workers: workers(1),
                ..Default::default()
            },
            &mut SearchSpace::new(),
        );
        // Bit-identical: same stats, not merely the same result.
        assert_eq!(one.stats.nodes, sequential.stats.nodes);
        assert_eq!(one.stats.fails, sequential.stats.fails);
        assert_eq!(one.stats.parallel_workers, 0);
        assert_eq!(one.solutions, sequential.solutions);
    }

    #[test]
    fn parallel_warm_start_matches_sequential() {
        let (m, obj) = chain_model(8, 6);
        let cold = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut SearchSpace::new(),
        );
        let base = SearchConfig {
            warm_start: cold.best.clone(),
            ..Default::default()
        };
        let sequential = solve_in(&m, Objective::Minimize(obj), &base, &mut SearchSpace::new());
        let par = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig {
                workers: workers(4),
                ..base
            },
            &mut SearchSpace::new(),
        );
        assert!(par.stats.warm_start);
        assert_eq!(par.best_objective, sequential.best_objective);
        assert_eq!(par.best, sequential.best);
        assert_eq!(par.solutions, sequential.solutions);
    }

    #[test]
    fn parallel_infeasible_model_is_complete_and_empty() {
        let mut m = Model::new();
        let x = m.new_var(0, 1);
        let y = m.new_var(0, 1);
        m.linear_ge(&[(1, x), (1, y)], 5);
        let par = solve_in(
            &m,
            Objective::Satisfy,
            &SearchConfig {
                workers: workers(4),
                ..Default::default()
            },
            &mut SearchSpace::new(),
        );
        assert!(par.complete);
        assert!(par.solutions.is_empty());
    }

    #[test]
    fn tiny_node_budget_falls_back_to_sequential() {
        let (m, obj) = chain_model(8, 6);
        let cfg = SearchConfig {
            workers: workers(4),
            node_limit: Some(5),
            ..Default::default()
        };
        let out = solve_in(&m, Objective::Minimize(obj), &cfg, &mut SearchSpace::new());
        assert!(!out.complete);
        assert!(out.stats.nodes <= 6);
        assert_eq!(out.stats.parallel_workers, 0, "sequential fallback");
    }

    #[test]
    fn parallel_space_pool_is_reused() {
        let (m, obj) = chain_model(8, 6);
        let cfg = SearchConfig {
            workers: workers(4),
            ..Default::default()
        };
        let mut space = SearchSpace::new();
        let first = solve_in(&m, Objective::Minimize(obj), &cfg, &mut space);
        assert!(space.pool.len() >= 4, "pool retained for reuse");
        let second = solve_in(&m, Objective::Minimize(obj), &cfg, &mut space);
        assert_eq!(first.best_objective, second.best_objective);
        assert_eq!(first.solutions, second.solutions);
    }

    #[test]
    fn lns_portfolio_is_rerun_deterministic() {
        let (m, obj) = chain_model(10, 8);
        let cfg = SearchConfig {
            mode: SolverMode::Lns(LnsConfig {
                seed: 42,
                ..Default::default()
            }),
            node_limit: Some(20_000),
            workers: workers(4),
            ..Default::default()
        };
        let a = solve_in(&m, Objective::Minimize(obj), &cfg, &mut SearchSpace::new());
        let b = solve_in(&m, Objective::Minimize(obj), &cfg, &mut SearchSpace::new());
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.best, b.best);
        assert_eq!(a.solutions, b.solutions);
        let mut sa = a.stats.clone();
        let mut sb = b.stats.clone();
        sa.elapsed_micros = 0;
        sb.elapsed_micros = 0;
        assert_eq!(sa, sb, "stats must be byte-identical modulo wall clock");
        assert_eq!(a.stats.parallel_workers, 4);
        assert!(a.stats.portfolio_rounds >= 1);
    }

    #[test]
    fn lns_portfolio_finds_a_feasible_incumbent() {
        let (m, obj) = chain_model(10, 8);
        let cfg = SearchConfig {
            mode: SolverMode::Lns(LnsConfig::default()),
            node_limit: Some(20_000),
            workers: workers(2),
            ..Default::default()
        };
        let out = solve_in(&m, Objective::Minimize(obj), &cfg, &mut SearchSpace::new());
        let best = out.best.expect("feasible model");
        for p in m.propagators() {
            assert!(p.check(&|v| best.value(v)), "{} violated", p.name());
        }
        let exact = solve_in(
            &m,
            Objective::Minimize(obj),
            &SearchConfig::default(),
            &mut SearchSpace::new(),
        );
        match (out.best_objective, exact.best_objective) {
            (Some(lns_v), Some(opt)) => assert!(lns_v >= opt, "LNS cannot beat the optimum"),
            _ => panic!("both searches find solutions"),
        }
    }
}
