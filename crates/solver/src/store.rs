//! The trail-based domain store: one mutable copy of every variable domain,
//! plus an undo trail that restores search state in O(changes).
//!
//! Before this existed, the search cloned the full `Vec<Domain>` at every
//! node — O(vars × domain-size) per node, which dominated branch-and-bound
//! wall-clock on the paper's COPs. A [`Store`] instead keeps a single
//! mutable domain vector and records, per decision level, the *previous*
//! domain of each variable the first time that variable is touched at the
//! level. Backtracking pops those saved domains back in, undoing exactly the
//! changes made since the matching [`Store::push_choice`].
//!
//! # Trail invariants
//!
//! * A decision level is opened by [`Store::push_choice`] and closed by
//!   [`Store::backtrack`]; level 0 (no open choice) is the root, and
//!   mutations at the root are *not* trailed — they are permanent for the
//!   lifetime of the search (root propagation, or a model's own domains via
//!   [`crate::Model::propagate_root`]).
//! * Each variable is saved at most once per level (`saved_at` tracks the
//!   level of the most recent save); restoring pops entries in reverse
//!   order, so even a redundant save is harmless — the oldest entry of a
//!   level wins.
//! * Mutating operations check for no-ops *before* saving, so a propagator
//!   that re-derives an existing bound costs no trail traffic.
//!
//! [`PropQueue`] is the companion fixpoint scheduler: a dedup'd pending set
//! of propagator indices with all of its allocations (pending stack, queued
//! flags, changed-variable scratch) owned by the caller and reused across
//! every propagation of a search, instead of being reallocated per node.

use crate::domain::Domain;
use crate::model::VarId;

const UNSAVED: u32 = u32::MAX;

/// A single mutable domain vector with an undo trail.
///
/// All domain mutation during search goes through the store so that changes
/// are trailed and can be undone in O(changes) by [`Store::backtrack`].
#[derive(Debug, Clone, Default)]
pub struct Store {
    domains: Vec<Domain>,
    /// Saved `(var, previous domain)` pairs, grouped by decision level.
    trail: Vec<(u32, Domain)>,
    /// Level at which each variable was last saved (`UNSAVED` if none).
    saved_at: Vec<u32>,
    /// Trail length at the opening of each decision level.
    marks: Vec<usize>,
    /// Per-propagator entailment flags: once a propagator reports
    /// [`crate::PropStatus::Entailed`], it cannot prune (or conflict) anywhere
    /// below the current node, so the fixpoint loop skips it until the mark is
    /// undone. Marks set above the root are trailed (`entailed_trail` /
    /// `entailed_marks`) and cleared by [`Store::backtrack`]; root-level marks
    /// are permanent for the search, like root domain mutations.
    entailed: Vec<bool>,
    /// Propagators marked entailed since each open level, grouped by level.
    entailed_trail: Vec<u32>,
    /// `entailed_trail` length at the opening of each decision level.
    entailed_marks: Vec<usize>,
}

// Mutations mirror the `Domain` API: `Err(())` means the domain was wiped
// out, which callers translate into a propagation `Conflict`.
#[allow(clippy::result_unit_err)]
impl Store {
    /// Empty store; populate with [`Store::reset_from`].
    pub fn new() -> Self {
        Store::default()
    }

    /// Build a store owning `domains`, with an empty trail at the root level.
    pub fn from_domains(domains: Vec<Domain>) -> Self {
        let n = domains.len();
        Store {
            domains,
            trail: Vec::new(),
            saved_at: vec![UNSAVED; n],
            marks: Vec::new(),
            entailed: Vec::new(),
            entailed_trail: Vec::new(),
            entailed_marks: Vec::new(),
        }
    }

    /// Take the domains back out (used by [`crate::Model::propagate_root`]).
    pub fn into_domains(self) -> Vec<Domain> {
        self.domains
    }

    /// Reinitialize from root domains, keeping the store's allocations (the
    /// domain vector, trail and bookkeeping) for reuse across searches.
    pub fn reset_from(&mut self, root: &[Domain]) {
        self.trail.clear();
        self.marks.clear();
        self.saved_at.clear();
        self.saved_at.resize(root.len(), UNSAVED);
        self.entailed.clear();
        self.entailed_trail.clear();
        self.entailed_marks.clear();
        let shared = self.domains.len().min(root.len());
        self.domains.truncate(root.len());
        for (d, r) in self.domains.iter_mut().zip(&root[..shared]) {
            d.clone_from(r);
        }
        for r in &root[shared..] {
            self.domains.push(r.clone());
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// All current domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Current domain of the variable at `idx`.
    #[inline]
    pub fn domain(&self, idx: usize) -> &Domain {
        &self.domains[idx]
    }

    /// Current decision level (0 = root; mutations at the root are not
    /// trailed and cannot be undone).
    pub fn level(&self) -> usize {
        self.marks.len()
    }

    /// Number of trail entries currently saved (diagnostics/tests).
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Open a new decision level.
    pub fn push_choice(&mut self) {
        self.marks.push(self.trail.len());
        self.entailed_marks.push(self.entailed_trail.len());
    }

    /// Undo every change made since the matching [`Store::push_choice`].
    ///
    /// Panics if no decision level is open.
    pub fn backtrack(&mut self) {
        let mark = self.marks.pop().expect("backtrack without push_choice");
        // Restore in reverse push order so that, if a variable was saved more
        // than once within the level, the oldest (pre-level) domain wins.
        for (var, old) in self.trail.drain(mark..).rev() {
            self.saved_at[var as usize] = UNSAVED;
            self.domains[var as usize] = old;
        }
        let emark = self.entailed_marks.pop().expect("entailed mark underflow");
        for p in self.entailed_trail.drain(emark..) {
            self.entailed[p as usize] = false;
        }
    }

    /// Grow the entailment table to cover `num_props` propagators (called by
    /// the propagation loop before draining the queue).
    pub(crate) fn ensure_entailed_capacity(&mut self, num_props: usize) {
        if self.entailed.len() < num_props {
            self.entailed.resize(num_props, false);
        }
    }

    /// True if propagator `p` reported entailment at this node or an
    /// ancestor: it cannot prune or conflict until the marking level is
    /// backtracked, so propagation skips it.
    #[inline]
    pub(crate) fn is_entailed(&self, p: usize) -> bool {
        self.entailed[p]
    }

    /// Record that propagator `p` is entailed on the current subtree. Undone
    /// by the [`Store::backtrack`] matching the currently open level;
    /// permanent when set at the root.
    pub(crate) fn mark_entailed(&mut self, p: usize) {
        if !self.entailed[p] {
            self.entailed[p] = true;
            if !self.marks.is_empty() {
                self.entailed_trail.push(p as u32);
            }
        }
    }

    /// Trail the current domain of `idx` if this is its first mutation at the
    /// current level. No-op at the root level.
    #[inline]
    fn save(&mut self, idx: usize) {
        let level = self.marks.len() as u32;
        if level == 0 {
            return;
        }
        if self.saved_at[idx] != level {
            self.saved_at[idx] = level;
            self.trail.push((idx as u32, self.domains[idx].clone()));
        }
    }

    /// Remove every value `< bound` from the domain of `idx`.
    pub fn remove_below(&mut self, idx: usize, bound: i64) -> Result<bool, ()> {
        if bound <= self.domains[idx].min() {
            return Ok(false);
        }
        self.save(idx);
        self.domains[idx].remove_below(bound)
    }

    /// Remove every value `> bound` from the domain of `idx`.
    pub fn remove_above(&mut self, idx: usize, bound: i64) -> Result<bool, ()> {
        if bound >= self.domains[idx].max() {
            return Ok(false);
        }
        self.save(idx);
        self.domains[idx].remove_above(bound)
    }

    /// Remove the single value `v` from the domain of `idx`.
    pub fn remove_value(&mut self, idx: usize, v: i64) -> Result<bool, ()> {
        if !self.domains[idx].contains(v) {
            return Ok(false);
        }
        if self.domains[idx].is_fixed() {
            return Err(());
        }
        self.save(idx);
        self.domains[idx].remove_value(v)
    }

    /// Reduce the domain of `idx` to the single value `v`.
    pub fn assign(&mut self, idx: usize, v: i64) -> Result<bool, ()> {
        if !self.domains[idx].contains(v) {
            return Err(());
        }
        if self.domains[idx].is_fixed() {
            return Ok(false);
        }
        self.save(idx);
        self.domains[idx].assign(v)
    }

    /// Intersect the domain of `idx` with `[lo, hi]`.
    pub fn intersect_bounds(&mut self, idx: usize, lo: i64, hi: i64) -> Result<bool, ()> {
        let d = &self.domains[idx];
        if lo <= d.min() && hi >= d.max() {
            return Ok(false);
        }
        self.save(idx);
        self.domains[idx].intersect_bounds(lo, hi)
    }
}

/// Reusable propagation queue: the dedup'd set of propagators waiting to run
/// to fixpoint, plus the changed-variable scratch used to schedule their
/// dependents.
///
/// One `PropQueue` lives for the whole search (inside
/// [`crate::SearchSpace`]); [`crate::Model`] drains it to a fixpoint per
/// propagation and leaves it empty, so no per-node allocation happens. The
/// scheduling discipline is FIFO: a propagator woken by a domain change
/// waits for everything already pending, which stops two tightly coupled
/// propagators from ping-ponging at the head of the queue while the rest of
/// the model's pruning (which could fail the node outright) starves —
/// measured on the ACloud balance COP this roughly halves propagator runs
/// per search node versus LIFO.
#[derive(Debug, Clone, Default)]
pub struct PropQueue {
    pending: std::collections::VecDeque<usize>,
    queued: Vec<bool>,
    pub(crate) changed: Vec<VarId>,
}

impl PropQueue {
    /// Fresh empty queue.
    pub fn new() -> Self {
        PropQueue::default()
    }

    /// Grow the dedup table to cover `num_props` propagators.
    pub(crate) fn ensure_capacity(&mut self, num_props: usize) {
        if self.queued.len() < num_props {
            self.queued.resize(num_props, false);
        }
    }

    /// Add a propagator to the pending set unless it is already queued.
    #[inline]
    pub(crate) fn enqueue(&mut self, p: usize) {
        if !self.queued[p] {
            self.queued[p] = true;
            self.pending.push_back(p);
        }
    }

    /// Pop the oldest pending propagator (FIFO).
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<usize> {
        let p = self.pending.pop_front()?;
        self.queued[p] = false;
        Some(p)
    }

    /// Drop all pending work (used after a conflict aborts a fixpoint), so
    /// the queue is clean for the next propagation.
    pub(crate) fn clear(&mut self) {
        while let Some(p) = self.pending.pop_front() {
            self.queued[p] = false;
        }
        self.changed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_over(bounds: &[(i64, i64)]) -> Store {
        Store::from_domains(bounds.iter().map(|&(l, h)| Domain::new(l, h)).collect())
    }

    #[test]
    fn root_mutations_are_not_trailed() {
        let mut s = store_over(&[(0, 9)]);
        assert_eq!(s.level(), 0);
        s.remove_below(0, 3).unwrap();
        assert_eq!(s.trail_len(), 0);
        assert_eq!(s.domain(0).min(), 3);
    }

    #[test]
    fn backtrack_restores_exactly_one_level() {
        let mut s = store_over(&[(0, 9), (0, 9)]);
        s.remove_below(0, 2).unwrap(); // root, permanent
        s.push_choice();
        s.assign(0, 5).unwrap();
        s.remove_above(1, 4).unwrap();
        s.push_choice();
        s.assign(1, 0).unwrap();
        assert_eq!(s.domain(0).fixed_value(), Some(5));
        assert_eq!(s.domain(1).fixed_value(), Some(0));
        s.backtrack();
        assert_eq!(s.domain(0).fixed_value(), Some(5), "outer level untouched");
        assert_eq!(s.domain(1).max(), 4);
        s.backtrack();
        assert_eq!(s.domain(0).min(), 2, "root mutation survives");
        assert_eq!(s.domain(0).max(), 9);
        assert_eq!(s.domain(1).max(), 9);
        assert_eq!(s.trail_len(), 0);
    }

    #[test]
    fn repeated_mutations_in_a_level_save_once() {
        let mut s = store_over(&[(0, 100)]);
        s.push_choice();
        s.remove_below(0, 10).unwrap();
        s.remove_below(0, 20).unwrap();
        s.remove_above(0, 50).unwrap();
        assert_eq!(s.trail_len(), 1);
        s.backtrack();
        assert_eq!((s.domain(0).min(), s.domain(0).max()), (0, 100));
    }

    #[test]
    fn noop_mutations_leave_no_trail() {
        let mut s = store_over(&[(0, 9)]);
        s.push_choice();
        assert_eq!(s.remove_below(0, 0), Ok(false));
        assert_eq!(s.remove_above(0, 9), Ok(false));
        assert_eq!(s.remove_value(0, 42), Ok(false));
        assert_eq!(s.intersect_bounds(0, -5, 20), Ok(false));
        assert_eq!(s.trail_len(), 0);
    }

    #[test]
    fn failed_mutation_is_still_restored() {
        let mut s = store_over(&[(0, 9)]);
        s.push_choice();
        // intersect saves before discovering the wipe-out; backtrack must
        // still restore the original domain
        assert!(s.intersect_bounds(0, 20, 30).is_err());
        s.backtrack();
        assert_eq!((s.domain(0).min(), s.domain(0).max()), (0, 9));
    }

    #[test]
    fn reset_from_clears_state_and_reuses_allocations() {
        let mut s = store_over(&[(0, 9), (0, 9)]);
        s.push_choice();
        s.assign(0, 1).unwrap();
        let roots = vec![Domain::new(-3, 3)];
        s.reset_from(&roots);
        assert_eq!(s.num_vars(), 1);
        assert_eq!(s.level(), 0);
        assert_eq!(s.trail_len(), 0);
        assert_eq!((s.domain(0).min(), s.domain(0).max()), (-3, 3));
    }

    #[test]
    fn relevel_after_backtrack_saves_again() {
        // A var saved at level 1, backtracked, then saved at a fresh level 1
        // must restore correctly both times.
        let mut s = store_over(&[(0, 9)]);
        s.push_choice();
        s.assign(0, 3).unwrap();
        s.backtrack();
        s.push_choice();
        s.assign(0, 7).unwrap();
        assert_eq!(s.domain(0).fixed_value(), Some(7));
        s.backtrack();
        assert_eq!((s.domain(0).min(), s.domain(0).max()), (0, 9));
    }

    #[test]
    fn prop_queue_dedups_and_clears() {
        let mut q = PropQueue::new();
        q.ensure_capacity(4);
        q.enqueue(1);
        q.enqueue(3);
        q.enqueue(1); // dedup: still queued
        assert_eq!(q.pop(), Some(1));
        q.enqueue(1);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        q.enqueue(0);
        q.enqueue(2);
        q.clear();
        assert_eq!(q.pop(), None);
        // flags were reset: re-enqueueing works
        q.enqueue(2);
        assert_eq!(q.pop(), Some(2));
    }
}
