//! The propagator interface.
//!
//! A propagator observes a set of variables and prunes values that cannot
//! appear in any solution of its constraint. Propagators are scheduled on a
//! fixpoint queue by the [`crate::Model`]: whenever a variable's domain
//! changes, every propagator subscribed to that variable is re-run until no
//! further pruning happens.
//!
//! Propagators never touch domains directly: all mutation goes through a
//! [`PropagatorContext`], a view over the search's trail-based
//! [`Store`] — so every pruning is automatically recorded on the trail (and
//! undone on backtrack) and the engine learns which variables changed in
//! order to schedule dependent propagators.

use crate::domain::Domain;
use crate::model::VarId;
use crate::store::Store;

/// Result of a successful propagation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropStatus {
    /// The propagator may still prune more in the future and must stay
    /// subscribed.
    Active,
    /// The constraint is now entailed (always satisfied regardless of how the
    /// remaining variables are fixed); the propagator never needs to run
    /// again on this subtree.
    Entailed,
}

/// Signals that a propagator detected an inconsistency (some domain became
/// empty or the constraint cannot be satisfied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict;

/// View over the variable domains handed to a propagator.
///
/// All mutation goes through this context so the engine can track which
/// variables changed and schedule dependent propagators, and so the
/// underlying [`Store`] can trail the previous domains for backtracking.
pub struct PropagatorContext<'a> {
    store: &'a mut Store,
    changed: &'a mut Vec<VarId>,
    prunings: &'a mut u64,
}

impl<'a> PropagatorContext<'a> {
    pub(crate) fn new(
        store: &'a mut Store,
        changed: &'a mut Vec<VarId>,
        prunings: &'a mut u64,
    ) -> Self {
        PropagatorContext {
            store,
            changed,
            prunings,
        }
    }

    /// Immutable view of a variable's domain.
    #[inline]
    pub fn domain(&self, v: VarId) -> &Domain {
        self.store.domain(v.index())
    }

    /// Current lower bound of `v`.
    #[inline]
    pub fn min(&self, v: VarId) -> i64 {
        self.store.domain(v.index()).min()
    }

    /// Current upper bound of `v`.
    #[inline]
    pub fn max(&self, v: VarId) -> i64 {
        self.store.domain(v.index()).max()
    }

    /// True if `v` is fixed to a single value.
    #[inline]
    pub fn is_fixed(&self, v: VarId) -> bool {
        self.store.domain(v.index()).is_fixed()
    }

    /// The value of `v` if fixed.
    #[inline]
    pub fn fixed_value(&self, v: VarId) -> Option<i64> {
        self.store.domain(v.index()).fixed_value()
    }

    fn record(&mut self, v: VarId, changed: Result<bool, ()>) -> Result<bool, Conflict> {
        match changed {
            Ok(true) => {
                *self.prunings += 1;
                self.changed.push(v);
                Ok(true)
            }
            Ok(false) => Ok(false),
            Err(()) => Err(Conflict),
        }
    }

    /// Enforce `v >= bound`.
    pub fn set_min(&mut self, v: VarId, bound: i64) -> Result<bool, Conflict> {
        let r = self.store.remove_below(v.index(), bound);
        self.record(v, r)
    }

    /// Enforce `v <= bound`.
    pub fn set_max(&mut self, v: VarId, bound: i64) -> Result<bool, Conflict> {
        let r = self.store.remove_above(v.index(), bound);
        self.record(v, r)
    }

    /// Enforce `v == value`.
    pub fn assign(&mut self, v: VarId, value: i64) -> Result<bool, Conflict> {
        let r = self.store.assign(v.index(), value);
        self.record(v, r)
    }

    /// Enforce `v != value`.
    pub fn remove_value(&mut self, v: VarId, value: i64) -> Result<bool, Conflict> {
        let r = self.store.remove_value(v.index(), value);
        self.record(v, r)
    }

    /// Enforce `lo <= v <= hi`.
    pub fn intersect(&mut self, v: VarId, lo: i64, hi: i64) -> Result<bool, Conflict> {
        let r = self.store.intersect_bounds(v.index(), lo, hi);
        self.record(v, r)
    }
}

/// Structural view of a propagator's linear form, when it has one.
///
/// The dual-bound engines of [`crate::bounds`] inspect the model's
/// constraints to recognize the objective-defining equality and the
/// exactly-one packing groups they relax; propagators are stored as trait
/// objects, so this view is the introspection hook that exposes the linear
/// shape without downcasting. Propagators with no linear form simply return
/// `None` from [`Propagator::linear_view`].
#[derive(Debug, Clone, Copy)]
pub enum LinearView<'a> {
    /// `Σ coeff_i · x_i <= bound`
    Le {
        /// The `(coefficient, variable)` terms.
        terms: &'a [(i64, VarId)],
        /// The right-hand side.
        bound: i64,
    },
    /// `Σ coeff_i · x_i == bound`
    Eq {
        /// The `(coefficient, variable)` terms.
        terms: &'a [(i64, VarId)],
        /// The right-hand side.
        bound: i64,
    },
}

/// A constraint propagator.
pub trait Propagator: Send + Sync {
    /// Human-readable name used in debug output.
    fn name(&self) -> &'static str;

    /// Variables whose domain changes should wake this propagator.
    fn dependencies(&self) -> Vec<VarId>;

    /// Prune domains. Returns the propagator status or a conflict.
    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict>;

    /// True if a single [`Propagator::prune`] call always reaches the
    /// propagator's own fixpoint: running it again immediately (with no other
    /// propagator in between) can never prune further. The engine then skips
    /// the self-wakeup a propagator's own prunings would otherwise cause —
    /// on linear-heavy models roughly half of all propagator runs are such
    /// no-op self-reruns. Only return `true` when re-running straight after
    /// a pruning pass is provably a no-op; the default is conservative.
    fn idempotent(&self) -> bool {
        false
    }

    /// Check the constraint on a complete assignment (all dependency
    /// variables fixed). Used by tests and by the final solution validator.
    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool;

    /// The propagator's linear structure, if it has one (see [`LinearView`]).
    /// The conservative default — no linear form — only costs the dual-bound
    /// engines a missed strengthening opportunity, never soundness.
    fn linear_view(&self) -> Option<LinearView<'_>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_tracks_changes_and_conflicts() {
        let mut store = Store::from_domains(vec![Domain::new(0, 10), Domain::new(0, 10)]);
        let mut changed = Vec::new();
        let mut prunings = 0u64;
        let mut ctx = PropagatorContext::new(&mut store, &mut changed, &mut prunings);
        let a = VarId::from_index(0);
        let b = VarId::from_index(1);
        assert_eq!(ctx.set_min(a, 5), Ok(true));
        assert_eq!(ctx.set_min(a, 3), Ok(false));
        assert_eq!(ctx.assign(b, 2), Ok(true));
        assert!(ctx.is_fixed(b));
        assert_eq!(ctx.fixed_value(b), Some(2));
        assert_eq!(ctx.set_min(b, 7), Err(Conflict));
        assert_eq!(changed, vec![a, b]);
        assert_eq!(prunings, 2);
    }

    #[test]
    fn context_remove_value_and_intersect() {
        let mut store = Store::from_domains(vec![Domain::new(0, 5)]);
        let mut changed = Vec::new();
        let mut prunings = 0u64;
        let mut ctx = PropagatorContext::new(&mut store, &mut changed, &mut prunings);
        let v = VarId::from_index(0);
        assert_eq!(ctx.remove_value(v, 3), Ok(true));
        assert_eq!(ctx.intersect(v, 2, 4), Ok(true));
        assert_eq!(ctx.min(v), 2);
        assert_eq!(ctx.max(v), 4);
        assert!(!ctx.domain(v).contains(3));
    }

    // ----- PropQueue scheduling invariants --------------------------------
    //
    // The queue is the fixpoint scheduler every propagator run goes through;
    // these tests pin the three properties `Model::propagate_in` relies on.

    #[test]
    fn prop_queue_pops_in_fifo_order() {
        let mut q = crate::store::PropQueue::new();
        q.ensure_capacity(8);
        for p in [5, 2, 7, 0, 3] {
            q.enqueue(p);
        }
        let drained: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![5, 2, 7, 0, 3], "strict arrival order");
    }

    #[test]
    fn prop_queue_dedups_while_pending_but_not_after_pop() {
        let mut q = crate::store::PropQueue::new();
        q.ensure_capacity(4);
        q.enqueue(1);
        q.enqueue(2);
        // Re-enqueueing a pending propagator must be a no-op...
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.pop(), Some(1));
        // ...but once popped it is runnable again and goes to the *back*
        // (FIFO: it must wait for everything already pending).
        q.enqueue(1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn prop_queue_clear_mid_drain_leaves_no_stale_entries() {
        let mut q = crate::store::PropQueue::new();
        q.ensure_capacity(6);
        for p in 0..6 {
            q.enqueue(p);
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        // A conflict aborts the fixpoint here; the queue must come back
        // empty AND with every queued-flag reset, or the next propagation
        // would silently skip propagators 2..6.
        q.clear();
        assert_eq!(q.pop(), None);
        for p in 0..6 {
            q.enqueue(p);
        }
        let drained: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn prop_queue_is_clean_across_search_space_reuse() {
        use crate::{Model, SearchConfig, SearchSpace};
        // First search ends in heavy conflict traffic (infeasible model):
        // every propagation aborts through the queue's clear path.
        let mut space = SearchSpace::new();
        let mut infeasible = Model::new();
        let x = infeasible.new_var(0, 3);
        let y = infeasible.new_var(0, 3);
        infeasible.linear_eq(&[(1, x), (1, y)], 2);
        infeasible.linear_ge(&[(1, x), (1, y)], 9);
        let out = infeasible.satisfy_in(&SearchConfig::default(), &mut space);
        assert!(out.solutions.is_empty());
        assert_eq!(space.queue.pop(), None, "queue drained after conflicts");

        // Reusing the same space on a different model must reach the exact
        // fixpoint a fresh space reaches — any stale pending entry or
        // queued-flag from the first search would change the counters.
        let mut m = Model::new();
        let a = m.new_var(0, 9);
        let b = m.new_var(0, 9);
        m.linear_eq(&[(1, a), (1, b)], 9);
        let obj = m.linear_var(&[(3, a), (1, b)], 0);
        let reused = m.minimize_in(obj, &SearchConfig::default(), &mut space);
        let fresh = m.minimize(obj, &SearchConfig::default());
        assert_eq!(reused.best_objective, fresh.best_objective);
        assert_eq!(reused.stats.propagations, fresh.stats.propagations);
        assert_eq!(reused.stats.prunings, fresh.stats.prunings);
        assert_eq!(space.queue.pop(), None, "queue empty after reuse");
    }

    #[test]
    fn context_prunings_are_trailed() {
        let mut store = Store::from_domains(vec![Domain::new(0, 10)]);
        store.push_choice();
        let mut changed = Vec::new();
        let mut prunings = 0u64;
        {
            let mut ctx = PropagatorContext::new(&mut store, &mut changed, &mut prunings);
            ctx.set_min(VarId::from_index(0), 4).unwrap();
        }
        assert_eq!(store.domain(0).min(), 4);
        store.backtrack();
        assert_eq!(store.domain(0).min(), 0);
    }
}
