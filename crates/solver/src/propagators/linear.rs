//! Linear arithmetic propagators with bounds-consistency.

use crate::model::VarId;
use crate::propagator::{Conflict, LinearView, PropStatus, Propagator, PropagatorContext};

fn term_min(coeff: i64, ctx: &PropagatorContext<'_>, v: VarId) -> i64 {
    if coeff >= 0 {
        coeff * ctx.min(v)
    } else {
        coeff * ctx.max(v)
    }
}

fn term_max(coeff: i64, ctx: &PropagatorContext<'_>, v: VarId) -> i64 {
    if coeff >= 0 {
        coeff * ctx.max(v)
    } else {
        coeff * ctx.min(v)
    }
}

/// `Σ coeff_i · x_i <= bound`
#[derive(Debug, Clone)]
pub struct LinearLe {
    pub terms: Vec<(i64, VarId)>,
    pub bound: i64,
}

impl LinearLe {
    pub fn new(terms: Vec<(i64, VarId)>, bound: i64) -> Self {
        LinearLe { terms, bound }
    }
}

impl Propagator for LinearLe {
    fn name(&self) -> &'static str {
        "linear_le"
    }

    fn dependencies(&self) -> Vec<VarId> {
        self.terms.iter().map(|&(_, v)| v).collect()
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        // Sum of minimal contributions; if it already exceeds the bound the
        // constraint is violated.
        let total_min: i64 = self.terms.iter().map(|&(c, v)| term_min(c, ctx, v)).sum();
        if total_min > self.bound {
            return Err(Conflict);
        }
        let total_max: i64 = self.terms.iter().map(|&(c, v)| term_max(c, ctx, v)).sum();
        if total_max <= self.bound {
            return Ok(PropStatus::Entailed);
        }
        // For each term, the slack left by the other terms bounds its value.
        for &(c, v) in &self.terms {
            if c == 0 {
                continue;
            }
            let rest_min = total_min - term_min(c, ctx, v);
            let slack = self.bound - rest_min;
            // Unit coefficients (the overwhelmingly common case in the
            // models the Colog lowering produces) skip the division.
            if c == 1 {
                ctx.set_max(v, slack)?;
            } else if c == -1 {
                ctx.set_min(v, -slack)?;
            } else if c > 0 {
                // c*x <= slack  =>  x <= slack / c
                ctx.set_max(v, slack.div_euclid(c))?;
            } else {
                // c*x <= slack with c < 0  =>  x >= slack / c
                ctx.set_min(v, ceil_div(slack, c))?;
            }
        }
        Ok(PropStatus::Active)
    }

    // A pruning pass only moves the bound that does NOT feed `term_min`
    // (the max of positive-coefficient vars, the min of negative ones), so
    // every slack is unchanged by the pass itself and a re-run replays the
    // exact same bounds.
    fn idempotent(&self) -> bool {
        true
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        let s: i64 = self.terms.iter().map(|&(c, v)| c * values(v)).sum();
        s <= self.bound
    }

    fn linear_view(&self) -> Option<LinearView<'_>> {
        Some(LinearView::Le {
            terms: &self.terms,
            bound: self.bound,
        })
    }
}

/// Ceiling division that is correct for negative divisors.
fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q
    } else if a % b != 0 {
        q + 1
    } else {
        q
    }
}

/// `Σ coeff_i · x_i == bound`
#[derive(Debug, Clone)]
pub struct LinearEq {
    pub terms: Vec<(i64, VarId)>,
    pub bound: i64,
}

impl LinearEq {
    pub fn new(terms: Vec<(i64, VarId)>, bound: i64) -> Self {
        LinearEq { terms, bound }
    }
}

impl Propagator for LinearEq {
    fn name(&self) -> &'static str {
        "linear_eq"
    }

    fn dependencies(&self) -> Vec<VarId> {
        self.terms.iter().map(|&(_, v)| v).collect()
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        // Iterate to this propagator's own fixpoint: a pass prunes with the
        // totals computed at its start, and any pruning it makes tightens
        // those totals, so the loop repeats until a pass changes nothing.
        // (That inner loop is what makes `idempotent` sound — the queue never
        // needs to wake the propagator for its own prunings.)
        loop {
            let total_min: i64 = self.terms.iter().map(|&(c, v)| term_min(c, ctx, v)).sum();
            let total_max: i64 = self.terms.iter().map(|&(c, v)| term_max(c, ctx, v)).sum();
            if total_min > self.bound || total_max < self.bound {
                return Err(Conflict);
            }
            if total_min == self.bound && total_max == self.bound {
                return Ok(PropStatus::Entailed);
            }
            let mut changed = false;
            for &(c, v) in &self.terms {
                if c == 0 {
                    continue;
                }
                let rest_min = total_min - term_min(c, ctx, v);
                let rest_max = total_max - term_max(c, ctx, v);
                // c*x must lie within [bound - rest_max, bound - rest_min]
                let lo_c = self.bound - rest_max;
                let hi_c = self.bound - rest_min;
                // Unit coefficients dominate in lowered models; skip the
                // divisions for them.
                let (lo, hi) = if c == 1 {
                    (lo_c, hi_c)
                } else if c == -1 {
                    (-hi_c, -lo_c)
                } else if c > 0 {
                    (ceil_div(lo_c, c), hi_c.div_euclid(c))
                } else {
                    (ceil_div(hi_c, c), lo_c.div_euclid(c))
                };
                changed |= ctx.intersect(v, lo, hi)?;
            }
            if !changed {
                return Ok(PropStatus::Active);
            }
        }
    }

    fn idempotent(&self) -> bool {
        true
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        let s: i64 = self.terms.iter().map(|&(c, v)| c * values(v)).sum();
        s == self.bound
    }

    fn linear_view(&self) -> Option<LinearView<'_>> {
        Some(LinearView::Eq {
            terms: &self.terms,
            bound: self.bound,
        })
    }
}

/// `Σ coeff_i · x_i != bound`
#[derive(Debug, Clone)]
pub struct LinearNe {
    pub terms: Vec<(i64, VarId)>,
    pub bound: i64,
}

impl LinearNe {
    pub fn new(terms: Vec<(i64, VarId)>, bound: i64) -> Self {
        LinearNe { terms, bound }
    }
}

impl Propagator for LinearNe {
    fn name(&self) -> &'static str {
        "linear_ne"
    }

    fn dependencies(&self) -> Vec<VarId> {
        self.terms.iter().map(|&(_, v)| v).collect()
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        // Only propagates when all variables but one are fixed.
        let mut unfixed: Option<(i64, VarId)> = None;
        let mut fixed_sum = 0i64;
        for &(c, v) in &self.terms {
            match ctx.fixed_value(v) {
                Some(val) => fixed_sum += c * val,
                None => {
                    if unfixed.is_some() {
                        return Ok(PropStatus::Active);
                    }
                    unfixed = Some((c, v));
                }
            }
        }
        match unfixed {
            None => {
                if fixed_sum == self.bound {
                    Err(Conflict)
                } else {
                    Ok(PropStatus::Entailed)
                }
            }
            Some((c, v)) => {
                let remaining = self.bound - fixed_sum;
                if c != 0 && remaining % c == 0 {
                    ctx.remove_value(v, remaining / c)?;
                }
                Ok(PropStatus::Entailed)
            }
        }
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        let s: i64 = self.terms.iter().map(|&(c, v)| c * values(v)).sum();
        s != self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, SearchConfig};

    #[test]
    fn ceil_div_matches_f64() {
        for a in -20..=20 {
            for b in [-7i64, -3, -1, 1, 2, 5] {
                let expected = (a as f64 / b as f64).ceil() as i64;
                assert_eq!(ceil_div(a, b), expected, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn linear_le_prunes_upper_bounds() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let y = m.new_var(0, 10);
        m.linear_le(&[(2, x), (3, y)], 6);
        assert!(m.propagate_root().is_ok());
        assert!(m.domain(x).max() <= 3);
        assert!(m.domain(y).max() <= 2);
    }

    #[test]
    fn linear_le_negative_coefficients() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let y = m.new_var(0, 10);
        // x - y <= -4  =>  y >= x + 4 >= 4
        m.linear_le(&[(1, x), (-1, y)], -4);
        assert!(m.propagate_root().is_ok());
        assert!(m.domain(y).min() >= 4);
        assert!(m.domain(x).max() <= 6);
    }

    #[test]
    fn linear_eq_fixes_last_variable() {
        let mut m = Model::new();
        let x = m.new_var(3, 3);
        let y = m.new_var(0, 10);
        m.linear_eq(&[(1, x), (1, y)], 8);
        assert!(m.propagate_root().is_ok());
        assert_eq!(m.domain(y).fixed_value(), Some(5));
    }

    #[test]
    fn linear_eq_detects_conflict() {
        let mut m = Model::new();
        let x = m.new_var(0, 2);
        let y = m.new_var(0, 2);
        m.linear_eq(&[(1, x), (1, y)], 10);
        assert!(m.propagate_root().is_err());
    }

    #[test]
    fn linear_ne_removes_value() {
        let mut m = Model::new();
        let x = m.new_var(4, 4);
        let y = m.new_var(0, 10);
        m.linear_ne(&[(1, x), (1, y)], 7);
        assert!(m.propagate_root().is_ok());
        assert!(!m.domain(y).contains(3));
        assert!(m.domain(y).contains(4));
    }

    #[test]
    fn linear_ne_conflict_when_all_fixed_equal() {
        let mut m = Model::new();
        let x = m.new_var(2, 2);
        let y = m.new_var(5, 5);
        m.linear_ne(&[(1, x), (1, y)], 7);
        assert!(m.propagate_root().is_err());
    }

    #[test]
    fn solve_small_knapsack_like_problem() {
        // maximize 3a + 4b subject to 2a + 3b <= 12, a,b in 0..5
        let mut m = Model::new();
        let a = m.new_var(0, 5);
        let b = m.new_var(0, 5);
        m.linear_le(&[(2, a), (3, b)], 12);
        let obj = m.linear_var(&[(3, a), (4, b)], 0);
        let out = m.maximize(obj, &SearchConfig::default());
        let best = out.best.unwrap();
        // best is a=3,b=2 (17) or a=5? 2*5=10 <=12 leaves b=0 -> 15; a=3,b=2 -> 6+6=12 -> 17
        assert_eq!(best.value(obj), 17);
        assert!(LinearLe::new(vec![(2, a), (3, b)], 12).check(&|v| best.value(v)));
    }
}
