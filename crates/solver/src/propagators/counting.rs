//! Counting propagators.
//!
//! [`NValues`] constrains a variable `n` to equal the number of distinct
//! values taken by an array of variables. It backs Colog's `UNIQUE<...>`
//! aggregate, e.g. the wireless interface constraint
//! `uniqueChannel(X,UNIQUE<C>) ... Count <= K` (rule `d3`/`c3` in Appendix
//! A.2 of the paper).

use std::collections::BTreeSet;

use crate::model::VarId;
use crate::propagator::{Conflict, PropStatus, Propagator, PropagatorContext};

/// `n == |{ x_1, ..., x_k }|` (number of distinct values).
#[derive(Debug, Clone)]
pub struct NValues {
    pub n: VarId,
    pub xs: Vec<VarId>,
}

impl NValues {
    pub fn new(n: VarId, xs: Vec<VarId>) -> Self {
        assert!(!xs.is_empty());
        NValues { n, xs }
    }
}

impl Propagator for NValues {
    fn name(&self) -> &'static str {
        "n_values"
    }

    fn dependencies(&self) -> Vec<VarId> {
        let mut v = self.xs.clone();
        v.push(self.n);
        v
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        // Lower bound: number of distinct values among the already-fixed
        // variables. Upper bound: distinct fixed values plus the number of
        // unfixed variables (each could introduce a fresh value), capped by
        // the total number of variables.
        let mut fixed_values: BTreeSet<i64> = BTreeSet::new();
        let mut unfixed = 0usize;
        for &x in &self.xs {
            match ctx.fixed_value(x) {
                Some(v) => {
                    fixed_values.insert(v);
                }
                None => unfixed += 1,
            }
        }
        let lower = fixed_values.len() as i64;
        let upper = (fixed_values.len() + unfixed).min(self.xs.len()) as i64;
        ctx.intersect(self.n, 1.max(lower.min(1).max(lower)), upper)?;
        ctx.set_min(self.n, lower.max(1))?;
        ctx.set_max(self.n, upper)?;

        // If n is forced to its lower bound and every value is already
        // represented, the unfixed variables may only take existing values.
        if unfixed > 0 && ctx.max(self.n) == lower && lower > 0 {
            for &x in &self.xs {
                if ctx.fixed_value(x).is_none() {
                    // Restrict x to the interval hull of the fixed values;
                    // remove any value in its domain not among fixed_values.
                    let to_remove: Vec<i64> = ctx
                        .domain(x)
                        .iter()
                        .filter(|v| !fixed_values.contains(v))
                        .collect();
                    for v in to_remove {
                        ctx.remove_value(x, v)?;
                    }
                }
            }
        }
        if unfixed == 0 {
            ctx.assign(self.n, lower)?;
            return Ok(PropStatus::Entailed);
        }
        Ok(PropStatus::Active)
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        let distinct: BTreeSet<i64> = self.xs.iter().map(|&x| values(x)).collect();
        values(self.n) == distinct.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, SearchConfig};

    #[test]
    fn nvalues_all_fixed() {
        let mut m = Model::new();
        let a = m.new_var(2, 2);
        let b = m.new_var(2, 2);
        let c = m.new_var(5, 5);
        let n = m.new_var(0, 10);
        m.post(NValues::new(n, vec![a, b, c]));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(n).fixed_value(), Some(2));
    }

    #[test]
    fn nvalues_bounds_partial() {
        let mut m = Model::new();
        let a = m.new_var(1, 1);
        let b = m.new_var(4, 4);
        let c = m.new_var(0, 9);
        let n = m.new_var(1, 10);
        m.post(NValues::new(n, vec![a, b, c]));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(n).min(), 2);
        assert_eq!(m.domain(n).max(), 3);
    }

    #[test]
    fn nvalues_upper_bound_forces_reuse() {
        // Two channels already used; limiting distinct count to 2 forces the
        // third link onto one of them (interface constraint in the paper).
        let mut m = Model::new();
        let a = m.new_var(1, 1);
        let b = m.new_var(4, 4);
        let c = m.new_var(0, 9);
        let n = m.new_var(1, 2);
        m.post(NValues::new(n, vec![a, b, c]));
        m.propagate_root().unwrap();
        let allowed: Vec<i64> = m.domain(c).iter().collect();
        assert_eq!(allowed, vec![1, 4]);
    }

    #[test]
    fn nvalues_search_respects_limit() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..4).map(|_| m.new_var(0, 3)).collect();
        let n = m.new_var(1, 2);
        m.post(NValues::new(n, xs.clone()));
        let out = m.solve_all(&SearchConfig {
            max_solutions: Some(500),
            ..Default::default()
        });
        assert!(!out.solutions.is_empty());
        for s in &out.solutions {
            let distinct: std::collections::BTreeSet<i64> =
                xs.iter().map(|&x| s.value(x)).collect();
            assert!(distinct.len() <= 2);
            assert_eq!(s.value(n) as usize, distinct.len());
        }
    }

    #[test]
    fn nvalues_check() {
        let mut m = Model::new();
        let a = m.new_var(0, 5);
        let b = m.new_var(0, 5);
        let n = m.new_var(0, 5);
        let p = NValues::new(n, vec![a, b]);
        let val = |want_a: i64, want_b: i64, want_n: i64| {
            move |v: VarId| {
                if v == a {
                    want_a
                } else if v == b {
                    want_b
                } else {
                    want_n
                }
            }
        };
        assert!(p.check(&val(3, 3, 1)));
        assert!(p.check(&val(3, 4, 2)));
        assert!(!p.check(&val(3, 4, 1)));
    }
}
