//! Non-linear arithmetic propagators: products, squares, absolute values,
//! and min/max over arrays of variables.

use crate::model::VarId;
use crate::propagator::{Conflict, PropStatus, Propagator, PropagatorContext};

/// `z == x * y` with bounds-consistency.
#[derive(Debug, Clone)]
pub struct MulVar {
    pub z: VarId,
    pub x: VarId,
    pub y: VarId,
}

impl MulVar {
    pub fn new(z: VarId, x: VarId, y: VarId) -> Self {
        MulVar { z, x, y }
    }
}

fn product_bounds(xl: i64, xu: i64, yl: i64, yu: i64) -> (i64, i64) {
    let candidates = [xl * yl, xl * yu, xu * yl, xu * yu];
    (
        *candidates.iter().min().unwrap(),
        *candidates.iter().max().unwrap(),
    )
}

impl Propagator for MulVar {
    fn name(&self) -> &'static str {
        "mul_var"
    }

    fn dependencies(&self) -> Vec<VarId> {
        vec![self.z, self.x, self.y]
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        // z bounds from x, y.
        let (zl, zu) = product_bounds(
            ctx.min(self.x),
            ctx.max(self.x),
            ctx.min(self.y),
            ctx.max(self.y),
        );
        ctx.intersect(self.z, zl, zu)?;
        // If one factor is fixed and non-zero, tighten the other by division.
        for (fixed, other) in [(self.x, self.y), (self.y, self.x)] {
            if let Some(f) = ctx.fixed_value(fixed) {
                if f != 0 {
                    let zmin = ctx.min(self.z);
                    let zmax = ctx.max(self.z);
                    let a = div_floor(zmin, f);
                    let b = div_ceil(zmin, f);
                    let c = div_floor(zmax, f);
                    let d = div_ceil(zmax, f);
                    let lo = a.min(b).min(c).min(d);
                    let hi = a.max(b).max(c).max(d);
                    ctx.intersect(other, lo, hi)?;
                } else {
                    // x == 0 => z == 0
                    ctx.assign(self.z, 0)?;
                }
            }
        }
        if ctx.is_fixed(self.x) && ctx.is_fixed(self.y) {
            let v = ctx.fixed_value(self.x).unwrap() * ctx.fixed_value(self.y).unwrap();
            ctx.assign(self.z, v)?;
            return Ok(PropStatus::Entailed);
        }
        Ok(PropStatus::Active)
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        values(self.z) == values(self.x) * values(self.y)
    }
}

fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// `z == x * x` with bounds-consistency. Used by the scaled-variance
/// lowering of Colog's `STDEV` aggregate.
#[derive(Debug, Clone)]
pub struct Square {
    pub z: VarId,
    pub x: VarId,
}

impl Square {
    pub fn new(z: VarId, x: VarId) -> Self {
        Square { z, x }
    }
}

impl Propagator for Square {
    fn name(&self) -> &'static str {
        "square"
    }

    fn dependencies(&self) -> Vec<VarId> {
        vec![self.z, self.x]
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        let xl = ctx.min(self.x);
        let xu = ctx.max(self.x);
        let zu = (xl * xl).max(xu * xu);
        let zl = if xl <= 0 && xu >= 0 {
            0
        } else {
            (xl * xl).min(xu * xu)
        };
        ctx.intersect(self.z, zl, zu)?;
        // From z's upper bound: |x| <= floor(sqrt(z_max)).
        let zmax = ctx.max(self.z);
        if zmax >= 0 {
            let root = isqrt(zmax);
            ctx.intersect(self.x, -root, root.max(ctx.max(self.x).min(root)))?;
            ctx.set_max(self.x, root)?;
            ctx.set_min(self.x, -root)?;
        } else {
            return Err(Conflict);
        }
        if ctx.is_fixed(self.x) {
            let v = ctx.fixed_value(self.x).unwrap();
            ctx.assign(self.z, v * v)?;
            return Ok(PropStatus::Entailed);
        }
        Ok(PropStatus::Active)
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        values(self.z) == values(self.x) * values(self.x)
    }
}

/// Integer square root (floor).
fn isqrt(v: i64) -> i64 {
    debug_assert!(v >= 0);
    let mut r = (v as f64).sqrt() as i64;
    while r * r > v {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= v {
        r += 1;
    }
    r
}

/// `z == |x|`, used by the `SUMABS` aggregate (Follow-the-Sun migration cost).
#[derive(Debug, Clone)]
pub struct AbsVal {
    pub z: VarId,
    pub x: VarId,
}

impl AbsVal {
    pub fn new(z: VarId, x: VarId) -> Self {
        AbsVal { z, x }
    }
}

impl Propagator for AbsVal {
    fn name(&self) -> &'static str {
        "abs"
    }

    fn dependencies(&self) -> Vec<VarId> {
        vec![self.z, self.x]
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        let xl = ctx.min(self.x);
        let xu = ctx.max(self.x);
        let zl = if xl <= 0 && xu >= 0 {
            0
        } else {
            xl.abs().min(xu.abs())
        };
        let zu = xl.abs().max(xu.abs());
        ctx.intersect(self.z, zl.max(0), zu)?;
        // x is confined to [-z_max, z_max].
        let zmax = ctx.max(self.z);
        ctx.intersect(self.x, -zmax, zmax)?;
        if ctx.is_fixed(self.x) {
            ctx.assign(self.z, ctx.fixed_value(self.x).unwrap().abs())?;
            return Ok(PropStatus::Entailed);
        }
        Ok(PropStatus::Active)
    }

    // One pass reaches the propagator's fixpoint: clipping `x` to
    // `[-z_max, z_max]` either leaves an endpoint whose magnitude is exactly
    // `z_max` (so the recomputed `z` upper bound cannot drop further) or does
    // not move it, and a clip never changes which side of zero `x` sits on
    // (so the recomputed `z` lower bound is unchanged too).
    fn idempotent(&self) -> bool {
        true
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        values(self.z) == values(self.x).abs()
    }
}

/// `z == max(xs)`.
#[derive(Debug, Clone)]
pub struct MaxOfArray {
    pub z: VarId,
    pub xs: Vec<VarId>,
}

impl MaxOfArray {
    pub fn new(z: VarId, xs: Vec<VarId>) -> Self {
        assert!(!xs.is_empty());
        MaxOfArray { z, xs }
    }
}

impl Propagator for MaxOfArray {
    fn name(&self) -> &'static str {
        "max_of_array"
    }

    fn dependencies(&self) -> Vec<VarId> {
        let mut v = self.xs.clone();
        v.push(self.z);
        v
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        let max_of_maxes = self.xs.iter().map(|&x| ctx.max(x)).max().unwrap();
        let max_of_mins = self.xs.iter().map(|&x| ctx.min(x)).max().unwrap();
        ctx.intersect(self.z, max_of_mins, max_of_maxes)?;
        let zmax = ctx.max(self.z);
        for &x in &self.xs {
            ctx.set_max(x, zmax)?;
        }
        let all_fixed = self.xs.iter().all(|&x| ctx.is_fixed(x));
        if all_fixed {
            let v = self
                .xs
                .iter()
                .map(|&x| ctx.fixed_value(x).unwrap())
                .max()
                .unwrap();
            ctx.assign(self.z, v)?;
            return Ok(PropStatus::Entailed);
        }
        Ok(PropStatus::Active)
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        values(self.z) == self.xs.iter().map(|&x| values(x)).max().unwrap()
    }
}

/// `z == min(xs)`.
#[derive(Debug, Clone)]
pub struct MinOfArray {
    pub z: VarId,
    pub xs: Vec<VarId>,
}

impl MinOfArray {
    pub fn new(z: VarId, xs: Vec<VarId>) -> Self {
        assert!(!xs.is_empty());
        MinOfArray { z, xs }
    }
}

impl Propagator for MinOfArray {
    fn name(&self) -> &'static str {
        "min_of_array"
    }

    fn dependencies(&self) -> Vec<VarId> {
        let mut v = self.xs.clone();
        v.push(self.z);
        v
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        let min_of_mins = self.xs.iter().map(|&x| ctx.min(x)).min().unwrap();
        let min_of_maxes = self.xs.iter().map(|&x| ctx.max(x)).min().unwrap();
        ctx.intersect(self.z, min_of_mins, min_of_maxes)?;
        let zmin = ctx.min(self.z);
        for &x in &self.xs {
            ctx.set_min(x, zmin)?;
        }
        let all_fixed = self.xs.iter().all(|&x| ctx.is_fixed(x));
        if all_fixed {
            let v = self
                .xs
                .iter()
                .map(|&x| ctx.fixed_value(x).unwrap())
                .min()
                .unwrap();
            ctx.assign(self.z, v)?;
            return Ok(PropStatus::Entailed);
        }
        Ok(PropStatus::Active)
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        values(self.z) == self.xs.iter().map(|&x| values(x)).min().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, SearchConfig};

    #[test]
    fn div_helpers() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_ceil(7, -2), -3);
    }

    #[test]
    fn isqrt_correct() {
        for v in 0..200i64 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "v={v} r={r}");
        }
    }

    #[test]
    fn mul_fixed_factors() {
        let mut m = Model::new();
        let x = m.new_var(3, 3);
        let y = m.new_var(-2, -2);
        let z = m.new_var(-100, 100);
        m.post(MulVar::new(z, x, y));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(z).fixed_value(), Some(-6));
    }

    #[test]
    fn mul_zero_factor_forces_zero() {
        let mut m = Model::new();
        let x = m.new_var(0, 0);
        let y = m.new_var(-5, 5);
        let z = m.new_var(-100, 100);
        m.post(MulVar::new(z, x, y));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(z).fixed_value(), Some(0));
    }

    #[test]
    fn mul_bounds_negative_ranges() {
        let mut m = Model::new();
        let x = m.new_var(-3, 2);
        let y = m.new_var(-4, 5);
        let z = m.new_var(-1000, 1000);
        m.post(MulVar::new(z, x, y));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(z).min(), -15);
        assert_eq!(m.domain(z).max(), 12);
    }

    #[test]
    fn square_bounds() {
        let mut m = Model::new();
        let x = m.new_var(-3, 5);
        let z = m.new_var(0, 1000);
        m.post(Square::new(z, x));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(z).min(), 0);
        assert_eq!(m.domain(z).max(), 25);
        // now constrain z <= 9 and check x gets clipped to [-3, 3]
        m.linear_le(&[(1, z)], 9);
        m.propagate_root().unwrap();
        assert!(m.domain(x).max() <= 3);
        assert!(m.domain(x).min() >= -3);
    }

    #[test]
    fn abs_bounds_and_entailment() {
        let mut m = Model::new();
        let x = m.new_var(-7, 3);
        let z = m.new_var(0, 100);
        m.post(AbsVal::new(z, x));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(z).max(), 7);
        assert_eq!(m.domain(z).min(), 0);
        let mut m2 = Model::new();
        let x2 = m2.new_var(-5, -5);
        let z2 = m2.new_var(0, 100);
        m2.post(AbsVal::new(z2, x2));
        m2.propagate_root().unwrap();
        assert_eq!(m2.domain(z2).fixed_value(), Some(5));
    }

    #[test]
    fn max_min_of_array() {
        let mut m = Model::new();
        let a = m.new_var(1, 4);
        let b = m.new_var(2, 6);
        let c = m.new_var(0, 3);
        let mx = m.new_var(-100, 100);
        let mn = m.new_var(-100, 100);
        m.post(MaxOfArray::new(mx, vec![a, b, c]));
        m.post(MinOfArray::new(mn, vec![a, b, c]));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(mx).min(), 2);
        assert_eq!(m.domain(mx).max(), 6);
        assert_eq!(m.domain(mn).min(), 0);
        assert_eq!(m.domain(mn).max(), 3);
    }

    #[test]
    fn minimize_sum_of_abs() {
        // minimize |x| + |y| subject to x + y == 4, x,y in [-10, 10]
        let mut m = Model::new();
        let x = m.new_var(-10, 10);
        let y = m.new_var(-10, 10);
        m.linear_eq(&[(1, x), (1, y)], 4);
        let ax = m.abs_var(x);
        let ay = m.abs_var(y);
        let obj = m.linear_var(&[(1, ax), (1, ay)], 0);
        let out = m.minimize(obj, &SearchConfig::default());
        assert_eq!(out.best.unwrap().value(obj), 4);
    }
}
