//! Reified (boolean-controlled) linear constraints.
//!
//! Colog's conditional expressions compile into reified constraints. For
//! example `(V==1)==(C==1)` in the ACloud migration-count rule becomes two
//! reified equalities sharing the same boolean, and the wireless
//! interference cost `(C==1)==(|C1-C2| < F_mindiff)` becomes a reified
//! inequality over an absolute-value view.

use crate::model::VarId;
use crate::propagator::{Conflict, PropStatus, Propagator, PropagatorContext};

fn term_min(coeff: i64, ctx: &PropagatorContext<'_>, v: VarId) -> i64 {
    if coeff >= 0 {
        coeff * ctx.min(v)
    } else {
        coeff * ctx.max(v)
    }
}

fn term_max(coeff: i64, ctx: &PropagatorContext<'_>, v: VarId) -> i64 {
    if coeff >= 0 {
        coeff * ctx.max(v)
    } else {
        coeff * ctx.min(v)
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// `b == 1  <=>  Σ coeff_i · x_i <= bound`, where `b` is a 0/1 variable.
#[derive(Debug, Clone)]
pub struct ReifLinearLe {
    pub b: VarId,
    pub terms: Vec<(i64, VarId)>,
    pub bound: i64,
}

impl ReifLinearLe {
    pub fn new(b: VarId, terms: Vec<(i64, VarId)>, bound: i64) -> Self {
        ReifLinearLe { b, terms, bound }
    }

    fn sum_bounds(&self, ctx: &PropagatorContext<'_>) -> (i64, i64) {
        let lo = self.terms.iter().map(|&(c, v)| term_min(c, ctx, v)).sum();
        let hi = self.terms.iter().map(|&(c, v)| term_max(c, ctx, v)).sum();
        (lo, hi)
    }
}

impl Propagator for ReifLinearLe {
    fn name(&self) -> &'static str {
        "reif_linear_le"
    }

    fn dependencies(&self) -> Vec<VarId> {
        let mut v: Vec<VarId> = self.terms.iter().map(|&(_, x)| x).collect();
        v.push(self.b);
        v
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        let (lo, hi) = self.sum_bounds(ctx);
        // Entailment detection drives the boolean.
        if hi <= self.bound {
            ctx.assign(self.b, 1)?;
            return Ok(PropStatus::Entailed);
        }
        if lo > self.bound {
            ctx.assign(self.b, 0)?;
            return Ok(PropStatus::Entailed);
        }
        // If the boolean is decided, enforce/forbid the inequality.
        match ctx.fixed_value(self.b) {
            Some(1) => {
                // enforce Σ <= bound
                for &(c, v) in &self.terms {
                    if c == 0 {
                        continue;
                    }
                    let rest_min = lo - term_min(c, ctx, v);
                    let slack = self.bound - rest_min;
                    if c > 0 {
                        ctx.set_max(v, slack.div_euclid(c))?;
                    } else {
                        ctx.set_min(v, ceil_div(slack, c))?;
                    }
                }
                Ok(PropStatus::Active)
            }
            Some(0) => {
                // enforce Σ >= bound + 1, i.e. Σ(-c) <= -(bound+1)
                let neg_bound = -(self.bound + 1);
                for &(c, v) in &self.terms {
                    if c == 0 {
                        continue;
                    }
                    let nc = -c;
                    let rest_min: i64 = self
                        .terms
                        .iter()
                        .filter(|&&(_, w)| w != v)
                        .map(|&(cc, w)| term_min(-cc, ctx, w))
                        .sum();
                    let slack = neg_bound - rest_min;
                    if nc > 0 {
                        ctx.set_max(v, slack.div_euclid(nc))?;
                    } else {
                        ctx.set_min(v, ceil_div(slack, nc))?;
                    }
                }
                Ok(PropStatus::Active)
            }
            Some(_) => Err(Conflict),
            None => Ok(PropStatus::Active),
        }
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        let s: i64 = self.terms.iter().map(|&(c, v)| c * values(v)).sum();
        let holds = s <= self.bound;
        (values(self.b) == 1) == holds
    }
}

/// `b == 1  <=>  Σ coeff_i · x_i == bound`, where `b` is a 0/1 variable.
#[derive(Debug, Clone)]
pub struct ReifLinearEq {
    pub b: VarId,
    pub terms: Vec<(i64, VarId)>,
    pub bound: i64,
}

impl ReifLinearEq {
    pub fn new(b: VarId, terms: Vec<(i64, VarId)>, bound: i64) -> Self {
        ReifLinearEq { b, terms, bound }
    }
}

impl Propagator for ReifLinearEq {
    fn name(&self) -> &'static str {
        "reif_linear_eq"
    }

    fn dependencies(&self) -> Vec<VarId> {
        let mut v: Vec<VarId> = self.terms.iter().map(|&(_, x)| x).collect();
        v.push(self.b);
        v
    }

    fn prune(&self, ctx: &mut PropagatorContext<'_>) -> Result<PropStatus, Conflict> {
        let lo: i64 = self.terms.iter().map(|&(c, v)| term_min(c, ctx, v)).sum();
        let hi: i64 = self.terms.iter().map(|&(c, v)| term_max(c, ctx, v)).sum();
        if lo == self.bound && hi == self.bound {
            ctx.assign(self.b, 1)?;
            return Ok(PropStatus::Entailed);
        }
        if lo > self.bound || hi < self.bound {
            ctx.assign(self.b, 0)?;
            return Ok(PropStatus::Entailed);
        }
        match ctx.fixed_value(self.b) {
            Some(1) => {
                // enforce equality (bounds reasoning as in LinearEq)
                for &(c, v) in &self.terms {
                    if c == 0 {
                        continue;
                    }
                    let rest_min = lo - term_min(c, ctx, v);
                    let rest_max = hi - term_max(c, ctx, v);
                    let lo_c = self.bound - rest_max;
                    let hi_c = self.bound - rest_min;
                    let (l, h) = if c > 0 {
                        (ceil_div(lo_c, c), hi_c.div_euclid(c))
                    } else {
                        (ceil_div(hi_c, c), lo_c.div_euclid(c))
                    };
                    ctx.intersect(v, l, h)?;
                }
                Ok(PropStatus::Active)
            }
            Some(0) => {
                // disequality: only propagate when one unfixed var remains
                let mut unfixed: Option<(i64, VarId)> = None;
                let mut fixed_sum = 0i64;
                for &(c, v) in &self.terms {
                    match ctx.fixed_value(v) {
                        Some(val) => fixed_sum += c * val,
                        None => {
                            if unfixed.is_some() {
                                return Ok(PropStatus::Active);
                            }
                            unfixed = Some((c, v));
                        }
                    }
                }
                match unfixed {
                    None => {
                        if fixed_sum == self.bound {
                            Err(Conflict)
                        } else {
                            Ok(PropStatus::Entailed)
                        }
                    }
                    Some((c, v)) => {
                        let remaining = self.bound - fixed_sum;
                        if c != 0 && remaining % c == 0 {
                            ctx.remove_value(v, remaining / c)?;
                        }
                        Ok(PropStatus::Entailed)
                    }
                }
            }
            Some(_) => Err(Conflict),
            None => Ok(PropStatus::Active),
        }
    }

    fn check(&self, values: &dyn Fn(VarId) -> i64) -> bool {
        let s: i64 = self.terms.iter().map(|&(c, v)| c * values(v)).sum();
        (values(self.b) == 1) == (s == self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, SearchConfig};

    #[test]
    fn reif_le_entailed_sets_bool() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        let b = m.new_var(0, 1);
        m.post(ReifLinearLe::new(b, vec![(1, x)], 5));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(b).fixed_value(), Some(1));
    }

    #[test]
    fn reif_le_violated_clears_bool() {
        let mut m = Model::new();
        let x = m.new_var(6, 9);
        let b = m.new_var(0, 1);
        m.post(ReifLinearLe::new(b, vec![(1, x)], 5));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(b).fixed_value(), Some(0));
    }

    #[test]
    fn reif_le_bool_true_enforces() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let b = m.new_var(1, 1);
        m.post(ReifLinearLe::new(b, vec![(1, x)], 5));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(x).max(), 5);
    }

    #[test]
    fn reif_le_bool_false_enforces_negation() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let b = m.new_var(0, 0);
        m.post(ReifLinearLe::new(b, vec![(1, x)], 5));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(x).min(), 6);
    }

    #[test]
    fn reif_eq_detects_equality_and_inequality() {
        let mut m = Model::new();
        let x = m.new_var(4, 4);
        let b = m.new_var(0, 1);
        m.post(ReifLinearEq::new(b, vec![(1, x)], 4));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(b).fixed_value(), Some(1));

        let mut m2 = Model::new();
        let y = m2.new_var(0, 3);
        let b2 = m2.new_var(0, 1);
        m2.post(ReifLinearEq::new(b2, vec![(1, y)], 9));
        m2.propagate_root().unwrap();
        assert_eq!(m2.domain(b2).fixed_value(), Some(0));
    }

    #[test]
    fn reif_eq_forced_true_fixes_var() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let b = m.new_var(1, 1);
        m.post(ReifLinearEq::new(b, vec![(1, x)], 7));
        m.propagate_root().unwrap();
        assert_eq!(m.domain(x).fixed_value(), Some(7));
    }

    #[test]
    fn reif_eq_forced_false_removes_value() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let b = m.new_var(0, 0);
        m.post(ReifLinearEq::new(b, vec![(1, x)], 7));
        m.propagate_root().unwrap();
        assert!(!m.domain(x).contains(7));
    }

    #[test]
    fn equivalence_of_two_conditions_via_shared_bool() {
        // (v == 1) == (c == 1): searching all solutions must give v == c.
        let mut m = Model::new();
        let v = m.new_var(0, 1);
        let c = m.new_var(0, 1);
        let b = m.new_var(0, 1);
        m.post(ReifLinearEq::new(b, vec![(1, v)], 1));
        m.post(ReifLinearEq::new(b, vec![(1, c)], 1));
        let sols = m.solve_all(&SearchConfig::default());
        assert_eq!(sols.solutions.len(), 2);
        for s in &sols.solutions {
            assert_eq!(s.value(v), s.value(c));
        }
    }

    #[test]
    fn reified_check_functions() {
        let mut m = Model::new();
        let x = m.new_var(0, 10);
        let b = m.new_var(0, 1);
        let p = ReifLinearLe::new(b, vec![(1, x)], 5);
        assert!(p.check(&|v| if v == x { 3 } else { 1 }));
        assert!(p.check(&|v| if v == x { 8 } else { 0 }));
        assert!(!p.check(&|v| if v == x { 8 } else { 1 }));
        let q = ReifLinearEq::new(b, vec![(1, x)], 5);
        assert!(q.check(&|v| if v == x { 5 } else { 1 }));
        assert!(!q.check(&|v| if v == x { 5 } else { 0 }));
    }
}
