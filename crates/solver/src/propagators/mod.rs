//! Built-in propagators.
//!
//! These cover every constraint shape the Colog→COP compilation produces
//! (Sec. 5.3–5.4 of the paper):
//!
//! * [`linear`] — linear equalities/inequalities/disequalities over integer
//!   variables, the workhorse for `SUM<...>` aggregates and arithmetic
//!   selection expressions;
//! * [`arith`] — products, squares and absolute values, used for
//!   `C == V * Cpu`, the `SUMABS` aggregate and the scaled-variance lowering
//!   of `STDEV`;
//! * [`reified`] — boolean reification of linear constraints, used for
//!   conditional expressions such as `(V==1) == (C==1)` and the interference
//!   cost `(C==1) == (|C1-C2| < F_mindiff)`;
//! * [`counting`] — the number-of-distinct-values constraint backing the
//!   `UNIQUE<...>` aggregate (wireless interface constraint).
//!
//! Every propagator prunes through a [`crate::PropagatorContext`], the view
//! over the search's trail-based [`crate::Store`]: propagators never see the
//! domain vector directly, so each pruning is recorded on the trail (undone
//! on backtrack) and reported to the propagation queue's scheduler.

pub mod arith;
pub mod counting;
pub mod linear;
pub mod reified;

pub use arith::{AbsVal, MaxOfArray, MinOfArray, MulVar, Square};
pub use counting::NValues;
pub use linear::{LinearEq, LinearLe, LinearNe};
pub use reified::{ReifLinearEq, ReifLinearLe};
