//! Large neighborhood search (LNS): incomplete optimization for instances
//! exact branch-and-bound cannot close.
//!
//! The paper's evaluation stops where exact search stops — tens of VMs,
//! small wireless grids — because every solver invocation re-proves
//! optimality from scratch. LNS trades the optimality proof for scale: take
//! an incumbent from a bounded exact dive, then loop **destroy** (unfix a
//! subset of the decision variables) / **repair** (re-solve the resulting
//! sub-problem under the obligation to strictly improve), keeping the best
//! assignment seen. Each iteration touches only a neighborhood of the
//! incumbent, so the cost per iteration stays bounded as the instance grows.
//!
//! # The destroy/repair contract against trail levels
//!
//! The driver leans directly on the trail store's O(changes) backtracking —
//! no per-iteration copies of the domain vector are ever made:
//!
//! 1. **Frozen root.** Once, at the start of the run, the store is reset to
//!    the model's root domains and propagated at trail level 0. Level-0
//!    mutations are permanent, so this root fixpoint is computed exactly
//!    once for the whole LNS run.
//! 2. **Freeze.** Every iteration opens one trail level
//!    ([`crate::Store::push_choice`]), tightens the objective to *strictly
//!    better than the incumbent*, and re-asserts the incumbent value of
//!    every *kept* (non-destroyed) decision variable, propagating after each
//!    assignment. A conflict here means the kept set pins a variable that
//!    must change for any improvement — the iteration is abandoned and, under
//!    [`DestroyStrategy::ConflictGuided`], the offending variable is
//!    force-destroyed next round.
//! 3. **Repair.** A bounded first-fail exact search
//!    (`search::resolve_subtree`, private) runs below the freeze level, with
//!    the incumbent objective seeded as its branch-and-bound bound and a
//!    fail budget drawn from a geometric restart schedule
//!    ([`crate::restart::GeometricRestarts`]): the budget grows while
//!    repairs come back empty and resets on improvement.
//! 4. **Destroy.** Backtracking every trail level above the frozen root —
//!    the levels the repair left open plus the freeze level itself — *is*
//!    the destroy step: all kept assignments and all repair decisions vanish
//!    in O(changes), and the next iteration starts from the pristine root
//!    fixpoint.
//!
//! # Termination and optimality
//!
//! The driver stops on the caller's limits ([`crate::SearchConfig`] node /
//! fail / time limits, [`LnsConfig::max_iterations`]). Two situations prove
//! the incumbent *optimal* and set `complete = true` on the outcome: a
//! repair with the **full** neighborhood destroyed that exhausts its search
//! without hitting a budget, and a freeze whose improving bound conflicts at
//! the root with nothing frozen. Stalled iterations grow both the fail
//! budget and the neighborhood geometrically, so in the absence of limits
//! the driver always terminates with a proof.
//!
//! # Determinism
//!
//! Neighborhood selection uses the vendored splitmix64
//! [`rand::rngs::StdRng`] seeded from [`LnsConfig::seed`]; every other
//! choice is a deterministic function of the model and configuration. Two
//! runs with the same model, configuration and seed produce identical
//! incumbent sequences and identical node/fail/iteration counters, provided
//! no wall-clock limit is set (a wall-clock limit is the one
//! schedule-dependent stopping rule; use node limits for reproducible runs).

use std::collections::BTreeSet;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bounds::{self, BoundCertificate, BoundMode};
use crate::model::{Model, VarId};
use crate::observe::{notify, SolveObserver};
use crate::restart::GeometricRestarts;
use crate::search::{self, Branching, Objective, SearchConfig, SearchOutcome, SearchSpace};
use crate::stats::SearchStats;
use crate::store::Store;
use crate::Assignment;

/// How [`crate::search::solve_in`] explores the search space.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SolverMode {
    /// Exact branch-and-bound (the paper's mode): proves optimality, but
    /// cost grows with the full search space.
    #[default]
    Exact,
    /// Destroy/repair large neighborhood search: returns the best incumbent
    /// found under the configured budgets. Applies to `minimize`/`maximize`
    /// objectives; satisfaction goals fall back to exact search.
    Lns(LnsConfig),
}

/// How the destroy step picks the neighborhood to unfix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DestroyStrategy {
    /// Uniform seeded-random subset of the decision variables.
    Random,
    /// Random subset, but variables whose frozen incumbent assignment
    /// conflicted with the improving bound in the previous iteration are
    /// destroyed first — they provably must change for any improvement.
    #[default]
    ConflictGuided,
}

/// Configuration of the LNS driver. The overall budget (node / fail / time
/// limits) still comes from the enclosing [`SearchConfig`]; this structure
/// only shapes how that budget is spent.
#[derive(Debug, Clone, PartialEq)]
pub struct LnsConfig {
    /// Seed of the neighborhood-selection RNG. Everything else being equal,
    /// the same seed reproduces the same run exactly.
    pub seed: u64,
    /// Fraction of the decision variables destroyed per iteration (clamped
    /// to at least one variable). Stalled iterations grow the neighborhood
    /// geometrically; an improvement snaps it back to this base.
    pub destroy_fraction: f64,
    /// Neighborhood selection policy.
    pub destroy_strategy: DestroyStrategy,
    /// Node budget of the initial exact dive that produces the first
    /// incumbent. If the dive finds nothing, it is retried with
    /// geometrically larger budgets until a first solution appears or the
    /// overall budget runs out.
    pub dive_node_limit: u64,
    /// Base fail budget of one repair search.
    pub repair_fail_base: u64,
    /// Geometric growth factor applied to the repair fail budget and the
    /// neighborhood size while iterations fail to improve.
    pub repair_growth: f64,
    /// Hard cap on destroy/repair iterations (`None` = bounded only by the
    /// enclosing search limits).
    pub max_iterations: Option<u64>,
}

impl Default for LnsConfig {
    fn default() -> Self {
        LnsConfig {
            seed: 0xC010_93E5,
            destroy_fraction: 0.25,
            destroy_strategy: DestroyStrategy::ConflictGuided,
            dive_node_limit: 2_000,
            repair_fail_base: 64,
            repair_growth: 1.5,
            max_iterations: None,
        }
    }
}

/// Tighten the objective domain to values strictly better than `best`.
fn tighten_to_improve(store: &mut Store, objective: Objective, best: i64) -> Result<bool, ()> {
    match objective {
        Objective::Minimize(o) => store.remove_above(o.index(), best.saturating_sub(1)),
        Objective::Maximize(o) => store.remove_below(o.index(), best.saturating_add(1)),
        Objective::Satisfy => Ok(false),
    }
}

/// Budget still available under an optional limit.
fn remaining(limit: Option<u64>, spent: u64) -> Option<u64> {
    limit.map(|l| l.saturating_sub(spent))
}

/// The LNS driver. `config` carries the overall limits and heuristics,
/// `lns` the destroy/repair shape. Called through
/// [`crate::search::solve_in`] when [`SearchConfig::mode`] is
/// [`SolverMode::Lns`] and the objective is an optimization.
pub(crate) fn solve_lns(
    model: &Model,
    objective: Objective,
    config: &SearchConfig,
    lns: &LnsConfig,
    space: &mut SearchSpace,
    observer: &mut Option<&mut dyn SolveObserver>,
) -> SearchOutcome {
    let start = Instant::now();
    let mut stats = SearchStats::default();
    let mut solutions: Vec<Assignment> = Vec::new();
    // Restart events (geometric budget growths) share one counter across the
    // dive and repair phases.
    let mut restarts: u64 = 0;

    let finish = |mut stats: SearchStats,
                  best: Option<Assignment>,
                  best_objective: Option<i64>,
                  solutions: Vec<Assignment>,
                  complete: bool,
                  certificate: Option<BoundCertificate>| {
        stats.elapsed_micros = start.elapsed().as_micros() as u64;
        stats.limit_reached = !complete;
        SearchOutcome {
            best,
            best_objective,
            solutions,
            stats,
            complete,
            certificate,
        }
    };

    let out_of_time = |stats: &SearchStats| {
        config.time_limit.is_some_and(|t| start.elapsed() >= t)
            || remaining(config.node_limit, stats.nodes) == Some(0)
            || remaining(config.fail_limit, stats.fails) == Some(0)
    };
    // Gap-driven termination, checked at iteration boundaries — the same
    // deterministic points as the budget checks above. Strict comparison:
    // `gap_limit = Some(0.0)` never stops the driver early.
    let gap_hit = |stats: &SearchStats| matches!((config.gap_limit, stats.gap), (Some(limit), Some(gap)) if gap < limit);
    // `max_solutions` keeps its exact-mode meaning for optimization — stop
    // improving after this many incumbents — counted across the dive and
    // every repair.
    let solution_cap_hit =
        |solutions: &[Assignment]| config.max_solutions.is_some_and(|k| solutions.len() >= k);
    let remaining_solutions = |solutions: &[Assignment]| {
        config
            .max_solutions
            .map(|k| k.saturating_sub(solutions.len()))
    };

    // ----- phase 1: incumbent dive(s) ---------------------------------------
    //
    // A valid warm-start assignment (carried over from the previous solver
    // invocation by the Cologne pipeline) replaces the dive entirely: it
    // becomes the frozen-root incumbent and the whole budget goes to
    // destroy/repair iterations. Otherwise a node-limited exact dive
    // produces the first incumbent; re-dives with geometrically larger
    // budgets re-explore the same deterministic prefix, which the growth
    // amortizes.
    let warm = match objective {
        Objective::Minimize(o) | Objective::Maximize(o) => config
            .warm_start
            .as_ref()
            .filter(|w| search::warm_start_valid(model, w))
            .map(|w| (w.clone(), w.value(o))),
        Objective::Satisfy => None,
    };
    let mut dive_budgets = GeometricRestarts::new(lns.dive_node_limit, lns.repair_growth);
    let (mut incumbent, mut best) = if let Some((assignment, value)) = warm {
        stats.warm_start = true;
        (assignment, value)
    } else {
        loop {
            let budget = match remaining(config.node_limit, stats.nodes) {
                Some(r) => r.min(dive_budgets.budget()),
                None => dive_budgets.budget(),
            };
            let dive_cfg = SearchConfig {
                mode: SolverMode::Exact,
                node_limit: Some(budget),
                time_limit: config.time_limit.map(|t| t.saturating_sub(start.elapsed())),
                fail_limit: remaining(config.fail_limit, stats.fails),
                max_solutions: remaining_solutions(&solutions),
                warm_start: None,
                ..config.clone()
            };
            let dive = search::solve_exact_in(model, objective, &dive_cfg, space, &mut *observer);
            stats.merge(&dive.stats);
            if dive.best.is_some() {
                solutions.extend(dive.solutions.iter().cloned());
            }
            if dive.complete {
                // The dive already proved optimality (or infeasibility).
                return finish(
                    stats,
                    dive.best,
                    dive.best_objective,
                    solutions,
                    true,
                    dive.certificate,
                );
            }
            if stats.cancelled {
                return finish(
                    stats,
                    dive.best,
                    dive.best_objective,
                    solutions,
                    false,
                    dive.certificate,
                );
            }
            if let (Some(assignment), Some(value)) = (dive.best, dive.best_objective) {
                // The dive itself may have gap-terminated (it inherits
                // `gap_limit`/`bound_mode`); the loop below re-checks at its
                // first iteration boundary and stops immediately.
                if solution_cap_hit(&solutions) {
                    return finish(
                        stats,
                        Some(assignment),
                        Some(value),
                        solutions,
                        false,
                        dive.certificate,
                    );
                }
                break (assignment, value);
            }
            if out_of_time(&stats) {
                // Budget exhausted before any incumbent appeared.
                return finish(stats, None, None, solutions, false, dive.certificate);
            }
            dive_budgets.grow();
            restarts += 1;
            if notify(&mut *observer, |o| {
                o.on_restart(restarts, dive_budgets.budget())
            }) {
                stats.cancelled = true;
                return finish(stats, None, None, solutions, false, dive.certificate);
            }
        }
    };

    // ----- phase 2: destroy / repair from a frozen root ---------------------
    space.frames.clear();
    space.values.clear();
    space.store.reset_from(model.domains());
    if model
        .propagate_in(&mut space.store, &mut space.queue, &mut stats, None)
        .is_err()
    {
        // Unreachable in practice (the dive found a solution through this
        // very fixpoint), but degrade gracefully: keep the incumbent.
        return finish(stats, Some(incumbent), Some(best), solutions, false, None);
    }

    // The dual bound of this LNS run, computed against the frozen-root
    // fixpoint every iteration searches below. Overwrites whatever a dive
    // recorded (same root, same engines — same bound) and refreshes the gap
    // against the current incumbent on every improvement below.
    let certificate = bounds::compute_root_bound(model, objective, config, space.store.domains());
    if let Some(cert) = &certificate {
        stats.dual_bound = Some(cert.dual_bound);
        stats.gap = Some(bounds::optimality_gap(objective, best, cert.dual_bound));
    }

    // The neighborhood pool: marked decision variables, or every variable
    // when the model marks none — in both cases restricted to variables the
    // root fixpoint leaves unfixed (the rest can never move).
    let candidates: Vec<usize> = if model.decision_vars().is_empty() {
        (0..model.num_vars())
            .filter(|&i| !space.store.domain(i).is_fixed())
            .collect()
    } else {
        model
            .decision_vars()
            .iter()
            .map(|v| v.index())
            .filter(|&i| !space.store.domain(i).is_fixed())
            .collect()
    };
    if candidates.is_empty() {
        return finish(
            stats,
            Some(incumbent),
            Some(best),
            solutions,
            false,
            certificate,
        );
    }

    let mut rng = StdRng::seed_from_u64(lns.seed);
    let mut repair_budgets = GeometricRestarts::new(lns.repair_fail_base, lns.repair_growth);
    let base_destroy = ((candidates.len() as f64 * lns.destroy_fraction).ceil() as usize)
        .clamp(1, candidates.len());
    let mut destroy_count = base_destroy;
    let grow_destroy = |count: usize| {
        let scaled = (count as f64 * lns.repair_growth.max(1.0)).ceil() as usize;
        scaled.max(count + 1).min(candidates.len())
    };
    // Conflict-guided carry-over: variables whose frozen assignment clashed
    // with the improving bound last iteration.
    let mut forced: Vec<usize> = Vec::new();
    let mut complete = false;

    loop {
        if out_of_time(&stats)
            || gap_hit(&stats)
            || solution_cap_hit(&solutions)
            || lns
                .max_iterations
                .is_some_and(|m| stats.lns_iterations >= m)
        {
            break;
        }
        stats.lns_iterations += 1;

        // --- destroy selection ---
        let mut destroy: BTreeSet<usize> = BTreeSet::new();
        if lns.destroy_strategy == DestroyStrategy::ConflictGuided {
            destroy.extend(forced.iter().copied().take(destroy_count));
        }
        forced.clear();
        while destroy.len() < destroy_count {
            destroy.insert(candidates[rng.gen_range(0..candidates.len())]);
        }

        // --- freeze: improving bound + incumbent values on the kept set ---
        space.store.push_choice();
        // The store is at the frozen-root fixpoint and the tightening only
        // touches the objective, so seeding its watchers reaches the same
        // fixpoint as seeding every propagator (the exact searcher's
        // bound-seed argument).
        let mut frozen_ok = match tighten_to_improve(&mut space.store, objective, best) {
            Err(()) => false,
            Ok(false) => true,
            Ok(true) => {
                let seed = match objective {
                    Objective::Minimize(o) | Objective::Maximize(o) => {
                        model.props_watching(o.index())
                    }
                    Objective::Satisfy => &[],
                };
                model
                    .propagate_in(&mut space.store, &mut space.queue, &mut stats, Some(seed))
                    .is_ok()
            }
        };
        if frozen_ok {
            'freeze: for &i in &candidates {
                if destroy.contains(&i) {
                    continue;
                }
                let value = incumbent.value(VarId::from_index(i));
                let applied = space.store.assign(i, value);
                if applied.is_err() {
                    forced.push(i);
                    frozen_ok = false;
                    break 'freeze;
                }
                if applied == Ok(true)
                    && model
                        .propagate_in(
                            &mut space.store,
                            &mut space.queue,
                            &mut stats,
                            Some(model.props_watching(i)),
                        )
                        .is_err()
                {
                    forced.push(i);
                    frozen_ok = false;
                    break 'freeze;
                }
            }
        }
        if !frozen_ok {
            space.store.backtrack();
            if destroy.len() >= candidates.len() {
                // Nothing was frozen, yet demanding an improvement already
                // conflicts at the root: the incumbent is optimal.
                complete = true;
                break;
            }
            destroy_count = grow_destroy(destroy_count);
            repair_budgets.grow();
            restarts += 1;
            let cancel = notify(&mut *observer, |o| {
                o.on_restart(restarts, repair_budgets.budget())
            }) || notify(&mut *observer, |o| {
                o.on_lns_iteration(stats.lns_iterations, false, Some(best))
            });
            if cancel {
                stats.cancelled = true;
                break;
            }
            continue;
        }

        // --- repair: bounded first-fail re-solve below the freeze level ---
        let repair_cfg = SearchConfig {
            mode: SolverMode::Exact,
            branching: Branching::SmallestDomain,
            value_choice: config.value_choice,
            split_threshold: config.split_threshold,
            time_limit: config.time_limit.map(|t| t.saturating_sub(start.elapsed())),
            fail_limit: Some(
                remaining(config.fail_limit, stats.fails)
                    .map_or(repair_budgets.budget(), |r| r.min(repair_budgets.budget())),
            ),
            node_limit: remaining(config.node_limit, stats.nodes),
            max_solutions: remaining_solutions(&solutions),
            warm_start: None,
            workers: None,
            // Repairs search a frozen subproblem: a bound computed there
            // would certify the neighborhood, not the COP. The driver owns
            // the root certificate; repairs carry `None` and the stats merge
            // keeps the driver's values.
            gap_limit: None,
            bound_mode: BoundMode::Off,
        };
        let repair = search::resolve_subtree(
            model,
            objective,
            &repair_cfg,
            space,
            Some(best),
            &mut *observer,
        );
        stats.merge(&repair.stats);

        // --- destroy (for the next iteration): unwind to the frozen root ---
        while space.store.level() > 0 {
            space.store.backtrack();
        }
        space.frames.clear();
        space.values.clear();

        let improved = if let (Some(assignment), Some(value)) = (repair.best, repair.best_objective)
        {
            stats.lns_improvements += 1;
            solutions.extend(repair.solutions);
            incumbent = assignment;
            best = value;
            if let Some(dual) = stats.dual_bound {
                stats.gap = Some(bounds::optimality_gap(objective, best, dual));
            }
            destroy_count = base_destroy;
            repair_budgets.reset();
            true
        } else {
            if repair.complete && destroy.len() >= candidates.len() {
                // Full neighborhood, search exhausted without a budget stop:
                // no assignment beats the incumbent.
                complete = true;
                break;
            }
            destroy_count = grow_destroy(destroy_count);
            repair_budgets.grow();
            restarts += 1;
            if notify(&mut *observer, |o| {
                o.on_restart(restarts, repair_budgets.budget())
            }) {
                stats.cancelled = true;
                break;
            }
            false
        };
        if notify(&mut *observer, |o| {
            o.on_lns_iteration(stats.lns_iterations, improved, Some(best))
        }) {
            stats.cancelled = true;
            break;
        }
        // Driver-level heartbeat: repairs run bounds-stripped (the root
        // certificate is the driver's), so the live gap is only visible on
        // the driver's own stats. Emitted only when a bound exists — with
        // `BoundMode::Off` the observer stream is byte-identical to before.
        if stats.dual_bound.is_some() && notify(&mut *observer, |o| o.on_progress(&stats)) {
            stats.cancelled = true;
            break;
        }
        if stats.cancelled {
            // An observer cancelled inside the repair search: stop the
            // driver, keeping the incumbent.
            break;
        }
    }

    finish(
        stats,
        Some(incumbent),
        Some(best),
        solutions,
        complete,
        certificate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, SearchConfig};

    fn lns_config(seed: u64) -> SearchConfig {
        SearchConfig {
            mode: SolverMode::Lns(LnsConfig {
                seed,
                dive_node_limit: 8,
                repair_fail_base: 8,
                ..Default::default()
            }),
            node_limit: Some(5_000),
            ..Default::default()
        }
    }

    /// A balance model: `n` items of distinct weights split over two bins,
    /// minimizing the heavier bin.
    fn balance_model(n: usize) -> (Model, VarId) {
        let mut m = Model::new();
        let mut bin0 = Vec::new();
        let mut bin1 = Vec::new();
        let total: i64 = (0..n as i64).map(|i| 3 + i).sum();
        for i in 0..n as i64 {
            let pick = m.new_bool();
            m.mark_decision(pick);
            bin0.push((3 + i, pick));
            let inv = m.new_bool();
            m.linear_eq(&[(1, pick), (1, inv)], 1);
            bin1.push((3 + i, inv));
        }
        let load0 = m.linear_var(&bin0, 0);
        let load1 = m.linear_var(&bin1, 0);
        let heavier = m.max_var(&[load0, load1]);
        let _ = total;
        (m, heavier)
    }

    #[test]
    fn lns_reaches_the_exact_optimum_on_small_models() {
        let (m, obj) = balance_model(8);
        let exact = m.minimize(obj, &SearchConfig::default());
        let lns = m.minimize(obj, &lns_config(42));
        assert_eq!(lns.best_objective, exact.best_objective);
        assert!(lns.stats.lns_iterations > 0, "LNS iterations must run");
    }

    #[test]
    fn lns_improves_monotonically() {
        let (m, obj) = balance_model(10);
        let out = m.minimize(obj, &lns_config(7));
        let objs: Vec<i64> = out.solutions.iter().map(|s| s.value(obj)).collect();
        for w in objs.windows(2) {
            assert!(w[1] < w[0], "incumbents must strictly improve: {objs:?}");
        }
        assert!(out.best_objective.is_some());
    }

    #[test]
    fn lns_is_deterministic_for_a_fixed_seed() {
        let run = |seed| {
            let (m, obj) = balance_model(10);
            let out = m.minimize(obj, &lns_config(seed));
            (
                out.best_objective,
                out.stats.nodes,
                out.stats.fails,
                out.stats.lns_iterations,
                out.stats.lns_improvements,
                out.solutions.len(),
            )
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn lns_proves_optimality_when_budgets_allow() {
        // Tiny model, generous budgets: the full-neighborhood repair must
        // eventually exhaust and flip `complete`.
        let (m, obj) = balance_model(4);
        let out = m.minimize(obj, &lns_config(1));
        assert!(out.complete, "small instance must be closed: {}", out.stats);
    }

    #[test]
    fn max_solutions_caps_the_incumbent_count() {
        // `max_solutions` means "stop improving after this many incumbents"
        // for optimization — LNS must honor it like the exact searcher does.
        let (m, obj) = balance_model(10);
        let cfg = SearchConfig {
            max_solutions: Some(2),
            ..lns_config(5)
        };
        let out = m.minimize(obj, &cfg);
        assert!(out.solutions.len() <= 2, "got {}", out.solutions.len());
        assert!(out.best.is_some());
        let unlimited = m.minimize(obj, &lns_config(5));
        assert!(
            unlimited.solutions.len() > 2,
            "the cap must be the binding constraint in this scenario"
        );
    }

    #[test]
    fn warm_start_replaces_the_incumbent_dive() {
        let (m, obj) = balance_model(10);
        let exact = m.minimize(obj, &SearchConfig::default());
        let optimal = exact.best.clone().unwrap();
        let cfg = SearchConfig {
            warm_start: Some(optimal.clone()),
            ..lns_config(11)
        };
        let out = m.minimize(obj, &cfg);
        assert!(out.stats.warm_start);
        // starting from the optimum, no repair can improve it
        assert_eq!(out.best_objective, exact.best_objective);
        assert_eq!(out.best, Some(optimal));
        assert_eq!(out.stats.lns_improvements, 0);
        // the dive was skipped: every node explored belongs to repairs, and
        // the driver proves optimality once the full neighborhood exhausts
        assert!(out.complete, "{}", out.stats);
    }

    #[test]
    fn invalid_warm_start_falls_back_to_the_dive() {
        let (m, obj) = balance_model(10);
        let exact = m.minimize(obj, &SearchConfig::default());
        let mut broken = exact.best.clone().unwrap();
        // flip one decision without its complement: violates pick + inv == 1
        broken.values[0] = 1 - broken.values[0];
        let cfg = SearchConfig {
            warm_start: Some(broken),
            ..lns_config(11)
        };
        let out = m.minimize(obj, &cfg);
        assert!(!out.stats.warm_start);
        assert_eq!(out.best_objective, exact.best_objective);
    }

    #[test]
    fn satisfy_falls_back_to_exact() {
        let mut m = Model::new();
        let x = m.new_var(0, 3);
        m.linear_ge(&[(1, x)], 2);
        let cfg = SearchConfig {
            mode: SolverMode::Lns(LnsConfig::default()),
            max_solutions: Some(1),
            ..Default::default()
        };
        let out = m.solve_all(&cfg);
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.stats.lns_iterations, 0);
    }

    #[test]
    fn lns_emits_a_deterministic_event_stream() {
        use crate::observe::{EventLog, SolveEvent};
        use crate::search::{solve_in_observed, SearchSpace};
        let run = |seed| {
            let (m, obj) = balance_model(10);
            let mut log = EventLog::bounded(65536);
            let mut space = SearchSpace::new();
            let out = solve_in_observed(
                &m,
                Objective::Minimize(obj),
                &lns_config(seed),
                &mut space,
                Some(&mut log),
            );
            assert_eq!(log.dropped(), 0);
            (out.best_objective, log.drain())
        };
        let (b1, e1) = run(3);
        let (b2, e2) = run(3);
        assert_eq!(b1, b2);
        assert_eq!(e1, e2, "same seed must replay the same event sequence");
        assert!(e1
            .iter()
            .any(|e| matches!(e, SolveEvent::LnsIteration { .. })));
        assert!(e1.iter().any(|e| matches!(e, SolveEvent::Incumbent { .. })));
    }

    #[test]
    fn lns_cancellation_keeps_the_incumbent() {
        use crate::observe::EventLog;
        use crate::search::{solve_in_observed, SearchSpace};
        let (m, obj) = balance_model(10);
        let mut log = EventLog::bounded(4096).cancel_after_incumbents(1);
        let mut space = SearchSpace::new();
        let out = solve_in_observed(
            &m,
            Objective::Minimize(obj),
            &lns_config(7),
            &mut space,
            Some(&mut log),
        );
        assert!(out.stats.cancelled);
        assert!(!out.complete);
        assert!(out.best.is_some(), "the first incumbent survives");
    }

    #[test]
    fn infeasible_model_reports_no_incumbent() {
        let mut m = Model::new();
        let x = m.new_bool();
        m.mark_decision(x);
        m.linear_ge(&[(1, x)], 5);
        let obj = m.linear_var(&[(1, x)], 0);
        let out = m.minimize(obj, &lns_config(9));
        assert!(out.best.is_none());
        assert!(out.complete, "root infeasibility is proved by the dive");
    }
}
