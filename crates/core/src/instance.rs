//! The per-node Cologne instance.
//!
//! A [`CologneInstance`] is one box in Figure 1 of the paper: it couples a
//! distributed query engine (the incremental Datalog engine of
//! `cologne-datalog`) with a constraint solver (`cologne-solver`). Regular
//! Colog rules run continuously and incrementally on the engine; when the
//! solver is invoked (the paper's `invokeSolver` event), the solver rules are
//! grounded against the current tables, the COP is solved under the
//! configured time budget, and the optimization output (`var` tables and the
//! goal relation) is materialized back into the engine, possibly triggering
//! further rule evaluation and distributed messages.

use std::collections::{BTreeMap, BTreeSet};

use cologne_colog::{
    analyze, localize_rules, parse_program, Analysis, Program, ProgramParams, RuleClass,
    SchemaCatalog,
};
use cologne_datalog::{Engine, NodeId, RemoteTuple, Tuple};
use cologne_solver::{BoundCertificate, SearchStats, SolveObserver};

use crate::deploy::SolverSettings;
use crate::error::CologneError;
use crate::ground::GroundedCop;
use crate::handle::RelationHandle;
use crate::pipeline::{PipelineStats, SolvePipeline};
use crate::translate::rule_to_datalog;

/// Result of one `invokeSolver` execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// False when the constraints could not be satisfied.
    pub feasible: bool,
    /// True when there was nothing to solve (no solver variables grounded).
    pub trivial: bool,
    /// Objective value of the best solution found (integer objective; for
    /// `STDEV` goals this is the scaled variance, see DESIGN.md).
    pub objective: Option<i64>,
    /// True if the search proved optimality / exhausted the space before any
    /// limit was reached.
    pub proven_optimal: bool,
    /// Search statistics for this invocation.
    pub stats: SearchStats,
    /// Certified dual bound computed at the frozen root of this invocation's
    /// search, naming the engine and the binding constraints. `None` when
    /// the bound mode is off (the default), the goal is `satisfy`, or no
    /// engine produced a bound.
    pub certificate: Option<BoundCertificate>,
    /// Materialized solver tables (symbolic attributes resolved to integers).
    pub assignments: BTreeMap<String, Vec<Tuple>>,
    /// Tuples addressed to other nodes produced while re-running the regular
    /// rules after materialization.
    pub outgoing: Vec<RemoteTuple>,
}

impl SolveReport {
    fn empty(trivial: bool) -> Self {
        SolveReport {
            feasible: true,
            trivial,
            objective: None,
            proven_optimal: true,
            stats: SearchStats::default(),
            certificate: None,
            assignments: BTreeMap::new(),
            outgoing: Vec::new(),
        }
    }

    /// Rows of one materialized solver table.
    pub fn table(&self, name: &str) -> &[Tuple] {
        self.assignments.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A single Cologne node: compiled program + Datalog engine + solver glue.
pub struct CologneInstance {
    node: NodeId,
    program: Program,
    analysis: Analysis,
    catalog: SchemaCatalog,
    params: ProgramParams,
    pub(crate) engine: Engine,
    pipeline: SolvePipeline,
    cumulative_stats: SearchStats,
    last_stats: Option<SearchStats>,
    solver_invocations: u64,
    /// The previous invocation's report, replayed verbatim when the
    /// delta-aware grounding proves the COP unchanged (search is a
    /// deterministic function of the COP and configuration, so re-solving
    /// an identical COP reproduces it bit for bit).
    last_report: Option<SolveReport>,
    /// Every tuple currently held because a peer shipped it (inserts minus
    /// deletes through [`CologneInstance::try_receive`]), with the set of
    /// peers currently asserting it — the state a crash wipes and a rejoin
    /// re-syncs from neighbors. The engine underneath counts multiplicities,
    /// so this ledger keeps ingest idempotent *per sender* (at-least-once
    /// delivery redelivers: duplicate packets, rejoin resyncs) while still
    /// holding one multiplicity per distinct asserting peer (one peer's
    /// retraction must not drop a row another peer still asserts).
    remote_rows: BTreeMap<String, BTreeMap<Tuple, BTreeSet<NodeId>>>,
}

impl CologneInstance {
    /// Compile a Colog program and set up the engine for `node`.
    ///
    /// Distributed rules are localized (Sec. 5.5), regular rules (including
    /// the shipping rules produced by localization) are installed on the
    /// incremental engine, and solver rules are kept for per-invocation
    /// grounding.
    pub fn new(node: NodeId, source: &str, params: ProgramParams) -> Result<Self, CologneError> {
        let parsed = parse_program(source)?;
        let localized_rules = localize_rules(&parsed.rules)?;
        let program = Program {
            goal: parsed.goal,
            vars: parsed.vars,
            rules: localized_rules,
        };
        let analysis = analyze(&program)?;
        let catalog = SchemaCatalog::derive(&program, &analysis);
        let mut engine = Engine::new(node);
        engine.set_schemas(catalog.schema_set());
        for (idx, rule) in program.rules.iter().enumerate() {
            if analysis.class_of(idx) == RuleClass::Regular {
                engine.add_rule(rule_to_datalog(rule, &params)?);
            }
        }
        let pipeline = SolvePipeline::new(&program, &analysis, &params);
        Ok(CologneInstance {
            node,
            program,
            analysis,
            catalog,
            params,
            engine,
            pipeline,
            cumulative_stats: SearchStats::default(),
            last_stats: None,
            solver_invocations: 0,
            last_report: None,
            remote_rows: BTreeMap::new(),
        })
    }

    /// The node this instance runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The compiled program (after localization).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program analysis (rule classes, solver tables).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Program parameters in effect.
    pub fn params(&self) -> &ProgramParams {
        &self.params
    }

    /// Mutable access to the parameters (e.g. to change thresholds between
    /// solver invocations when exploring policy variants). Invalidates the
    /// cached [`crate::GroundingPlan`], which is rebuilt on the next solver
    /// invocation.
    pub fn params_mut(&mut self) -> &mut ProgramParams {
        self.pipeline.invalidate();
        self.last_report = None;
        &mut self.params
    }

    /// Snapshot of the grounding-pipeline counters (plan builds, full
    /// rebuilds, incremental builds) — the one observability surface for
    /// plan caching and incremental re-optimization, shared with
    /// [`SolvePipeline::stats`].
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// The engine's accumulated delta summary since the last grounding
    /// (consumed — and reset — by the next solver invocation).
    pub fn pending_delta(&self) -> &cologne_datalog::DeltaSummary {
        self.engine.delta_summary()
    }

    /// Total solver statistics accumulated over all invocations.
    pub fn cumulative_solver_stats(&self) -> &SearchStats {
        &self.cumulative_stats
    }

    /// Solver statistics of the most recent [`CologneInstance::invoke_solver`]
    /// (nodes, fails, propagations, max depth, ...), or `None` before the
    /// first invocation. Trivial invocations report all-zero stats. This is
    /// the per-invocation "solver effort" figure the paper's Table 2
    /// discussion reports alongside each COP execution.
    pub fn last_solver_stats(&self) -> Option<&SearchStats> {
        self.last_stats.as_ref()
    }

    /// Number of times the solver has been invoked.
    pub fn solver_invocations(&self) -> u64 {
        self.solver_invocations
    }

    /// The search configuration (branching/value heuristics) used for COP
    /// solving. Time and node limits are taken from
    /// [`CologneInstance::params`] at each invocation, not from here.
    pub fn search_config(&self) -> &cologne_solver::SearchConfig {
        self.pipeline.search_config()
    }

    /// The merged solver-configuration view: the solver knobs of
    /// [`CologneInstance::params`] (limits, branching, mode, warm start,
    /// delta grounding) plus the search-shape knobs historically reachable
    /// only through the `search_config_mut` backdoor (value choice, split
    /// threshold) in one coherent structure.
    pub fn solver_settings(&self) -> SolverSettings {
        SolverSettings::of_instance(&self.params, self.pipeline.search_config())
    }

    /// Validate and apply a [`SolverSettings`] view: equivalent to the old
    /// `params_mut`-then-`search_config_mut` dance, with eager validation
    /// and a single invalidation. Like [`CologneInstance::params_mut`], this
    /// invalidates the cached grounding plan and every cross-invocation
    /// cache; the next invocation is a full rebuild.
    pub fn apply_solver_settings(&mut self, settings: &SolverSettings) -> Result<(), CologneError> {
        settings.validate()?;
        self.pipeline.invalidate();
        self.last_report = None;
        settings.apply_to_params(&mut self.params);
        let search = self.pipeline.search_config_mut();
        search.value_choice = settings.value_choice;
        search.split_threshold = settings.split_threshold;
        Ok(())
    }

    /// Set the search-shape knobs without invalidating the pipeline (used by
    /// the deployment builder before the first grounding exists).
    pub(crate) fn set_search_shape(
        &mut self,
        value_choice: cologne_solver::ValueChoice,
        split_threshold: Option<u64>,
    ) {
        let search = self.pipeline.search_config_mut();
        search.value_choice = value_choice;
        search.split_threshold = split_threshold;
    }

    /// Statistics of the underlying Datalog engine.
    pub fn engine_stats(&self) -> &cologne_datalog::EngineStats {
        self.engine.stats()
    }

    // ----- relations (typed handles + borrowing reads) ----------------------

    /// The relation schemas derived from the compiled (localized) program:
    /// one entry per relation the program mentions, with per-column kinds,
    /// the location-specifier position and the solver-attribute columns.
    pub fn schema_catalog(&self) -> &SchemaCatalog {
        &self.catalog
    }

    /// A schema-checked handle on one relation — the typed write surface.
    ///
    /// The name is validated eagerly: a relation the program never mentions
    /// is rejected here with [`CologneError::UnknownRelation`] (including a
    /// did-you-mean suggestion), instead of silently creating a table no
    /// rule will ever read. All writes through the handle validate arity and
    /// column kinds against the derived schema.
    pub fn relation(&mut self, relation: &str) -> Result<RelationHandle<'_>, CologneError> {
        if !self.catalog.contains(relation) {
            return Err(CologneError::UnknownRelation {
                relation: relation.to_string(),
                suggestion: self
                    .catalog
                    .suggest(relation)
                    .or_else(|| self.engine.suggest_relation(relation)),
            });
        }
        Ok(RelationHandle::new(self, relation))
    }

    /// Validate one tuple against the derived schema of `relation`.
    pub(crate) fn check_tuple(&self, relation: &str, tuple: &Tuple) -> Result<(), CologneError> {
        if let Some(schema) = self.catalog.get(relation) {
            schema
                .check(tuple)
                .map_err(cologne_datalog::IngestError::from)?;
        }
        Ok(())
    }

    /// Borrowing iterator over the visible tuples of a relation, in
    /// unspecified order (sort, or use [`RelationHandle::snapshot`], when a
    /// deterministic order matters). No per-call allocation or cloning.
    pub fn scan(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.engine.scan(relation)
    }

    /// Borrowed names of every relation the engine has seen, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.engine.relation_names_ref()
    }

    /// True if a relation contains the tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.engine.contains(relation, tuple)
    }

    // ----- distribution ------------------------------------------------------

    /// Accept a tuple shipped by peer `from`, validating it against the
    /// program's relation schemas first: a remote tuple naming an unknown
    /// relation, or violating the relation's arity/kinds, is rejected with
    /// an error instead of corrupting local state.
    ///
    /// Ingest is idempotent per sender. At-least-once delivery redelivers —
    /// duplicated packets, rejoin resyncs — and the engine underneath counts
    /// multiplicities, so naively re-inserting an assertion this peer
    /// already delivered would inflate the count and leave the row visible
    /// after its one legitimate retraction. Re-assertions and retractions of
    /// rows the peer never asserted are therefore no-ops; a row asserted by
    /// several distinct peers keeps one multiplicity per asserting peer.
    pub fn try_receive(&mut self, from: NodeId, remote: &RemoteTuple) -> Result<(), CologneError> {
        // The engine carries the schemas derived from this program (installed
        // at construction), so its validation is the single gate here.
        self.engine
            .validate(&remote.relation, &remote.tuple)
            .map_err(CologneError::from)?;
        // Track what this node only knows because a peer shipped it — the
        // state a crash must drop — and apply only the visibility changes.
        let rows = self.remote_rows.entry(remote.relation.clone()).or_default();
        if remote.insert {
            if rows.entry(remote.tuple.clone()).or_default().insert(from) {
                self.engine
                    .try_insert(&remote.relation, remote.tuple.clone())
                    .map_err(CologneError::from)?;
            }
        } else if let Some(senders) = rows.get_mut(&remote.tuple) {
            if senders.remove(&from) {
                if senders.is_empty() {
                    rows.remove(&remote.tuple);
                }
                self.engine
                    .try_delete(&remote.relation, remote.tuple.clone())
                    .map_err(CologneError::from)?;
            }
        }
        Ok(())
    }

    /// Simulate a process crash and restart: every tuple ingested from peers
    /// is retracted (local base facts survive — a restarted process re-reads
    /// its local configuration), the rules re-run so derived state unwinds,
    /// and all cross-invocation solver caches are dropped. Tuples the crash
    /// produced for other nodes are discarded — a dead node sends nothing.
    /// The driver re-syncs the instance from its neighbors on rejoin.
    pub fn crash_reset(&mut self) {
        let remote = std::mem::take(&mut self.remote_rows);
        for (relation, rows) in remote {
            for (row, senders) in rows {
                // One engine multiplicity per asserting peer (see
                // `remote_rows`), so unwind one retraction per peer. Only
                // tuples that passed validated ingest are tracked, so
                // retraction cannot fail; ignore errors defensively anyway.
                for _ in 0..senders.len() {
                    let _ = self.engine.try_delete(&relation, row.clone());
                }
            }
        }
        self.engine.run();
        let _ = self.engine.take_outbox();
        self.pipeline.forget();
        self.last_report = None;
    }

    /// Run the regular rules to a local fixpoint and return any tuples
    /// addressed to other nodes.
    pub fn run_rules(&mut self) -> Vec<RemoteTuple> {
        self.engine.run();
        self.engine.take_outbox()
    }

    // ----- solver invocation --------------------------------------------------

    /// Ground the solver rules against the current tables without solving
    /// (useful for inspection and benchmarking of the grounding step alone).
    /// The returned COP owns its model and can be solved directly with
    /// [`GroundedCop::solve`]; hand it back via
    /// [`CologneInstance::recycle`] to keep the arena reuse of the pipeline.
    pub fn ground_only(&mut self) -> Result<GroundedCop, CologneError> {
        self.engine.run();
        let delta = self.engine.take_delta_summary();
        // This grounding consumes the delta checkpoint, so the memoized
        // report of the last invoke_solver no longer matches what the next
        // clean-delta invocation would reuse: drop it.
        self.last_report = None;
        self.pipeline.ground(
            &self.program,
            &self.analysis,
            &self.params,
            &self.engine,
            Some(&delta),
        )
    }

    /// Reclaim a [`GroundedCop`] obtained from
    /// [`CologneInstance::ground_only`] so the next grounding reuses its
    /// model arena and symbol table ([`CologneInstance::invoke_solver`] does
    /// this internally).
    pub fn recycle(&mut self, cop: GroundedCop) {
        self.pipeline.recycle(cop);
    }

    /// The paper's `invokeSolver`, staged through the [`SolvePipeline`]:
    /// ground the COP (reusing the cached plan and recycled model arena), run
    /// branch-and-bound in the pipeline's reused search space under the
    /// configured limits, materialize the result and re-run the rules.
    pub fn invoke_solver(&mut self) -> Result<SolveReport, CologneError> {
        let report = self.invoke_solver_inner(None)?;
        self.last_stats = Some(report.stats.clone());
        Ok(report)
    }

    /// [`CologneInstance::invoke_solver`] with a streaming
    /// [`SolveObserver`]: incumbents, restarts, LNS iterations, budget
    /// exhaustion and periodic progress are reported while the search runs,
    /// and the observer can cancel it cooperatively (the report then carries
    /// the best incumbent found so far and
    /// [`cologne_solver::SearchStats::cancelled`]).
    ///
    /// Cancellation never poisons the instance: every cross-invocation cache
    /// (retained COP, replay caches, warm memory, memoized report) is
    /// dropped, so the next invocation is a clean full rebuild.
    pub fn invoke_solver_with_observer(
        &mut self,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, CologneError> {
        let report = self.invoke_solver_inner(Some(observer))?;
        self.last_stats = Some(report.stats.clone());
        Ok(report)
    }

    fn invoke_solver_inner(
        &mut self,
        observer: Option<&mut dyn SolveObserver>,
    ) -> Result<SolveReport, CologneError> {
        self.engine.run();
        let delta = self.engine.take_delta_summary();
        let cop = self.pipeline.ground(
            &self.program,
            &self.analysis,
            &self.params,
            &self.engine,
            Some(&delta),
        )?;
        self.solver_invocations += 1;

        // Memoized re-solve: the grounding handed back the previous COP
        // untouched and re-solving would provably reproduce the previous
        // report — either that search completed (proved optimality or
        // infeasibility), or only deterministic limits (node/fail, no wall
        // clock) are configured. Re-apply the materialization (idempotent on
        // an unchanged database) and return the cached report with this
        // invocation's (empty) outgoing tuples. A wall-clock-limited
        // *incomplete* solve is never replayed: a retry gets a fresh budget
        // and may improve the incumbent.
        if self.pipeline.last_ground_was_reuse() {
            let replayable = self
                .last_report
                .as_ref()
                .is_some_and(|r| r.proven_optimal || self.params.solver_max_time.is_none());
            if replayable {
                let cached = self.last_report.clone().expect("checked above");
                let goal_relation = cop.goal_relation.clone();
                self.pipeline.recycle(cop);
                // Mirror the solve path exactly: trivial and infeasible
                // reports never materialized anything (and never drained the
                // outbox), so their replay must not either.
                let outgoing = if cached.feasible && !cached.trivial {
                    self.materialize(&cached.assignments, &goal_relation)
                } else {
                    Vec::new()
                };
                let report = SolveReport { outgoing, ..cached };
                self.last_report = Some(report.clone());
                return Ok(report);
            }
        }

        if cop.is_trivial() {
            self.pipeline.recycle(cop);
            let report = SolveReport::empty(true);
            self.last_report = Some(report.clone());
            return Ok(report);
        }
        let outcome = self.pipeline.solve_observed(&cop, &self.params, observer);
        self.cumulative_stats.merge(&outcome.stats);
        let cancelled = outcome.stats.cancelled;
        let Some(best) = outcome.best else {
            self.pipeline.recycle(cop);
            if cancelled {
                self.forget_after_cancellation();
            }
            let report = SolveReport {
                feasible: false,
                trivial: false,
                objective: None,
                proven_optimal: outcome.complete,
                stats: outcome.stats,
                certificate: outcome.certificate,
                assignments: BTreeMap::new(),
                outgoing: Vec::new(),
            };
            self.last_report = if cancelled {
                None
            } else {
                Some(report.clone())
            };
            return Ok(report);
        };

        // Materialize solver tables with concrete values and push the `var`
        // tables + goal relation back into the engine.
        let mut assignments: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
        for (name, rows) in &cop.solver_tables {
            let resolved: Vec<Tuple> = rows
                .iter()
                .map(|row| row.iter().map(|v| cop.resolve(v, &best)).collect())
                .collect();
            assignments.insert(name.clone(), resolved);
        }
        let objective = outcome
            .best_objective
            .or_else(|| cop.objective.map(|(_, obj)| best.value(obj)));
        let goal_relation = cop.goal_relation.clone();
        self.pipeline.recycle(cop);
        if cancelled {
            self.forget_after_cancellation();
        }
        let outgoing = self.materialize(&assignments, &goal_relation);

        let report = SolveReport {
            feasible: true,
            trivial: false,
            objective,
            proven_optimal: outcome.complete,
            stats: outcome.stats,
            certificate: outcome.certificate,
            assignments,
            outgoing,
        };
        self.last_report = if cancelled {
            None
        } else {
            Some(report.clone())
        };
        Ok(report)
    }

    /// Drop every cross-invocation cache after an observer cancelled a
    /// search mid-way: a cancelled solve is not reproducible, so nothing of
    /// it may seed the next invocation. The next grounding is a clean full
    /// rebuild.
    fn forget_after_cancellation(&mut self) {
        self.pipeline.forget();
        self.last_report = None;
    }

    /// Push the `var` tables and the goal relation of a solve back into the
    /// engine, run the regular rules to a fixpoint and collect the tuples
    /// addressed to other nodes.
    fn materialize(
        &mut self,
        assignments: &BTreeMap<String, Vec<Tuple>>,
        goal_relation: &Option<String>,
    ) -> Vec<RemoteTuple> {
        let mut to_materialize: Vec<String> = self
            .program
            .vars
            .iter()
            .map(|v| v.table.name.clone())
            .collect();
        if let Some(goal_rel) = goal_relation {
            to_materialize.push(goal_rel.clone());
        }
        for name in to_materialize {
            if let Some(rows) = assignments.get(&name) {
                self.engine.set_relation(&name, rows.clone());
            }
        }
        self.engine.run();
        self.engine.take_outbox()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::VarDomain;
    use cologne_datalog::Value;

    const ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
        d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
        c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
    "#;

    fn acloud_instance() -> CologneInstance {
        let params = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
        let mut inst = CologneInstance::new(NodeId(0), ACLOUD, params).unwrap();
        for (vid, cpu, mem) in [(1, 40, 4), (2, 20, 4), (3, 30, 4)] {
            inst.relation("vm")
                .unwrap()
                .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
                .unwrap();
        }
        for hid in [10, 11, 12] {
            inst.relation("host")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
                .unwrap();
            inst.relation("hostMemThres")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(16)])
                .unwrap();
        }
        inst
    }

    #[test]
    fn compiles_and_installs_regular_rules() {
        let inst = acloud_instance();
        assert_eq!(inst.node(), NodeId(0));
        // only r1 is a regular rule
        assert_eq!(inst.analysis().class_counts(), (1, 4, 2));
        assert_eq!(inst.program().rules.len(), 7);
    }

    #[test]
    fn invoke_solver_assigns_each_vm_exactly_once() {
        let mut inst = acloud_instance();
        let report = inst.invoke_solver().unwrap();
        assert!(report.feasible);
        assert!(!report.trivial);
        assert!(report.proven_optimal);
        let assign = report.table("assign");
        assert_eq!(assign.len(), 9); // 3 VMs x 3 hosts
        for vid in [1i64, 2, 3] {
            let placements: i64 = assign
                .iter()
                .filter(|r| r[0].as_int() == Some(vid))
                .map(|r| r[2].as_int().unwrap())
                .sum();
            assert_eq!(placements, 1, "VM {vid} must run on exactly one host");
        }
        // the optimum spreads the three VMs over three hosts
        let used_hosts: std::collections::BTreeSet<i64> = assign
            .iter()
            .filter(|r| r[2].as_int() == Some(1))
            .map(|r| r[1].as_int().unwrap())
            .collect();
        assert_eq!(used_hosts.len(), 3);
        // the assignment was materialized back into the engine
        assert_eq!(inst.scan("assign").count(), 9);
        assert_eq!(inst.solver_invocations(), 1);
        assert!(inst.cumulative_solver_stats().nodes > 0);
    }

    #[test]
    fn solver_respects_workload_changes_incrementally() {
        let mut inst = acloud_instance();
        inst.invoke_solver().unwrap();
        // a new VM arrives
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(4), Value::Int(50), Value::Int(4)])
            .unwrap();
        let report = inst.invoke_solver().unwrap();
        let assign = report.table("assign");
        assert_eq!(assign.len(), 12); // 4 VMs x 3 hosts
        let vm4: i64 = assign
            .iter()
            .filter(|r| r[0].as_int() == Some(4))
            .map(|r| r[2].as_int().unwrap())
            .sum();
        assert_eq!(vm4, 1);
    }

    #[test]
    fn empty_workload_is_trivial() {
        let params = ProgramParams::new();
        let mut inst = CologneInstance::new(NodeId(0), ACLOUD, params).unwrap();
        let report = inst.invoke_solver().unwrap();
        assert!(report.trivial);
        assert!(report.feasible);
    }

    #[test]
    fn infeasible_constraints_reported() {
        // memory threshold 0: no VM can be placed anywhere, but each VM must
        // be assigned exactly once -> infeasible.
        let params = ProgramParams::new();
        let mut inst = CologneInstance::new(NodeId(0), ACLOUD, params).unwrap();
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(40), Value::Int(4)])
            .unwrap();
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(10), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(10), Value::Int(0)])
            .unwrap();
        let report = inst.invoke_solver().unwrap();
        assert!(!report.feasible);
        assert!(report.assignments.is_empty());
    }

    #[test]
    fn node_limit_prevents_optimality_proof() {
        let params = ProgramParams::new().with_solver_node_limit(Some(3));
        let mut inst = CologneInstance::new(NodeId(0), ACLOUD, params).unwrap();
        for vid in 0..6i64 {
            inst.relation("vm")
                .unwrap()
                .insert(vec![Value::Int(vid), Value::Int(10 + vid), Value::Int(1)])
                .unwrap();
        }
        for hid in [10, 11] {
            inst.relation("host")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
                .unwrap();
            inst.relation("hostMemThres")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(100)])
                .unwrap();
        }
        let report = inst.invoke_solver().unwrap();
        assert!(!report.proven_optimal);
    }

    #[test]
    fn facts_can_be_updated_and_queried() {
        let mut inst = acloud_instance();
        inst.run_rules();
        assert_eq!(inst.scan("vm").count(), 3);
        inst.relation("vm")
            .unwrap()
            .delete(vec![Value::Int(3), Value::Int(30), Value::Int(4)])
            .unwrap();
        inst.run_rules();
        assert_eq!(inst.scan("vm").count(), 2);
        inst.relation("vm")
            .unwrap()
            .set(vec![vec![Value::Int(9), Value::Int(5), Value::Int(1)]])
            .unwrap();
        inst.run_rules();
        assert_eq!(inst.relation("vm").unwrap().snapshot().len(), 1);
        assert!(inst.contains("vm", &vec![Value::Int(9), Value::Int(5), Value::Int(1)]));
        assert!(inst.engine_stats().external_deltas > 0);
        assert!(inst.relation_names().contains(&"vm"));
    }

    #[test]
    fn malformed_remote_tuple_is_rejected_not_ingested() {
        let mut inst = acloud_instance();
        inst.run_rules();
        let before = inst.scan("vm").count();
        let err = inst.try_receive(
            NodeId(1),
            &cologne_datalog::RemoteTuple {
                dest: NodeId(0),
                relation: "vm".into(),
                tuple: vec![Value::Int(1)],
                insert: true,
            },
        );
        assert!(err.is_err(), "arity-1 tuple must fail the vm schema");
        inst.run_rules();
        assert_eq!(inst.scan("vm").count(), before);
    }
}
