//! Grounding of Colog solver rules into a constraint-optimization model.
//!
//! This is the core of the Cologne query processor (Sec. 5.3–5.4 of the
//! paper): solver derivation and constraint rules are evaluated bottom-up
//! against the materialized regular tables, but the attributes whose values
//! the solver must determine flow through the evaluation *symbolically* —
//! each one is (or maps to) an integer variable of the [`cologne_solver`]
//! model, and the selection/aggregation expressions that mention them are
//! translated into solver constraints instead of being evaluated.
//!
//! # Plan / Run split
//!
//! Solver invocations recur on every monitoring epoch and after every input
//! delta, so grounding is staged into two explicit phases:
//!
//! * [`GroundingPlan`] — the **per-program** stage, built once per compiled
//!   program (at [`crate::CologneInstance::new`] time) from the static
//!   [`Analysis`]. It caches everything that does not depend on table
//!   contents: the topological evaluation order of the solver derivation
//!   rules, the pre-assembled `head + body` element lists of the constraint
//!   rules, the solver-variable layout of each `var` declaration (which
//!   argument positions are solver attributes, and their domain from
//!   [`ProgramParams`]), and the goal relation/position. The plan is only
//!   rebuilt when the parameters change.
//! * `GroundingRun` (private) — the **per-invocation** stage: joins the rule bodies
//!   against the current engine state, allocates solver variables and posts
//!   constraints, producing a [`GroundedCop`]. Its model and symbol table are
//!   taken from a [`GroundingScratch`], which recycles the solver arena
//!   (via [`Model::reset`]) across invocations instead of reallocating it.
//!
//! The free function [`ground`] composes the stages for one-shot callers;
//! [`crate::SolvePipeline`] holds plan + scratch for the repeated-invocation
//! hot path.
//!
//! # Delta-aware grounding
//!
//! Solver invocations recur after every input delta, and most deltas touch a
//! small slice of the database. The plan therefore records the **relevant
//! relations** of the program — every engine relation the grounding reads:
//! the `forall` relations of the `var` declarations, the non-solver-table
//! body predicates of the solver derivation and constraint rules, and the
//! goal relation when it is a regular table. Together with the engine's
//! [`DeltaSummary`] (what changed since the previous grounding) this drives
//! two reuse levels in [`GroundingPlan::ground`]:
//!
//! * **Whole-COP reuse** — when no relevant relation is dirty, the previous
//!   [`GroundedCop`] is byte-identical to what a re-grounding would produce;
//!   [`crate::SolvePipeline`] retains it across invocations and hands it
//!   back without running any stage (see
//!   [`crate::PipelineStats::incremental_builds`]).
//! * **Clean `var`-declaration replay** — a declaration whose `forall`
//!   relation is clean produces exactly the rows and variables of the
//!   previous run. The [`GroundingScratch`] caches each declaration's rows
//!   and variable names; a clean declaration is replayed from the cache
//!   (re-allocating its variables in the same order, patching the symbolic
//!   row attributes) instead of re-joining the `forall` table and
//!   re-formatting variable names. Dirty declarations and all derivation /
//!   constraint rules are re-grounded live.
//!
//! Both levels preserve a hard invariant: **an incremental grounding
//! produces a model byte-identical to a from-scratch grounding** of the same
//! engine state — same variables in the same order with the same names and
//! domains, same constraints, same solver tables. The delta summary only
//! decides which work can be skipped, never what is produced. Cleanliness is
//! tracked per relation by visibility (multiplicity-only changes stay
//! clean), and a parameter change invalidates every cache because domains,
//! constants and rule layouts may shift (see
//! [`crate::PipelineStats::full_rebuilds`]).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use cologne_colog::{
    Analysis, Arg, BodyElem, CExpr, COp, GoalKind, Predicate, Program, ProgramParams, RuleClass,
    RuleDecl, VarDomain,
};
use cologne_datalog::{AggFunc, Bindings, DeltaSummary, Engine, SymId, Tuple, Value};
use cologne_solver::{LinExpr, Model, SearchConfig, SearchOutcome, SearchSpace, VarId};

use crate::error::CologneError;

/// The result of grounding one COP invocation.
pub struct GroundedCop {
    /// The constraint model, ready to be solved.
    pub model: Model,
    /// Mapping from symbolic attribute ids ([`Value::Sym`]) to model variables.
    pub syms: Vec<VarId>,
    /// Contents of every solver table produced during grounding. Tuples may
    /// contain `Value::Sym` attributes referring into `syms`.
    pub solver_tables: BTreeMap<String, Vec<Tuple>>,
    /// The optimization objective, if the program declares one and the goal
    /// relation is non-empty.
    pub objective: Option<(GoalKind, VarId)>,
    /// Name of the goal relation (for materialization).
    pub goal_relation: Option<String>,
}

impl GroundedCop {
    /// True when the COP has no decision variables (nothing to solve).
    pub fn is_trivial(&self) -> bool {
        self.model.num_vars() == 0
    }

    /// Resolve a grounded value against a solver assignment.
    pub fn resolve(&self, value: &Value, assignment: &cologne_solver::Assignment) -> Value {
        match value {
            Value::Sym(sym) => Value::Int(assignment.value(self.syms[sym.0 as usize])),
            other => other.clone(),
        }
    }

    /// Run the search stage appropriate for the grounded objective:
    /// branch-and-bound for `minimize`/`maximize`, satisfaction search
    /// otherwise.
    pub fn solve(&self, config: &SearchConfig) -> SearchOutcome {
        let mut space = SearchSpace::new();
        self.solve_in(config, &mut space)
    }

    /// [`GroundedCop::solve`] reusing a caller-provided [`SearchSpace`]
    /// (trail-backed domain store, propagation queue, decision stack), so
    /// repeated COP invocations share one set of search allocations.
    /// [`crate::SolvePipeline::solve`] drives this with the space held by
    /// its [`GroundingScratch`].
    pub fn solve_in(&self, config: &SearchConfig, space: &mut SearchSpace) -> SearchOutcome {
        self.solve_in_observed(config, space, None)
    }

    /// [`GroundedCop::solve_in`] with a streaming
    /// [`cologne_solver::SolveObserver`] receiving incumbents, restarts, LNS
    /// iterations, budget exhaustion and periodic progress while the search
    /// runs.
    pub fn solve_in_observed(
        &self,
        config: &SearchConfig,
        space: &mut SearchSpace,
        observer: Option<&mut dyn cologne_solver::SolveObserver>,
    ) -> SearchOutcome {
        let (objective, config) = match self.objective {
            Some((GoalKind::Minimize, obj)) => {
                (cologne_solver::Objective::Minimize(obj), config.clone())
            }
            Some((GoalKind::Maximize, obj)) => {
                (cologne_solver::Objective::Maximize(obj), config.clone())
            }
            // `satisfy` keeps the `Model::satisfy_in` semantics: find one
            // solution unless the caller asked for more.
            Some((GoalKind::Satisfy, _)) | None => (
                cologne_solver::Objective::Satisfy,
                SearchConfig {
                    max_solutions: Some(config.max_solutions.unwrap_or(1)),
                    ..config.clone()
                },
            ),
        };
        cologne_solver::solve_in_observed(&self.model, objective, &config, space, observer)
    }
}

/// Ground the solver rules of `program` against the current state of
/// `engine`, producing a constraint model.
///
/// One-shot convenience composing the two stages: builds a fresh
/// [`GroundingPlan`] and runs it with a fresh [`GroundingScratch`]. Repeated
/// callers (the `invokeSolver` hot path) should hold a
/// [`crate::SolvePipeline`] instead, which reuses both across invocations.
pub fn ground(
    program: &Program,
    analysis: &Analysis,
    params: &ProgramParams,
    engine: &Engine,
) -> Result<GroundedCop, CologneError> {
    let plan = GroundingPlan::build(program, analysis, params);
    plan.ground(
        program,
        analysis,
        params,
        engine,
        &mut GroundingScratch::default(),
    )
}

// ---------------------------------------------------------------------------
// Per-program stage: the grounding plan
// ---------------------------------------------------------------------------

/// Per-`var`-declaration layout cached by the plan.
#[derive(Debug, Clone)]
pub(crate) struct VarPlan {
    /// Index into `program.vars`.
    decl: usize,
    /// Name of the declared solver table.
    pub(crate) table: String,
    /// Name of the `forall` relation the declaration joins against (its
    /// cleanliness decides whether the declaration can be replayed).
    forall_relation: String,
    /// Domain of the declared solver variables (from [`ProgramParams`]).
    domain: VarDomain,
    /// For every argument position of the declared table: is it a solver
    /// attribute (true) or bound by the `forall` predicate (false)?
    pub(crate) is_solver_position: Vec<bool>,
}

/// Goal information cached by the plan.
#[derive(Debug, Clone)]
struct GoalPlan {
    kind: GoalKind,
    relation: String,
    /// Argument position of the goal variable inside the goal relation
    /// (`None` for `satisfy` goals, which have no objective attribute).
    position: Option<usize>,
}

/// The per-program grounding stage: everything the per-invocation run needs that
/// does not depend on the current table contents. Built once per compiled
/// program and reused across `invokeSolver` executions.
#[derive(Debug, Clone)]
pub struct GroundingPlan {
    /// Solver derivation rules, topologically ordered by head/body relation
    /// dependencies (source order inside cycles).
    deriv_order: Vec<usize>,
    /// Solver constraint rules with their pre-assembled `head + body`
    /// element list (built once instead of per invocation).
    constraint_elems: Vec<(usize, Vec<BodyElem>)>,
    /// Layout of each `var` declaration.
    pub(crate) var_plans: Vec<VarPlan>,
    /// Goal relation and objective position.
    goal: Option<GoalPlan>,
    /// Every engine relation the grounding reads (the delta-awareness
    /// contract — see the module docs): `forall` relations, non-solver-table
    /// body predicates of solver rules, and the goal relation when regular.
    relevant_relations: BTreeSet<String>,
}

impl GroundingPlan {
    /// Build the plan for a program from its static analysis.
    pub fn build(program: &Program, analysis: &Analysis, params: &ProgramParams) -> Self {
        let var_plans = program
            .vars
            .iter()
            .enumerate()
            .map(|(decl, vd)| {
                let solver_positions = vd.solver_positions();
                VarPlan {
                    decl,
                    table: vd.table.name.clone(),
                    forall_relation: vd.forall.name.clone(),
                    domain: params.var_domain(&vd.table.name),
                    is_solver_position: (0..vd.table.args.len())
                        .map(|i| solver_positions.contains(&i))
                        .collect(),
                }
            })
            .collect();
        let mut relevant_relations: BTreeSet<String> = program
            .vars
            .iter()
            .map(|vd| vd.forall.name.clone())
            .collect();
        for idx in analysis
            .rules_in_class(RuleClass::SolverDerivation)
            .chain(analysis.rules_in_class(RuleClass::SolverConstraint))
        {
            for name in program.rules[idx].body_relations() {
                if !analysis.solver_tables.is_solver_table(name) {
                    relevant_relations.insert(name.to_string());
                }
            }
        }
        if let Some(goal) = &program.goal {
            if !analysis.solver_tables.is_solver_table(&goal.relation.name) {
                relevant_relations.insert(goal.relation.name.clone());
            }
        }
        let constraint_elems = analysis
            .rules_in_class(RuleClass::SolverConstraint)
            .map(|idx| {
                let rule = &program.rules[idx];
                // head -> body : for every grounding of the head joined with
                // the body predicates, the body expressions must hold.
                let mut elems: Vec<BodyElem> = Vec::with_capacity(rule.body.len() + 1);
                elems.push(BodyElem::Pred(rule.head.clone()));
                elems.extend(rule.body.iter().cloned());
                (idx, elems)
            })
            .collect();
        let goal = program.goal.as_ref().map(|goal| GoalPlan {
            kind: goal.kind,
            relation: goal.relation.name.clone(),
            position: (goal.kind != GoalKind::Satisfy).then(|| {
                goal.relation
                    .args
                    .iter()
                    .position(|a| a.var_name() == Some(goal.var.as_str()))
                    .expect("goal variable validated by analysis")
            }),
        });
        GroundingPlan {
            deriv_order: derivation_rule_order(program, analysis),
            constraint_elems,
            var_plans,
            goal,
            relevant_relations,
        }
    }

    /// Engine relations whose contents the grounding depends on. A delta
    /// summary touching none of them means a re-grounding would reproduce
    /// the previous [`GroundedCop`] byte for byte.
    pub fn relevant_relations(&self) -> impl Iterator<Item = &str> {
        self.relevant_relations.iter().map(String::as_str)
    }

    /// True when any relation the grounding reads is dirty in `delta` — a
    /// retained [`GroundedCop`] from before the summary's window can only be
    /// reused when this is false.
    pub fn is_affected_by(&self, delta: &DeltaSummary) -> bool {
        delta
            .dirty_relations()
            .any(|rel| self.relevant_relations.contains(rel))
    }

    /// Run the per-invocation stage against the current engine state,
    /// drawing the model and symbol table from `scratch`.
    ///
    /// `program`, `analysis` and `params` must be the exact values this plan
    /// was [`GroundingPlan::build`]t from: the plan caches rule indices,
    /// var-decl layouts and parameter-derived domains, so passing a
    /// different program panics (index out of bounds) or grounds stale
    /// cached layouts. [`crate::SolvePipeline`] maintains this invariant
    /// automatically — prefer it over calling this directly.
    pub fn ground(
        &self,
        program: &Program,
        analysis: &Analysis,
        params: &ProgramParams,
        engine: &Engine,
        scratch: &mut GroundingScratch,
    ) -> Result<GroundedCop, CologneError> {
        // One-shot callers never replay, so capturing replay caches would
        // be pure overhead: skip it.
        self.ground_inner(program, analysis, params, engine, scratch, None, false)
    }

    /// [`GroundingPlan::ground`] with a delta summary covering everything
    /// that changed in `engine` since the previous grounding with this same
    /// `scratch`: `var` declarations whose `forall` relation is clean are
    /// replayed from the scratch's caches instead of re-joined (see the
    /// module docs), and the caches are refreshed for the next run. Passing
    /// `None` (or a scratch without caches) grounds everything live; the
    /// output is identical either way.
    pub fn ground_delta(
        &self,
        program: &Program,
        analysis: &Analysis,
        params: &ProgramParams,
        engine: &Engine,
        scratch: &mut GroundingScratch,
        delta: Option<&DeltaSummary>,
    ) -> Result<GroundedCop, CologneError> {
        self.ground_inner(program, analysis, params, engine, scratch, delta, true)
    }

    /// Shared body of [`GroundingPlan::ground`] / [`GroundingPlan::ground_delta`]:
    /// `capture` controls whether `var`-declaration replay caches are
    /// maintained in `scratch` (only delta-aware callers ever read them).
    #[allow(clippy::too_many_arguments)]
    fn ground_inner(
        &self,
        program: &Program,
        analysis: &Analysis,
        params: &ProgramParams,
        engine: &Engine,
        scratch: &mut GroundingScratch,
        delta: Option<&DeltaSummary>,
        capture: bool,
    ) -> Result<GroundedCop, CologneError> {
        debug_assert!(
            self.var_plans.len() == program.vars.len()
                && self
                    .deriv_order
                    .iter()
                    .chain(self.constraint_elems.iter().map(|(i, _)| i))
                    .all(|&i| i < program.rules.len()),
            "GroundingPlan used with a program it was not built from"
        );
        scratch.var_caches.resize_with(program.vars.len(), || None);
        let mut run = GroundingRun {
            plan: self,
            program,
            analysis,
            params,
            engine,
            delta,
            capture,
            var_caches: &mut scratch.var_caches,
            model: std::mem::take(&mut scratch.model),
            syms: std::mem::take(&mut scratch.syms),
            solver_tables: BTreeMap::new(),
            table_cache: RefCell::new(HashMap::new()),
        };
        run.ground_var_decls()?;
        run.ground_derivation_rules()?;
        run.ground_constraint_rules()?;
        let (objective, goal_relation) = run.build_objective()?;
        Ok(GroundedCop {
            model: run.model,
            syms: run.syms,
            solver_tables: run.solver_tables,
            objective,
            goal_relation,
        })
    }
}

/// Topological order of solver derivation rules by head/body relation
/// dependencies; falls back to source order inside cycles.
fn derivation_rule_order(program: &Program, analysis: &Analysis) -> Vec<usize> {
    let deriv: Vec<usize> = analysis
        .rules_in_class(RuleClass::SolverDerivation)
        .collect();
    let head_of = |i: usize| program.rules[i].head.name.as_str();
    let mut order: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = deriv;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next_remaining = Vec::new();
        for &i in &remaining {
            let body_rels = program.rules[i].body_relations();
            let depends_on_pending = remaining
                .iter()
                .any(|&j| j != i && body_rels.contains(&head_of(j)));
            if depends_on_pending {
                next_remaining.push(i);
            } else {
                order.push(i);
                progressed = true;
            }
        }
        if !progressed {
            // cycle: keep source order for what is left
            order.extend(next_remaining.iter().copied());
            break;
        }
        remaining = next_remaining;
    }
    order
}

/// Reusable per-invocation allocations: the solver model arena, the
/// symbolic-attribute table, and the [`SearchSpace`] (trail-backed domain
/// store + propagation queue + decision stack) the COP is searched in.
/// The grounding run takes the model and symbol table at the start of an
/// invocation; [`GroundingScratch::recycle`] reclaims them (resetting the
/// model in place) once the caller is done with the [`GroundedCop`]. The
/// search space is lent out per solve by [`crate::SolvePipeline::solve`] and
/// keeps its trail, store and queue allocations across invocations.
#[derive(Default)]
pub struct GroundingScratch {
    model: Model,
    syms: Vec<VarId>,
    pub(crate) space: SearchSpace,
    /// Per-`var`-declaration replay caches (see [`VarDeclCache`]), refreshed
    /// on every grounding. Cleared whenever the parameters change — a cache
    /// is only meaningful against the plan it was captured under.
    pub(crate) var_caches: Vec<Option<VarDeclCache>>,
}

impl GroundingScratch {
    /// Reclaim the model and symbol table of a finished invocation so the
    /// next one reuses their allocations instead of growing fresh ones.
    /// (The search space never leaves the scratch, so it needs no explicit
    /// reclaiming.)
    pub fn recycle(&mut self, cop: GroundedCop) {
        let GroundedCop {
            mut model,
            mut syms,
            ..
        } = cop;
        model.reset();
        syms.clear();
        self.model = model;
        self.syms = syms;
    }

    /// Drop every cross-invocation replay cache (parameters changed, or an
    /// aborted grounding left them out of sync with the engine checkpoint).
    pub(crate) fn clear_caches(&mut self) {
        self.var_caches.clear();
    }
}

/// Replay cache of one `var` declaration: everything its grounding produced
/// last time — the variable names (in allocation order) and the emitted
/// solver-table rows, whose [`Value::Sym`] attributes index the contiguous
/// symbol block starting at `sym_start`. Replaying allocates the same
/// variables in the same order (so the model stays byte-identical to a live
/// grounding) while skipping the `forall` join and the per-variable name
/// formatting.
#[derive(Debug, Clone)]
pub(crate) struct VarDeclCache {
    /// First symbol id the declaration allocated when the cache was taken.
    sym_start: usize,
    /// Names of the declaration's variables, in allocation order.
    names: Vec<String>,
    /// Rows emitted into the declared solver table.
    rows: Vec<Tuple>,
}

/// Objective of a grounded COP (`None` when there is nothing to optimize)
/// plus the goal relation name for materialization.
type ObjectiveSpec = (Option<(GoalKind, VarId)>, Option<String>);

/// Intermediate translation result for an expression over (possibly
/// symbolic) bindings.
enum SymVal {
    /// A fully-known integer.
    Concrete(i64),
    /// A linear expression over solver variables.
    Linear(LinExpr),
    /// A 0/1 solver variable carrying the truth value of a comparison.
    Bool(VarId),
}

/// The per-invocation grounding stage: evaluates the plan's rule schedule
/// against the current engine state, producing model variables, constraints
/// and solver tables. Short-lived — one value per `invokeSolver` execution.
struct GroundingRun<'a> {
    plan: &'a GroundingPlan,
    program: &'a Program,
    analysis: &'a Analysis,
    params: &'a ProgramParams,
    engine: &'a Engine,
    /// What changed since the previous grounding (`None` = assume everything
    /// did). Only consulted for `var`-declaration replay.
    delta: Option<&'a DeltaSummary>,
    /// Whether to maintain the replay caches (false for one-shot callers
    /// that will never replay them).
    capture: bool,
    /// Replay caches, one slot per `var` declaration (refreshed as we go).
    var_caches: &'a mut Vec<Option<VarDeclCache>>,
    model: Model,
    syms: Vec<VarId>,
    solver_tables: BTreeMap<String, Vec<Tuple>>,
    /// Per-run memo of engine tables: the engine is immutable for the
    /// duration of a grounding, and the same relation is read once per rule
    /// that mentions it, so sorting and cloning it each time is pure waste
    /// on large groundings. Solver tables are never cached here — they grow
    /// while the run progresses.
    table_cache: RefCell<HashMap<String, Rc<Vec<Tuple>>>>,
}

impl<'a> GroundingRun<'a> {
    fn new_sym(&mut self, var: VarId) -> Value {
        self.syms.push(var);
        Value::Sym(SymId((self.syms.len() - 1) as u32))
    }

    fn sym_var(&self, id: SymId) -> VarId {
        self.syms[id.0 as usize]
    }

    fn is_solver_table(&self, relation: &str) -> bool {
        self.analysis.solver_tables.is_solver_table(relation)
            || self.solver_tables.contains_key(relation)
    }

    fn table_tuples(&self, relation: &str) -> Rc<Vec<Tuple>> {
        if self.is_solver_table(relation) {
            Rc::new(
                self.solver_tables
                    .get(relation)
                    .cloned()
                    .unwrap_or_default(),
            )
        } else {
            if let Some(hit) = self.table_cache.borrow().get(relation) {
                return Rc::clone(hit);
            }
            let tuples = Rc::new(self.engine.tuples(relation));
            self.table_cache
                .borrow_mut()
                .insert(relation.to_string(), Rc::clone(&tuples));
            tuples
        }
    }

    // ----- var declarations -------------------------------------------------

    fn ground_var_decls(&mut self) -> Result<(), CologneError> {
        let plan = self.plan;
        let program = self.program;
        for vp in &plan.var_plans {
            // A declaration whose forall relation saw no visible change since
            // the previous grounding reproduces last run's output exactly:
            // replay it from the cache instead of re-joining.
            let clean = self.delta.is_some_and(|d| d.is_clean(&vp.forall_relation));
            if clean && self.var_caches[vp.decl].is_some() {
                self.replay_var_decl(vp);
                continue;
            }
            let vd = &program.vars[vp.decl];
            let domain = vp.domain;
            let sym_start = self.syms.len();
            let row_start = self.solver_tables.get(&vd.table.name).map_or(0, Vec::len);
            let forall_tuples = self.table_tuples(&vd.forall.name);
            for tuple in forall_tuples.iter() {
                let mut bindings = Bindings::new();
                if !match_predicate(&vd.forall, tuple, &mut bindings, self.params) {
                    continue;
                }
                let mut row = Vec::with_capacity(vd.table.args.len());
                for (i, arg) in vd.table.args.iter().enumerate() {
                    if vp.is_solver_position[i] {
                        let name = format!(
                            "{}[{}]",
                            vd.table.name,
                            tuple
                                .iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        );
                        let var = self.model.new_named_var(domain.lo, domain.hi, Some(name));
                        // `var`-declared solver attributes are the COP's
                        // decision variables; the LNS mode builds its
                        // neighborhoods from them (auxiliary variables made
                        // by aggregates/expressions stay unmarked — they are
                        // functionally determined by these).
                        self.model.mark_decision(var);
                        row.push(self.new_sym(var));
                    } else {
                        match arg {
                            Arg::Loc(v) | Arg::Var(v) => match bindings.get(v) {
                                Some(val) => row.push(val.clone()),
                                None => {
                                    return Err(CologneError::UnboundVariable {
                                        rule: format!("var {}", vd.table.name),
                                        variable: v.clone(),
                                    })
                                }
                            },
                            Arg::Const(lit) => {
                                row.push(crate::translate::literal_to_value(lit, self.params)?)
                            }
                            Arg::Agg(_, _) => {
                                return Err(CologneError::UnsupportedExpression {
                                    rule: format!("var {}", vd.table.name),
                                    detail: "aggregate in var declaration".into(),
                                })
                            }
                        }
                    }
                }
                self.solver_tables
                    .entry(vd.table.name.clone())
                    .or_default()
                    .push(row);
            }
            // Make sure the table exists even if the forall relation is empty.
            self.solver_tables.entry(vd.table.name.clone()).or_default();
            if self.capture {
                self.capture_var_decl(vp, sym_start, row_start);
            }
        }
        Ok(())
    }

    /// Refresh the replay cache of a declaration that was just grounded
    /// live: its rows sit at the tail of its solver table (from `row_start`)
    /// and its variables occupy the contiguous symbol block starting at
    /// `sym_start`.
    fn capture_var_decl(&mut self, vp: &VarPlan, sym_start: usize, row_start: usize) {
        let names: Vec<String> = self.syms[sym_start..]
            .iter()
            .map(|&var| {
                self.model
                    .var_name(var)
                    .expect("var-declared solver variables are named")
                    .to_string()
            })
            .collect();
        let rows = self
            .solver_tables
            .get(&vp.table)
            .map(|rows| rows[row_start..].to_vec())
            .unwrap_or_default();
        self.var_caches[vp.decl] = Some(VarDeclCache {
            sym_start,
            names,
            rows,
        });
    }

    /// Replay a clean declaration from its cache: allocate the cached
    /// variables in order (identical names, domain and decision marking to a
    /// live grounding) and re-emit the cached rows with their symbolic
    /// attributes shifted onto the freshly allocated symbol block.
    fn replay_var_decl(&mut self, vp: &VarPlan) {
        let cache = self.var_caches[vp.decl]
            .take()
            .expect("replay requires a cache");
        let new_start = self.syms.len();
        let domain = vp.domain;
        for name in &cache.names {
            let var = self
                .model
                .new_named_var(domain.lo, domain.hi, Some(name.clone()));
            self.model.mark_decision(var);
            self.syms.push(var);
        }
        let shift = |v: &Value| match v {
            Value::Sym(s) => {
                let local = s.0 as usize - cache.sym_start;
                Value::Sym(SymId((new_start + local) as u32))
            }
            other => other.clone(),
        };
        let rows: Vec<Tuple> = cache
            .rows
            .iter()
            .map(|row| row.iter().map(shift).collect())
            .collect();
        self.solver_tables
            .entry(vp.table.clone())
            .or_default()
            .extend(rows.iter().cloned());
        self.var_caches[vp.decl] = Some(VarDeclCache {
            sym_start: new_start,
            names: cache.names,
            rows,
        });
    }

    // ----- solver derivation rules -------------------------------------------

    fn ground_derivation_rules(&mut self) -> Result<(), CologneError> {
        let plan = self.plan;
        let program = self.program;
        for &idx in &plan.deriv_order {
            self.ground_derivation(&program.rules[idx])?;
        }
        Ok(())
    }

    fn ground_derivation(&mut self, rule: &RuleDecl) -> Result<(), CologneError> {
        let bindings_list = self.join_body(rule, &rule.body, false)?;
        if rule.head.has_aggregate() {
            self.emit_aggregate_head(rule, &bindings_list)?;
        } else {
            let mut rows = Vec::new();
            for b in &bindings_list {
                rows.push(self.instantiate_head(rule, b)?);
            }
            self.solver_tables
                .entry(rule.head.name.clone())
                .or_default()
                .extend(rows);
        }
        Ok(())
    }

    fn instantiate_head(
        &mut self,
        rule: &RuleDecl,
        bindings: &Bindings,
    ) -> Result<Tuple, CologneError> {
        let mut row = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                Arg::Loc(v) | Arg::Var(v) => match bindings.get(v) {
                    Some(val) => row.push(val.clone()),
                    None => {
                        return Err(CologneError::UnboundVariable {
                            rule: rule.label.clone(),
                            variable: v.clone(),
                        })
                    }
                },
                Arg::Const(lit) => row.push(crate::translate::literal_to_value(lit, self.params)?),
                Arg::Agg(_, _) => unreachable!("aggregate heads handled separately"),
            }
        }
        Ok(row)
    }

    fn emit_aggregate_head(
        &mut self,
        rule: &RuleDecl,
        bindings_list: &[Bindings],
    ) -> Result<(), CologneError> {
        // group key -> per-aggregate-column operand values
        let agg_args: Vec<(usize, AggFunc, String)> = rule
            .head
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a {
                Arg::Agg(f, v) => Some((i, *f, v.clone())),
                _ => None,
            })
            .collect();
        let mut groups: BTreeMap<Tuple, Vec<Vec<Value>>> = BTreeMap::new();
        for b in bindings_list {
            let mut key = Vec::new();
            let mut operands: Vec<Value> = Vec::with_capacity(agg_args.len());
            let mut ok = true;
            for arg in &rule.head.args {
                match arg {
                    Arg::Loc(v) | Arg::Var(v) => match b.get(v) {
                        Some(val) => key.push(val.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    Arg::Const(lit) => {
                        key.push(crate::translate::literal_to_value(lit, self.params)?)
                    }
                    Arg::Agg(_, v) => match b.get(v) {
                        Some(val) => operands.push(val.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok {
                return Err(CologneError::UnboundVariable {
                    rule: rule.label.clone(),
                    variable: "<head>".into(),
                });
            }
            let entry = groups
                .entry(key)
                .or_insert_with(|| vec![Vec::new(); agg_args.len()]);
            for (slot, v) in entry.iter_mut().zip(operands) {
                slot.push(v);
            }
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, operand_lists) in groups {
            let mut agg_values: Vec<Value> = Vec::with_capacity(agg_args.len());
            for ((_, func, _), operands) in agg_args.iter().zip(operand_lists.iter()) {
                agg_values.push(self.compute_aggregate(*func, operands)?);
            }
            // Interleave key values and aggregate values back into head order.
            let mut row = Vec::with_capacity(rule.head.args.len());
            let mut key_iter = key.into_iter();
            let mut agg_iter = agg_values.into_iter();
            for arg in &rule.head.args {
                match arg {
                    Arg::Agg(_, _) => row.push(agg_iter.next().expect("aggregate arity")),
                    _ => row.push(key_iter.next().expect("group-by arity")),
                }
            }
            rows.push(row);
        }
        self.solver_tables
            .entry(rule.head.name.clone())
            .or_default()
            .extend(rows);
        Ok(())
    }

    fn compute_aggregate(
        &mut self,
        func: AggFunc,
        operands: &[Value],
    ) -> Result<Value, CologneError> {
        let all_concrete = operands.iter().all(|v| !v.is_symbolic());
        if all_concrete {
            return Ok(func.compute(operands));
        }
        // Convert operands to solver variables (constants become fixed vars).
        let vars: Vec<VarId> = operands
            .iter()
            .map(|v| match v {
                Value::Sym(s) => self.sym_var(*s),
                other => {
                    let c = other.as_f64().unwrap_or(0.0).round() as i64;
                    self.model.new_const(c)
                }
            })
            .collect();
        let result_var = match func {
            AggFunc::Sum => {
                let terms: Vec<(i64, VarId)> = vars.iter().map(|&v| (1, v)).collect();
                self.model.linear_var(&terms, 0)
            }
            AggFunc::SumAbs => self.model.sum_abs_var(&vars),
            AggFunc::Count => return Ok(Value::Int(operands.len() as i64)),
            AggFunc::Unique => self.model.nvalues_var(&vars),
            AggFunc::Min => self.model.min_var(&vars),
            AggFunc::Max => self.model.max_var(&vars),
            // STDEV is lowered to the scaled integer variance
            // n·Σx² − (Σx)², which has the same argmin (see DESIGN.md).
            AggFunc::Stdev => self.model.scaled_variance_var(&vars),
        };
        Ok(self.new_sym(result_var))
    }

    // ----- solver constraint rules -------------------------------------------

    fn ground_constraint_rules(&mut self) -> Result<(), CologneError> {
        let plan = self.plan;
        let program = self.program;
        for (idx, elems) in &plan.constraint_elems {
            let rule = &program.rules[*idx];
            // Expressions are posted as hard constraints during the join
            // (force=true); the surviving bindings themselves are not needed.
            self.join_body(rule, elems, true)?;
        }
        Ok(())
    }

    // ----- body evaluation ----------------------------------------------------

    /// Join body elements against the database. `force` selects constraint
    /// semantics: expressions over solver attributes are posted as *hard*
    /// constraints and symbolic join conflicts become equality constraints.
    fn join_body(
        &mut self,
        rule: &RuleDecl,
        elems: &[BodyElem],
        force: bool,
    ) -> Result<Vec<Bindings>, CologneError> {
        let mut frontier = vec![Bindings::new()];
        for elem in elems {
            if frontier.is_empty() {
                break;
            }
            let mut next = Vec::new();
            match elem {
                BodyElem::Pred(pred) => {
                    let tuples = self.table_tuples(&pred.name);
                    for b in &frontier {
                        for t in tuples.iter() {
                            let mut nb = b.clone();
                            if self.match_with_symbolic(pred, t, &mut nb, force) {
                                next.push(nb);
                            }
                        }
                    }
                }
                BodyElem::Expr(expr) => {
                    for b in &frontier {
                        let mut nb = b.clone();
                        if self.apply_expression(rule, expr, &mut nb, force)? {
                            next.push(nb);
                        }
                    }
                }
                BodyElem::Assign(var, expr) => {
                    for b in &frontier {
                        let mut nb = b.clone();
                        let val = self.translate(rule, expr, &nb)?;
                        let value = self.symval_to_value(val);
                        nb.set(var, value);
                        next.push(nb);
                    }
                }
            }
            frontier = next;
        }
        Ok(frontier)
    }

    /// Match a predicate against a tuple. With `equate_symbolic` (constraint
    /// rules), a clash between an already-bound value and a tuple value where
    /// at least one side is symbolic is accepted and turned into an equality
    /// constraint — this is how `assign(X,Y,C) -> assign(Y,X,C)` (channel
    /// symmetry) is enforced.
    fn match_with_symbolic(
        &mut self,
        pred: &Predicate,
        tuple: &Tuple,
        bindings: &mut Bindings,
        equate_symbolic: bool,
    ) -> bool {
        if tuple.len() != pred.args.len() {
            return false;
        }
        for (arg, value) in pred.args.iter().zip(tuple.iter()) {
            match arg {
                Arg::Const(lit) => {
                    let Ok(expected) = crate::translate::literal_to_value(lit, self.params) else {
                        return false;
                    };
                    if &expected != value {
                        return false;
                    }
                }
                Arg::Loc(v) | Arg::Var(v) => match bindings.get(v).cloned() {
                    None => bindings.set(v, value.clone()),
                    Some(existing) if &existing == value => {}
                    Some(existing) => {
                        let symbolic = existing.is_symbolic() || value.is_symbolic();
                        if equate_symbolic && symbolic {
                            self.post_value_equality(&existing, value);
                        } else {
                            return false;
                        }
                    }
                },
                Arg::Agg(_, _) => return false,
            }
        }
        true
    }

    fn post_value_equality(&mut self, a: &Value, b: &Value) {
        let to_expr = |g: &Self, v: &Value| -> LinExpr {
            match v {
                Value::Sym(s) => LinExpr::var(g.sym_var(*s)),
                other => LinExpr::constant(other.as_f64().unwrap_or(0.0).round() as i64),
            }
        };
        let diff = to_expr(self, a).minus(&to_expr(self, b)).normalized();
        self.model.linear_eq(&diff.terms, -diff.constant);
    }

    // ----- expression translation ----------------------------------------------

    fn symval_to_value(&mut self, val: SymVal) -> Value {
        match val {
            SymVal::Concrete(c) => Value::Int(c),
            SymVal::Bool(v) => self.new_sym(v),
            SymVal::Linear(l) => {
                let n = l.normalized();
                if n.terms.is_empty() {
                    Value::Int(n.constant)
                } else if n.terms.len() == 1 && n.terms[0].0 == 1 && n.constant == 0 {
                    // Reuse the existing variable instead of creating an alias.
                    let var = n.terms[0].1;
                    self.new_sym(var)
                } else {
                    let var = self.model.expr_var(&n);
                    self.new_sym(var)
                }
            }
        }
    }

    fn symval_to_linear(&mut self, val: SymVal) -> LinExpr {
        match val {
            SymVal::Concrete(c) => LinExpr::constant(c),
            SymVal::Linear(l) => l,
            SymVal::Bool(v) => LinExpr::var(v),
        }
    }

    /// Apply a body expression to a binding. Returns whether the binding
    /// survives (concrete filters may reject it). Symbolic expressions either
    /// bind new solver variables (derivation rules, `C == V*Cpu`) or are
    /// posted as constraints.
    fn apply_expression(
        &mut self,
        rule: &RuleDecl,
        expr: &CExpr,
        bindings: &mut Bindings,
        force: bool,
    ) -> Result<bool, CologneError> {
        // Pattern 1: X == rhs with X unbound — bind X.
        if let CExpr::Bin(COp::Eq, lhs, rhs) = expr {
            for (var_side, other) in [(lhs, rhs), (rhs, lhs)] {
                if let CExpr::Var(x) = var_side.as_ref() {
                    if bindings.get(x).is_none() && self.params.constant(x).is_none() {
                        let val = self.translate(rule, other, bindings)?;
                        let bound = self.symval_to_value(val);
                        bindings.set(x, bound);
                        return Ok(true);
                    }
                }
            }
            // Pattern 2: (X == k) == rhs with X unbound — indicator variable.
            for (ind_side, other) in [(lhs, rhs), (rhs, lhs)] {
                if let CExpr::Bin(COp::Eq, a, b) = ind_side.as_ref() {
                    let (x, k) = match (a.as_ref(), b.as_ref()) {
                        (CExpr::Var(x), other_side) => (x, other_side),
                        (other_side, CExpr::Var(x)) => (x, other_side),
                        _ => continue,
                    };
                    if bindings.get(x).is_some() || self.params.constant(x).is_some() {
                        continue;
                    }
                    let k_val = match self.translate(rule, k, bindings)? {
                        SymVal::Concrete(c) => c,
                        _ => continue,
                    };
                    // X ranges over {0, k}; b <=> X == k; b <=> rhs.
                    let values = if k_val == 0 {
                        vec![0, 1]
                    } else {
                        vec![0, k_val]
                    };
                    let x_var = self.model.new_var_from_values(&values);
                    let b = self.model.new_bool();
                    self.model.reif_linear_eq(b, &[(1, x_var)], k_val);
                    let cond = self.translate(rule, other, bindings)?;
                    let cond_lin = self.symval_to_linear(cond);
                    let mut terms = vec![(1i64, b)];
                    for &(c, v) in &cond_lin.terms {
                        terms.push((-c, v));
                    }
                    self.model.linear_eq(&terms, cond_lin.constant);
                    let sym = self.new_sym(x_var);
                    bindings.set(x, sym);
                    return Ok(true);
                }
            }
        }
        // Pattern 3: fully translatable expression.
        let val = self.translate(rule, expr, bindings)?;
        match val {
            SymVal::Concrete(c) => {
                if c != 0 {
                    Ok(true)
                } else if force {
                    // Constraint rule with a violated concrete body: the model
                    // is infeasible.
                    self.model.linear_eq(&[], 1);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            SymVal::Bool(b) => {
                // The expression must hold.
                self.model.linear_eq(&[(1, b)], 1);
                Ok(true)
            }
            SymVal::Linear(_) => Err(CologneError::UnsupportedExpression {
                rule: rule.label.clone(),
                detail: "non-boolean expression used as a condition".into(),
            }),
        }
    }

    /// Translate an expression to a [`SymVal`] under the given bindings.
    fn translate(
        &mut self,
        rule: &RuleDecl,
        expr: &CExpr,
        bindings: &Bindings,
    ) -> Result<SymVal, CologneError> {
        match expr {
            CExpr::Var(v) => match bindings.get(v) {
                Some(Value::Sym(s)) => Ok(SymVal::Linear(LinExpr::var(self.sym_var(*s)))),
                Some(Value::Int(i)) => Ok(SymVal::Concrete(*i)),
                Some(Value::Bool(b)) => Ok(SymVal::Concrete(i64::from(*b))),
                Some(Value::Float(f)) => Ok(SymVal::Concrete(f.0.round() as i64)),
                // Node addresses may be compared for (in)equality in rule
                // bodies (e.g. `Y != Z` in the wireless cost rules); their
                // numeric id is the natural integer view.
                Some(Value::Addr(n)) => Ok(SymVal::Concrete(n.0 as i64)),
                Some(other) => Err(CologneError::UnsupportedExpression {
                    rule: rule.label.clone(),
                    detail: format!("value {other} in arithmetic expression"),
                }),
                None => self
                    .params
                    .constant(v)
                    .map(SymVal::Concrete)
                    .ok_or_else(|| CologneError::UnboundVariable {
                        rule: rule.label.clone(),
                        variable: v.clone(),
                    }),
            },
            CExpr::Lit(lit) => {
                let value = crate::translate::literal_to_value(lit, self.params)?;
                Ok(SymVal::Concrete(
                    value.as_f64().unwrap_or(0.0).round() as i64
                ))
            }
            CExpr::Neg(inner) => {
                let v = self.translate(rule, inner, bindings)?;
                Ok(match v {
                    SymVal::Concrete(c) => SymVal::Concrete(-c),
                    other => SymVal::Linear(self.symval_to_linear(other).scale(-1)),
                })
            }
            CExpr::Abs(inner) => {
                let v = self.translate(rule, inner, bindings)?;
                match v {
                    SymVal::Concrete(c) => Ok(SymVal::Concrete(c.abs())),
                    other => {
                        let lin = self.symval_to_linear(other);
                        let base = self.model.expr_var(&lin);
                        let abs = self.model.abs_var(base);
                        Ok(SymVal::Linear(LinExpr::var(abs)))
                    }
                }
            }
            CExpr::Bin(op, a, b) => {
                let lhs = self.translate(rule, a, bindings)?;
                let rhs = self.translate(rule, b, bindings)?;
                self.translate_binop(rule, *op, lhs, rhs)
            }
        }
    }

    fn translate_binop(
        &mut self,
        rule: &RuleDecl,
        op: COp,
        lhs: SymVal,
        rhs: SymVal,
    ) -> Result<SymVal, CologneError> {
        use COp::*;
        match op {
            Add | Sub => {
                if let (SymVal::Concrete(a), SymVal::Concrete(b)) = (&lhs, &rhs) {
                    return Ok(SymVal::Concrete(if op == Add { a + b } else { a - b }));
                }
                let l = self.symval_to_linear(lhs);
                let r = self.symval_to_linear(rhs);
                Ok(SymVal::Linear(if op == Add {
                    l.plus(&r)
                } else {
                    l.minus(&r)
                }))
            }
            Mul => match (lhs, rhs) {
                (SymVal::Concrete(a), SymVal::Concrete(b)) => Ok(SymVal::Concrete(a * b)),
                (SymVal::Concrete(a), other) | (other, SymVal::Concrete(a)) => {
                    let l = self.symval_to_linear(other);
                    Ok(SymVal::Linear(l.scale(a)))
                }
                (a, b) => {
                    let la = self.symval_to_linear(a);
                    let lb = self.symval_to_linear(b);
                    let va = self.model.expr_var(&la);
                    let vb = self.model.expr_var(&lb);
                    let prod = self.model.mul_var(va, vb);
                    Ok(SymVal::Linear(LinExpr::var(prod)))
                }
            },
            Div => match (lhs, rhs) {
                (SymVal::Concrete(a), SymVal::Concrete(b)) if b != 0 => Ok(SymVal::Concrete(a / b)),
                _ => Err(CologneError::UnsupportedExpression {
                    rule: rule.label.clone(),
                    detail: "division involving solver variables".into(),
                }),
            },
            Eq | Ne | Lt | Le | Gt | Ge => {
                if let (SymVal::Concrete(a), SymVal::Concrete(b)) = (&lhs, &rhs) {
                    let holds = match op {
                        Eq => a == b,
                        Ne => a != b,
                        Lt => a < b,
                        Le => a <= b,
                        Gt => a > b,
                        Ge => a >= b,
                        _ => unreachable!(),
                    };
                    return Ok(SymVal::Concrete(i64::from(holds)));
                }
                let l = self.symval_to_linear(lhs);
                let r = self.symval_to_linear(rhs);
                let diff = l.minus(&r).normalized();
                let b = self.model.new_bool();
                match op {
                    Eq => self.model.reif_linear_eq(b, &diff.terms, -diff.constant),
                    Ne => {
                        let beq = self.model.new_bool();
                        self.model.reif_linear_eq(beq, &diff.terms, -diff.constant);
                        // b = 1 - beq
                        self.model.linear_eq(&[(1, b), (1, beq)], 1);
                    }
                    Le => self.model.reif_linear_le(b, &diff.terms, -diff.constant),
                    Lt => self
                        .model
                        .reif_linear_le(b, &diff.terms, -diff.constant - 1),
                    Ge => {
                        let neg: Vec<(i64, VarId)> =
                            diff.terms.iter().map(|&(c, v)| (-c, v)).collect();
                        self.model.reif_linear_le(b, &neg, diff.constant);
                    }
                    Gt => {
                        let neg: Vec<(i64, VarId)> =
                            diff.terms.iter().map(|&(c, v)| (-c, v)).collect();
                        self.model.reif_linear_le(b, &neg, diff.constant - 1);
                    }
                    _ => unreachable!(),
                }
                Ok(SymVal::Bool(b))
            }
        }
    }

    // ----- goal -----------------------------------------------------------------

    fn build_objective(&mut self) -> Result<ObjectiveSpec, CologneError> {
        let Some(goal) = &self.plan.goal else {
            return Ok((None, None));
        };
        if goal.kind == GoalKind::Satisfy {
            return Ok((None, Some(goal.relation.clone())));
        }
        let position = goal.position.expect("non-satisfy goals have a position");
        let tuples = self.table_tuples(&goal.relation);
        let mut terms: Vec<(i64, VarId)> = Vec::new();
        let mut constant = 0i64;
        for t in tuples.iter() {
            match t.get(position) {
                Some(Value::Sym(s)) => terms.push((1, self.sym_var(*s))),
                Some(other) => constant += other.as_f64().unwrap_or(0.0).round() as i64,
                None => {}
            }
        }
        if terms.is_empty() && tuples.is_empty() {
            // Nothing to optimize: leave the objective out; the caller treats
            // the COP as trivially solved.
            return Ok((None, Some(goal.relation.clone())));
        }
        let objective = if terms.len() == 1 && constant == 0 {
            terms[0].1
        } else {
            self.model.linear_var(&terms, constant)
        };
        Ok((Some((goal.kind, objective)), Some(goal.relation.clone())))
    }
}

/// Match a predicate's arguments against a concrete tuple (no symbolic
/// handling; used for `forall` bindings).
fn match_predicate(
    pred: &Predicate,
    tuple: &Tuple,
    bindings: &mut Bindings,
    params: &ProgramParams,
) -> bool {
    if tuple.len() != pred.args.len() {
        return false;
    }
    for (arg, value) in pred.args.iter().zip(tuple.iter()) {
        match arg {
            Arg::Const(lit) => match crate::translate::literal_to_value(lit, params) {
                Ok(expected) if &expected == value => {}
                _ => return false,
            },
            Arg::Loc(v) | Arg::Var(v) => match bindings.get(v).cloned() {
                None => bindings.set(v, value.clone()),
                Some(existing) if &existing == value => {}
                Some(_) => return false,
            },
            Arg::Agg(_, _) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::{analyze, parse_program, VarDomain};
    use cologne_datalog::NodeId;
    use cologne_solver::SearchConfig;

    const MINI_ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
        d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
        c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
    "#;

    fn mini_acloud_engine() -> Engine {
        // two hosts (idle), two VMs of 40 and 20 CPU units, plenty of memory
        let mut e = Engine::new(NodeId(0));
        for (vid, cpu, mem) in [(1, 40, 4), (2, 20, 4)] {
            e.insert(
                "vm",
                vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)],
            );
        }
        for hid in [10, 11] {
            e.insert("host", vec![Value::Int(hid), Value::Int(0), Value::Int(0)]);
            e.insert("hostMemThres", vec![Value::Int(hid), Value::Int(8)]);
        }
        e
    }

    fn ground_mini_acloud(engine: &mut Engine, program_src: &str) -> GroundedCop {
        let program = parse_program(program_src).unwrap();
        let analysis = analyze(&program).unwrap();
        let params = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
        // install the regular rule so toAssign is materialized
        for (idx, rule) in program.rules.iter().enumerate() {
            if analysis.class_of(idx) == RuleClass::Regular {
                engine.add_rule(crate::translate::rule_to_datalog(rule, &params).unwrap());
            }
        }
        engine.run();
        ground(&program, &analysis, &params, engine).unwrap()
    }

    #[test]
    fn acloud_grounding_creates_expected_structure() {
        let mut engine = mini_acloud_engine();
        let cop = ground_mini_acloud(&mut engine, MINI_ACLOUD);
        // 2 VMs x 2 hosts = 4 assignment variables
        assert_eq!(cop.solver_tables["assign"].len(), 4);
        assert_eq!(cop.solver_tables["hostCpu"].len(), 2);
        assert_eq!(cop.solver_tables["hostStdevCpu"].len(), 1);
        assert_eq!(cop.solver_tables["assignCount"].len(), 2);
        assert!(cop.objective.is_some());
        assert!(!cop.is_trivial());
    }

    #[test]
    fn acloud_optimum_balances_load() {
        let mut engine = mini_acloud_engine();
        let cop = ground_mini_acloud(&mut engine, MINI_ACLOUD);
        let (kind, obj) = cop.objective.unwrap();
        assert_eq!(kind, GoalKind::Minimize);
        let outcome = cop.model.minimize(obj, &SearchConfig::default());
        let best = outcome.best.expect("feasible");
        // each VM on its own host (load 40 vs 20 beats 60 vs 0)
        let mut per_host = std::collections::BTreeMap::new();
        for row in &cop.solver_tables["assign"] {
            let vid = row[0].as_int().unwrap();
            let hid = row[1].as_int().unwrap();
            let v = cop.resolve(&row[2], &best).as_int().unwrap();
            if v == 1 {
                let cpu = if vid == 1 { 40 } else { 20 };
                *per_host.entry(hid).or_insert(0) += cpu;
            }
        }
        let loads: Vec<i64> = per_host.values().copied().collect();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads.iter().sum::<i64>(), 60);
        assert!((loads[0] - loads[1]).abs() == 20, "loads {loads:?}");
    }

    #[test]
    fn memory_constraint_forces_spread() {
        // Hosts only have 4 memory units, each VM needs 4: VMs must spread.
        let mut e = Engine::new(NodeId(0));
        for (vid, cpu, mem) in [(1, 10, 4), (2, 10, 4)] {
            e.insert(
                "vm",
                vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)],
            );
        }
        for hid in [10, 11] {
            e.insert("host", vec![Value::Int(hid), Value::Int(0), Value::Int(0)]);
            e.insert("hostMemThres", vec![Value::Int(hid), Value::Int(4)]);
        }
        let cop = ground_mini_acloud(&mut e, MINI_ACLOUD);
        let (_, obj) = cop.objective.unwrap();
        let outcome = cop.model.minimize(obj, &SearchConfig::default());
        let best = outcome.best.expect("feasible");
        for hid in [10i64, 11] {
            let mem: i64 = cop.solver_tables["assign"]
                .iter()
                .filter(|r| r[1].as_int() == Some(hid))
                .map(|r| cop.resolve(&r[2], &best).as_int().unwrap() * 4)
                .sum();
            assert!(mem <= 4, "host {hid} over memory: {mem}");
        }
    }

    #[test]
    fn empty_workload_is_trivial() {
        let mut engine = Engine::new(NodeId(0));
        let cop = ground_mini_acloud(&mut engine, MINI_ACLOUD);
        assert!(cop.is_trivial());
        assert!(cop.objective.is_none());
    }

    #[test]
    fn indicator_pattern_counts_migrations() {
        // Reproduces rules d5/d6/c3 from Sec. 4.2: limit migrations to 0 so
        // the optimal balanced placement is forbidden and VMs stay put.
        let src = format!(
            "{MINI_ACLOUD}
            d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
            d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
            c3 migrateCount(C) -> C<=max_migrates.
            "
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze(&program).unwrap();
        let params = ProgramParams::new()
            .with_var_domain("assign", VarDomain::BOOL)
            .with_constant("max_migrates", 0);
        let mut engine = mini_acloud_engine();
        // both VMs currently on host 10
        engine.insert("origin", vec![Value::Int(1), Value::Int(10)]);
        engine.insert("origin", vec![Value::Int(2), Value::Int(10)]);
        for (idx, rule) in program.rules.iter().enumerate() {
            if analysis.class_of(idx) == RuleClass::Regular {
                engine.add_rule(crate::translate::rule_to_datalog(rule, &params).unwrap());
            }
        }
        engine.run();
        let cop = ground(&program, &analysis, &params, &engine).unwrap();
        let (_, obj) = cop.objective.unwrap();
        let best = cop
            .model
            .minimize(obj, &SearchConfig::default())
            .best
            .expect("feasible");
        // With zero migrations allowed, both VMs must remain on host 10.
        for row in &cop.solver_tables["assign"] {
            let hid = row[1].as_int().unwrap();
            let v = cop.resolve(&row[2], &best).as_int().unwrap();
            assert_eq!(v, i64::from(hid == 10), "row {row:?}");
        }
    }

    #[test]
    fn missing_parameter_is_reported() {
        let src = format!(
            "{MINI_ACLOUD}
            d6 migrateCount(SUM<V>) <- assign(Vid,Hid,V).
            c3 migrateCount(C) -> C<=max_migrates.
            "
        );
        let program = parse_program(&src).unwrap();
        let analysis = analyze(&program).unwrap();
        let params = ProgramParams::new();
        let mut engine = mini_acloud_engine();
        for (idx, rule) in program.rules.iter().enumerate() {
            if analysis.class_of(idx) == RuleClass::Regular {
                engine.add_rule(crate::translate::rule_to_datalog(rule, &params).unwrap());
            }
        }
        engine.run();
        let err = match ground(&program, &analysis, &params, &engine) {
            Err(e) => e,
            Ok(_) => panic!("grounding should fail without max_migrates"),
        };
        assert!(matches!(
            err,
            CologneError::UnboundVariable { .. } | CologneError::MissingParameter(_)
        ));
    }
}
