//! # cologne
//!
//! A reproduction of **Cologne: A Declarative Distributed Constraint
//! Optimization Platform** (Liu, Ren, Loo, Mao, Basu — PVLDB 5(8), 2012).
//!
//! Cologne lets distributed-systems policies be written as constraint
//! optimization problems in **Colog**, a distributed Datalog dialect extended
//! with `goal`/`var` declarations and solver rules, and executes them by
//! integrating an incremental declarative-networking engine (RapidNet in the
//! paper, [`cologne_datalog`] here) with a constraint solver (Gecode in the
//! paper, [`cologne_solver`] here).
//!
//! This crate is the runtime that glues those pieces together:
//!
//! * [`CologneInstance`] — a per-node engine+solver pair: compiles a Colog
//!   program, runs its regular rules incrementally, and on `invokeSolver`
//!   grounds the solver rules into a COP, solves it under the configured
//!   time budget and materializes the result back into the tables
//!   (Sec. 5.1–5.4 of the paper).
//! * [`DistributedCologne`] — several instances connected by the simulated
//!   network of [`cologne_net`], exchanging located tuples and solver
//!   outputs (Sec. 5.5, "simulation mode" of Sec. 6).
//!
//! ## Quickstart
//!
//! The public API is built around three pillars: the
//! [`DeploymentBuilder`] (one way to stand up single-node and distributed
//! systems alike), schema-checked [`RelationHandle`]s (typos and arity
//! mistakes error eagerly, with did-you-mean suggestions), and streaming
//! [`solver::SolveObserver`] events for long solves.
//!
//! ```
//! use cologne::{DeploymentBuilder, ProgramParams, VarDomain};
//! use cologne::datalog::Value;
//!
//! // The ACloud load-balancing policy from Sec. 4.2, verbatim.
//! let program = r#"
//!     goal minimize C in hostStdevCpu(C).
//!     var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
//!     r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
//!     d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
//!     d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
//!     d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
//!     c1 assignCount(Vid,V) -> V==1.
//!     d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
//!     c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
//! "#;
//!
//! let mut node = DeploymentBuilder::new(program)
//!     .params(ProgramParams::new().with_var_domain("assign", VarDomain::BOOL))
//!     .build()
//!     .unwrap();
//! // Schema-checked writes: a typo'd relation or a malformed tuple errors
//! // here instead of silently never matching a rule.
//! let mut vm = node.relation("vm").unwrap();
//! vm.insert(vec![Value::Int(1), Value::Int(40), Value::Int(2)]).unwrap();
//! vm.insert(vec![Value::Int(2), Value::Int(20), Value::Int(2)]).unwrap();
//! for hid in [10, 11] {
//!     node.relation("host").unwrap()
//!         .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)]).unwrap();
//!     node.relation("hostMemThres").unwrap()
//!         .insert(vec![Value::Int(hid), Value::Int(8)]).unwrap();
//! }
//! assert!(node.relation("vmm").is_err()); // did you mean 'vm'?
//!
//! let target = node.single_node().unwrap();
//! let report = node.invoke_at(target).unwrap();
//! assert!(report.feasible);
//! // every VM placed exactly once
//! for vid in [1i64, 2] {
//!     let count: i64 = report.table("assign").iter()
//!         .filter(|row| row[0] == Value::Int(vid))
//!         .map(|row| row[2].as_int().unwrap())
//!         .sum();
//!     assert_eq!(count, 1);
//! }
//! ```

pub mod deploy;
pub mod distributed;
pub mod error;
pub mod ground;
pub mod handle;
pub mod instance;
pub mod pipeline;
pub mod solve_api;
pub mod stats;
pub mod translate;

pub use deploy::{Deployment, DeploymentBuilder, SolverSettings};
pub use distributed::{
    CrashEvent, DeliveryStats, DistributedCologne, TimerOutcome, RETX_TIMER_TAG,
};
pub use error::CologneError;
pub use ground::{ground, GroundedCop, GroundingPlan, GroundingScratch};
pub use handle::RelationHandle;
pub use instance::{CologneInstance, SolveReport};
pub use pipeline::{PipelineStats, SolvePipeline};
pub use solve_api::{EventOptions, EventSink, SolveRequest, SolveResponse, SolveTarget};
pub use stats::{NodeStats, StatsSnapshot};

// Re-export the compiler-facing types users need to drive the runtime.
pub use cologne_colog::{
    GoalKind, LnsParams, Program, ProgramParams, RelationSchema, RuleClass, SchemaCatalog,
    SolverBoundMode, SolverBranching, SolverMode, VarDomain,
};
// Re-export the observer surface so streaming consumers need only `cologne`,
// plus the bound-certificate types `SolveReport` embeds.
pub use cologne_solver::{BoundCertificate, EventLog, SolveEvent, SolveObserver};

/// Re-export of the Datalog substrate (values, tuples, engine).
pub mod datalog {
    pub use cologne_datalog::*;
}

/// Re-export of the constraint-solver substrate.
pub mod solver {
    pub use cologne_solver::*;
}

/// Re-export of the network-simulation substrate.
pub mod net {
    pub use cologne_net::*;
}

/// Re-export of the Colog compiler (parser, analysis, localization, codegen).
pub mod colog {
    pub use cologne_colog::*;
}
