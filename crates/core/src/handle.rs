//! Schema-checked relation handles — the typed write surface of a
//! [`CologneInstance`].
//!
//! A [`RelationHandle`] is obtained with [`CologneInstance::relation`],
//! which validates the relation *name* eagerly (a typo is an
//! [`crate::CologneError::UnknownRelation`] with a did-you-mean suggestion,
//! not a silent no-op); every write through the handle then validates the
//! tuple's arity and column kinds against the schema derived from the
//! compiled program ([`cologne_colog::SchemaCatalog`]). This replaced the
//! old stringly-typed write surface, which accepted anything and let
//! mistakes surface as empty solver tables.

use cologne_colog::RelationSchema;
use cologne_datalog::Tuple;

use crate::error::CologneError;
use crate::instance::CologneInstance;

/// A validated, schema-checked view on one relation of an instance.
///
/// The handle mutably borrows the instance, so writes happen in place; reads
/// ([`RelationHandle::scan`], [`RelationHandle::snapshot`]) are available on
/// the same handle for convenience.
pub struct RelationHandle<'a> {
    instance: &'a mut CologneInstance,
    name: String,
}

impl std::fmt::Debug for RelationHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationHandle")
            .field("relation", &self.name)
            .field("schema", self.schema())
            .finish()
    }
}

impl<'a> RelationHandle<'a> {
    pub(crate) fn new(instance: &'a mut CologneInstance, name: &str) -> Self {
        RelationHandle {
            instance,
            name: name.to_string(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's derived schema.
    pub fn schema(&self) -> &RelationSchema {
        self.instance
            .schema_catalog()
            .get(&self.name)
            .expect("handle exists only for cataloged relations")
    }

    /// Validate a tuple against the schema without writing it.
    pub fn validate(&self, tuple: &Tuple) -> Result<(), CologneError> {
        self.instance.check_tuple(&self.name, tuple)
    }

    /// Insert a base fact (validated eagerly).
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), CologneError> {
        self.validate(&tuple)?;
        self.instance.engine.insert(&self.name, tuple);
        Ok(())
    }

    /// Delete a base fact (validated eagerly).
    pub fn delete(&mut self, tuple: Tuple) -> Result<(), CologneError> {
        self.validate(&tuple)?;
        self.instance.engine.delete(&self.name, tuple);
        Ok(())
    }

    /// Replace the relation's contents (monitoring refresh), validating
    /// every tuple before anything is queued — a malformed row rejects the
    /// whole batch.
    pub fn set(&mut self, tuples: Vec<Tuple>) -> Result<(), CologneError> {
        for t in &tuples {
            self.validate(t)?;
        }
        self.instance.engine.set_relation(&self.name, tuples);
        Ok(())
    }

    /// Borrowing iterator over the visible tuples, in unspecified order.
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.instance.scan(&self.name)
    }

    /// Visible tuples, sorted (deterministic snapshot).
    pub fn snapshot(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.scan().cloned().collect();
        out.sort();
        out
    }

    /// True if the relation currently contains the tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.instance.contains(&self.name, tuple)
    }

    /// Number of visible tuples.
    pub fn len(&self) -> usize {
        self.scan().count()
    }

    /// True when the relation has no visible tuples.
    pub fn is_empty(&self) -> bool {
        self.scan().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::ProgramParams;
    use cologne_datalog::{NodeId, Value};

    const PROGRAM: &str = r#"
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
    "#;

    fn instance() -> CologneInstance {
        CologneInstance::new(NodeId(0), PROGRAM, ProgramParams::new()).unwrap()
    }

    #[test]
    fn unknown_relation_rejected_with_suggestion() {
        let mut inst = instance();
        let err = inst.relation("vms").unwrap_err();
        match err {
            CologneError::UnknownRelation {
                relation,
                suggestion,
            } => {
                assert_eq!(relation, "vms");
                assert_eq!(suggestion.as_deref(), Some("vm"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_rejected_before_queueing() {
        let mut inst = instance();
        let mut vm = inst.relation("vm").unwrap();
        assert_eq!(vm.name(), "vm");
        assert_eq!(vm.schema().arity, 3);
        let err = vm.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, CologneError::SchemaMismatch { .. }));
        assert!(vm.is_empty());
        // a batched set rejects wholesale
        let err = vm
            .set(vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(3)],
                vec![Value::Int(9)],
            ])
            .unwrap_err();
        assert!(matches!(err, CologneError::SchemaMismatch { .. }));
        assert!(vm.is_empty());
    }

    #[test]
    fn writes_and_reads_round_trip() {
        let mut inst = instance();
        let mut vm = inst.relation("vm").unwrap();
        vm.insert(vec![Value::Int(2), Value::Int(20), Value::Int(1)])
            .unwrap();
        vm.insert(vec![Value::Int(1), Value::Int(40), Value::Int(2)])
            .unwrap();
        inst.run_rules();
        let mut vm = inst.relation("vm").unwrap();
        assert_eq!(vm.len(), 2);
        assert!(!vm.is_empty());
        assert!(vm.contains(&vec![Value::Int(1), Value::Int(40), Value::Int(2)]));
        assert_eq!(
            vm.snapshot()[0],
            vec![Value::Int(1), Value::Int(40), Value::Int(2)]
        );
        vm.delete(vec![Value::Int(1), Value::Int(40), Value::Int(2)])
            .unwrap();
        inst.run_rules();
        assert_eq!(inst.scan("vm").count(), 1);
        // derived relation populated through the rule
        let mut host = inst.relation("host").unwrap();
        host.set(vec![vec![Value::Int(10), Value::Int(0), Value::Int(0)]])
            .unwrap();
        inst.run_rules();
        assert_eq!(inst.scan("toAssign").count(), 1);
    }
}
