//! Distributed deployment of Cologne instances over the simulated network.
//!
//! In the paper's distributed mode (Fig. 1), one Cologne instance runs per
//! node and instances exchange system state and optimization output through
//! the declarative networking engine over ns-3. [`DistributedCologne`] wires
//! one [`CologneInstance`] per topology node to the discrete-event simulator
//! of `cologne-net`: located rule heads and solver outputs addressed to other
//! nodes become simulated messages with latency, bandwidth and per-node
//! traffic accounting (the substrate for Fig. 4 and Fig. 5).

use std::collections::BTreeMap;

use cologne_datalog::{NodeId, RemoteTuple};
use cologne_net::{Event, LinkProps, NodeTraffic, SimTime, Simulator, Topology};

use crate::error::CologneError;
use crate::instance::{CologneInstance, SolveReport};

/// What a timer handler asks the driver to do next.
#[derive(Debug, Default)]
pub struct TimerOutcome {
    /// Tuples to ship to other nodes (in addition to whatever the instance's
    /// own rule evaluation produced).
    pub outgoing: Vec<RemoteTuple>,
    /// Re-arm the timer after this delay with the given tag.
    pub reschedule: Option<(SimTime, u64)>,
}

/// A set of Cologne instances connected by a simulated network.
pub struct DistributedCologne {
    instances: BTreeMap<NodeId, CologneInstance>,
    sim: Simulator<RemoteTuple>,
    rejected_remote_tuples: u64,
}

impl DistributedCologne {
    /// Wire explicitly constructed instances to a simulator (the shared tail
    /// of the [`crate::DeploymentBuilder`] and the legacy constructors).
    pub(crate) fn assemble(topology: Topology, instances: Vec<CologneInstance>) -> Self {
        let map = instances.into_iter().map(|i| (i.node(), i)).collect();
        DistributedCologne {
            instances: map,
            sim: Simulator::new(topology),
            rejected_remote_tuples: 0,
        }
    }

    /// Number of nodes with an instance.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Immutable access to one instance.
    pub fn instance(&self, node: NodeId) -> Option<&CologneInstance> {
        self.instances.get(&node)
    }

    /// Mutable access to one instance.
    pub fn instance_mut(&mut self, node: NodeId) -> Option<&mut CologneInstance> {
        self.instances.get_mut(&node)
    }

    /// All node ids with instances.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.instances.keys().copied().collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Per-node traffic counters (Fig. 5 raw data).
    pub fn traffic(&self, node: NodeId) -> NodeTraffic {
        self.sim.traffic(node.0)
    }

    /// Average per-node communication overhead in KB/s so far.
    pub fn per_node_overhead_kbps(&self) -> f64 {
        self.sim.per_node_overhead_kbps()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Number of received remote tuples rejected by schema validation (an
    /// unknown relation or a malformed tuple shipped by a peer). Rejected
    /// tuples are dropped instead of corrupting instance state.
    pub fn rejected_remote_tuples(&self) -> u64 {
        self.rejected_remote_tuples
    }

    /// Schedule a timer at a node.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimTime, tag: u64) {
        self.sim.schedule_timer(node.0, delay, tag);
    }

    /// Ship remote tuples originating at `from` into the simulated network.
    pub fn ship(&mut self, from: NodeId, tuples: Vec<RemoteTuple>) {
        for t in tuples {
            let size = t.wire_size();
            self.sim.send_message(from.0, t.dest.0, t, size);
        }
    }

    // ----- per-node solver invocation ---------------------------------------

    /// Invoke every instance's solver, one node after another in ascending
    /// node order. Solver outputs addressed to other nodes are shipped into
    /// the simulated network (in node order, after all nodes finished) and
    /// drained from the returned reports.
    ///
    /// Returns the per-node [`SolveReport`]s, or the first error in node
    /// order. On error nothing is shipped; local materializations that
    /// already happened on other nodes are kept (identical to the parallel
    /// path).
    pub fn invoke_solvers(&mut self) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut results = Vec::with_capacity(self.instances.len());
        for (node, inst) in self.instances.iter_mut() {
            results.push((*node, inst.invoke_solver()));
        }
        self.finish_invocations(results)
    }

    /// [`DistributedCologne::invoke_solvers`] with a streaming
    /// [`cologne_solver::SolveObserver`] threaded through every node's
    /// search. Nodes run sequentially in ascending node order, so under
    /// deterministic limits the merged event stream is deterministic too.
    /// An observer cancellation stops the node being solved (its instance
    /// forgets its incremental caches) and still cancels every later node's
    /// search as soon as it starts, since the observer keeps breaking.
    pub fn invoke_solvers_observed(
        &mut self,
        observer: &mut dyn cologne_solver::SolveObserver,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut results = Vec::with_capacity(self.instances.len());
        for (node, inst) in self.instances.iter_mut() {
            results.push((*node, inst.invoke_solver_with_observer(observer)));
        }
        self.finish_invocations(results)
    }

    /// [`DistributedCologne::invoke_solvers`], but with the per-node
    /// grounding and solving running concurrently (one scoped thread per
    /// node). The per-node COPs of the paper's distributed executions are
    /// independent, so this is safe parallelism; the discrete-event network
    /// stays deterministic because solver outputs are shipped only after
    /// every node finished, in ascending node order — the same schedule as
    /// the sequential path. Reports (and therefore tables) are bit-identical
    /// to the sequential path as long as per-node search limits are
    /// deterministic (node/fail limits rather than wall-clock limits).
    pub fn invoke_solvers_parallel(
        &mut self,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut results = Vec::with_capacity(self.instances.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .instances
                .iter_mut()
                .map(|(node, inst)| (*node, scope.spawn(move || inst.invoke_solver())))
                .collect();
            for (node, handle) in handles {
                results.push((
                    node,
                    handle.join().expect("per-node solver thread panicked"),
                ));
            }
        });
        self.finish_invocations(results)
    }

    /// Common tail of the sequential and parallel invocation paths: surface
    /// the first error in node order, otherwise drain every report's
    /// outgoing tuples into the network in node order.
    fn finish_invocations(
        &mut self,
        results: Vec<(NodeId, Result<SolveReport, CologneError>)>,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut reports = BTreeMap::new();
        for (node, result) in results {
            reports.insert(node, result?);
        }
        for (node, report) in reports.iter_mut() {
            let outgoing = std::mem::take(&mut report.outgoing);
            self.ship(*node, outgoing);
        }
        Ok(reports)
    }

    /// Run the event loop until `limit`, delivering messages to instances and
    /// invoking `on_timer` for timer events. Returns the number of events
    /// processed.
    pub fn run_until<F>(&mut self, limit: SimTime, mut on_timer: F) -> u64
    where
        F: FnMut(&mut CologneInstance, u64) -> TimerOutcome,
    {
        let mut handled = 0;
        loop {
            // Peek the next event through the simulator; stop past the limit.
            let next = {
                let pending = self.sim.pending_events();
                if pending == 0 {
                    break;
                }
                self.sim.next_event()
            };
            let Some((time, event)) = next else { break };
            if time > limit {
                // Event beyond the horizon: put it back conceptually by simply
                // stopping (the simulator's clock has already advanced, which
                // is fine for our workloads where the limit marks the end).
                break;
            }
            handled += 1;
            match event {
                Event::Message { dest, payload, .. } => {
                    let node = NodeId(dest);
                    if let Some(inst) = self.instances.get_mut(&node) {
                        // Malformed remote tuples are rejected (counted),
                        // not applied: a misbehaving peer cannot corrupt
                        // this node's tables.
                        if inst.try_receive(&payload).is_err() {
                            self.rejected_remote_tuples += 1;
                        } else {
                            let outgoing = inst.run_rules();
                            self.ship(node, outgoing);
                        }
                    }
                }
                Event::Timer { node, tag } => {
                    let node = NodeId(node);
                    if let Some(inst) = self.instances.get_mut(&node) {
                        let outcome = on_timer(inst, tag);
                        self.ship(node, outcome.outgoing);
                        if let Some((delay, next_tag)) = outcome.reschedule {
                            self.sim.schedule_timer(node.0, delay, next_tag);
                        }
                    }
                }
            }
        }
        handled
    }

    /// Convenience: run with no timer handling (messages only).
    pub fn run_messages_until(&mut self, limit: SimTime) -> u64 {
        self.run_until(limit, |_, _| TimerOutcome::default())
    }

    /// Default link profile used by convenience constructors in tests.
    pub fn default_link() -> LinkProps {
        LinkProps::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{Deployment, DeploymentBuilder};
    use cologne_colog::ProgramParams;
    use cologne_datalog::Value;

    /// A two-rule ping/pong program: every `ping` received at a node derives a
    /// `pong` back at the sender.
    const PING: &str = r#"
        r1 pong(@Y,X) <- ping(@X,Y).
    "#;

    fn two_node_driver() -> Deployment {
        DeploymentBuilder::new(PING)
            .topology(Topology::line(2, LinkProps::default()))
            .build()
            .unwrap()
    }

    #[test]
    fn message_round_trip_between_instances() {
        let mut d = two_node_driver();
        assert_eq!(d.num_instances(), 2);
        // node 0 learns ping(@0, 1): rule head pong(@1, 0) must be shipped to node 1
        d.insert(
            NodeId(0),
            "ping",
            vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))],
        )
        .unwrap();
        let handled = d.run_messages_until(SimTime::from_secs(5));
        assert_eq!(handled, 1);
        let inst1 = d.instance(NodeId(1)).unwrap();
        assert!(inst1.contains(
            "pong",
            &vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(0))]
        ));
        // traffic was accounted on both ends
        assert!(d.traffic(NodeId(0)).bytes_sent > 0);
        assert!(d.traffic(NodeId(1)).bytes_received > 0);
        assert!(d.per_node_overhead_kbps() > 0.0);
        assert_eq!(d.rejected_remote_tuples(), 0);
    }

    #[test]
    fn malformed_remote_tuples_are_rejected_on_delivery() {
        let mut d = two_node_driver();
        // a peer ships a tuple with the wrong arity for `ping`
        d.ship(
            NodeId(0),
            vec![RemoteTuple {
                dest: NodeId(1),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(1))],
                insert: true,
            }],
        );
        d.run_messages_until(SimTime::from_secs(5));
        assert_eq!(d.rejected_remote_tuples(), 1);
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 0);
    }

    #[test]
    fn timers_fire_and_reschedule() {
        let mut d = two_node_driver();
        d.schedule_timer(NodeId(0), SimTime::from_secs(1), 7);
        let mut fired = Vec::new();
        d.run_until(SimTime::from_secs(10), |inst, tag| {
            fired.push((inst.node(), tag));
            if tag < 9 {
                TimerOutcome {
                    outgoing: Vec::new(),
                    reschedule: Some((SimTime::from_secs(1), tag + 1)),
                }
            } else {
                TimerOutcome::default()
            }
        });
        assert_eq!(fired, vec![(NodeId(0), 7), (NodeId(0), 8), (NodeId(0), 9)]);
        assert_eq!(d.now(), SimTime::from_secs(3));
    }

    #[test]
    fn timer_outcome_can_ship_tuples() {
        let mut d = two_node_driver();
        d.schedule_timer(NodeId(0), SimTime::from_millis(10), 0);
        d.run_until(SimTime::from_secs(5), |inst, _| TimerOutcome {
            outgoing: vec![RemoteTuple {
                dest: NodeId(1),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(1)), Value::Addr(inst.node())],
                insert: true,
            }],
            reschedule: None,
        });
        // node 1 received ping(@1, 0) and derived pong(@0, 1), shipped back to node 0
        let inst0 = d.instance(NodeId(0)).unwrap();
        assert!(inst0.contains(
            "pong",
            &vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))]
        ));
    }

    #[test]
    fn sparse_deployments_drop_messages_to_missing_nodes() {
        // Topology nodes without an instance are allowed; messages addressed
        // to them are dropped without panicking.
        let topo = Topology::line(3, LinkProps::default());
        let instances = vec![
            CologneInstance::new(NodeId(0), PING, ProgramParams::new()).unwrap(),
            CologneInstance::new(NodeId(2), PING, ProgramParams::new()).unwrap(),
        ];
        let mut d = DistributedCologne::assemble(topo, instances);
        assert_eq!(d.nodes(), vec![NodeId(0), NodeId(2)]);
        assert!(d.instance(NodeId(1)).is_none());
        assert!(d.instance_mut(NodeId(2)).is_some());
        assert_eq!(d.topology().num_nodes(), 3);
        d.ship(
            NodeId(0),
            vec![RemoteTuple {
                dest: NodeId(1),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(0))],
                insert: true,
            }],
        );
        d.run_messages_until(SimTime::from_secs(1));
        assert_eq!(d.rejected_remote_tuples(), 0);
    }
}
